//! Offline JSON backend for the `serde` shim: [`to_string`] / [`from_str`]
//! over the shared [`Value`] model.
//!
//! The upstream entry points the workspace uses are implemented:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and the re-exported [`Value`]. Printing is canonical —
//! object fields keep insertion order and floats print in Rust's shortest
//! round-trip form — so `parse → print` is a fixed point, which the
//! model-artifact checksum relies on.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point { x: f64, tags: Vec<String> }
//!
//! let p = Point { x: 1.5, tags: vec!["a".into()] };
//! let text = serde_json::to_string(&p).unwrap();
//! assert_eq!(text, r#"{"x":1.5,"tags":["a"]}"#);
//! assert_eq!(serde_json::from_str::<Point>(&text).unwrap(), p);
//! ```

mod parse;
mod print;

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`].
///
/// # Errors
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Prints `value` as compact (canonical) JSON.
///
/// # Errors
/// Infallible for this backend; the `Result` mirrors the upstream API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Prints `value` as indented JSON (2 spaces, upstream-style).
///
/// # Errors
/// Infallible for this backend; the `Result` mirrors the upstream API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print::pretty(&value.to_value(), &mut out, 0);
    out.push('\n');
    Ok(out)
}

/// Parses JSON text into a `T` (use `T = Value` for raw documents).
///
/// # Errors
/// Returns [`Error`] on malformed JSON, trailing input, or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("n".into(), Value::Int(-12)),
            ("u".into(), Value::UInt(u64::MAX)),
            ("f".into(), Value::Float(0.1)),
            ("s".into(), Value::String("a\"b\\c\nd".into())),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        // Canonical: printing the parse is a fixed point.
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn pretty_parses_back_to_same_value() {
        let v = Value::Array(vec![
            Value::Object(vec![("k".into(), Value::Int(1))]),
            Value::Array(vec![]),
            Value::Object(vec![]),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            1e300,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} printed as {text}");
        }
    }

    #[test]
    fn integers_keep_full_precision() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), u64::MAX);
        let text = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&text).unwrap(), i64::MIN);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "[1 2]",
            "01",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""Aé 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé 😀"));
    }
}
