//! Canonical JSON printing.

use serde::Value;
use std::fmt::Write as _;

/// Compact printing: no whitespace, insertion-ordered object fields.
pub(crate) fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => push_float(*f, out),
        Value::String(s) => push_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(k, out);
                out.push(':');
                compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Pretty printing: 2-space indentation, one field/element per line.
pub(crate) fn pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                push_escaped(k, out);
                out.push_str(": ");
                pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Floats print in Rust's shortest round-trip `Display` form, which always
/// re-parses to the same bit pattern. A value without a fractional part
/// gets a trailing `.0` so it re-parses as a float, keeping printing
/// canonical. Non-finite floats cannot appear in JSON; the `Serialize`
/// impl maps them to name strings before printing, and a hand-built
/// non-finite `Value::Float` falls back to the same names here.
fn push_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let start = out.len();
        let _ = write!(out, "{f}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        push_escaped(
            if f.is_nan() {
                "NaN"
            } else if f > 0.0 {
                "Infinity"
            } else {
                "-Infinity"
            },
            out,
        );
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn printed(v: &Value) -> String {
        let mut s = String::new();
        compact(v, &mut s);
        s
    }

    #[test]
    fn whole_floats_keep_a_fraction_marker() {
        assert_eq!(printed(&Value::Float(2.0)), "2.0");
        assert_eq!(printed(&Value::Float(-0.5)), "-0.5");
        assert_eq!(printed(&Value::Int(2)), "2");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(printed(&Value::String("a\u{01}b".into())), "\"a\\u0001b\"");
        assert_eq!(printed(&Value::String("q\"w\\e".into())), "\"q\\\"w\\\\e\"");
    }

    #[test]
    fn hand_built_non_finite_floats_print_as_names() {
        assert_eq!(printed(&Value::Float(f64::NAN)), "\"NaN\"");
        assert_eq!(printed(&Value::Float(f64::INFINITY)), "\"Infinity\"");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![])),
            ("o".into(), Value::Object(vec![])),
        ]);
        let mut s = String::new();
        pretty(&v, &mut s, 0);
        assert_eq!(s, "{\n  \"a\": [],\n  \"o\": {}\n}");
    }
}
