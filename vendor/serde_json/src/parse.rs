//! Recursive-descent JSON parsing into [`Value`].

use crate::Error;
use serde::Value;

/// Maximum nesting depth; guards against stack exhaustion on adversarial
/// documents (artifacts and caches nest a handful of levels).
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("json parse error at byte {}: {message}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected `null`"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected `true`"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected `false`"))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            // Bulk-scan the longest run free of quotes and escapes and
            // copy it whole. The input is a `&str`, so any such run is
            // valid UTF-8: `"` and `\` are ASCII and never occur inside
            // a multi-byte character's continuation bytes. (Decoding one
            // char at a time here used to re-validate the entire
            // remaining buffer per character — quadratic in string-heavy
            // documents like wire frames.)
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                Some(_) => unreachable!("the bulk scan stops only at `\"` or `\\`"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run (JSON forbids
        // leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("numbers may not have leading zeros"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_variants() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-1").unwrap(), Value::Int(-1));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-0.25e-1").unwrap(), Value::Float(-0.025));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(r#""a\n\t\"\\A""#).unwrap(),
            Value::String("a\n\t\"\\A".into())
        );
        // Surrogate pair escape for U+1F600, plus the literal form.
        let escaped: &str = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped).unwrap(), Value::String("\u{1F600}".into()));
        assert_eq!(
            parse("\"\u{1F600}\"").unwrap(),
            Value::String("\u{1F600}".into())
        );
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }
}
