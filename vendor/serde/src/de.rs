//! The [`Deserialize`] trait, its error type, and helper functions the
//! derive-generated code leans on.

use crate::value::Value;
use std::fmt;

/// A deserialization failure: what was being read and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with an explicit message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// `what` could not be read because the value was not `expected`.
    pub fn invalid(what: &str, expected: &str) -> Self {
        Error::new(format!("invalid {what}: expected {expected}"))
    }

    /// An enum payload carried an unknown variant tag.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error::new(format!("unknown variant `{variant}` of {ty}"))
    }

    /// A struct object was missing a required field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::new(format!("missing field `{field}` of {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Reconstructs `Self` from the shim's [`Value`] data model (the analogue
/// of upstream's `Deserialize::deserialize`).
pub trait Deserialize: Sized {
    /// Parses a value representation into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a required struct field in an object's field list.
///
/// # Errors
/// Returns [`Error::missing_field`]-style errors when absent.
pub fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{name}`")))
}

/// Looks up a struct field that may be absent. Derive-generated code
/// treats an absent field as `Null` (so `Option` fields read `None` and
/// a document written before a field existed still parses), falling back
/// to a missing-field error only when `Null` itself does not deserialize
/// into the field's type.
pub fn opt_field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Splits an externally-tagged enum payload (a single-entry object) into
/// `(variant tag, inner value)`.
///
/// # Errors
/// Errors when the value is not a single-entry object.
pub fn variant(value: &Value) -> Result<(&str, &Value), Error> {
    match value.as_object() {
        Some([(tag, inner)]) => Ok((tag.as_str(), inner)),
        _ => Err(Error::invalid(
            "enum payload",
            "a single-entry object {\"Variant\": ...}",
        )),
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::invalid("bool", "true or false"))
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::invalid(stringify!($t), "an integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::invalid(stringify!($t), "an in-range integer"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::invalid(stringify!($t), "an unsigned integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::invalid(stringify!($t), "an in-range integer"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if let Some(f) = value.as_f64() {
            return Ok(f);
        }
        match value.as_str() {
            Some("NaN") => Ok(f64::NAN),
            Some("Infinity") => Ok(f64::INFINITY),
            Some("-Infinity") => Ok(f64::NEG_INFINITY),
            _ => Err(Error::invalid("f64", "a number or a non-finite name")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::invalid("String", "a string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::invalid("Vec", "an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::invalid("tuple", "an array of 2 elements")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::invalid("tuple", "an array of 3 elements")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::Serialize;

    fn round<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let encoded = v.to_value();
        assert_eq!(T::from_value(&encoded).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round(42u64);
        round(-17i64);
        round(usize::MAX);
        round(3.25f64);
        round(true);
        round("text".to_string());
        round(Some(5u8));
        round::<Option<u8>>(None);
        round(vec![1u32, 2, 3]);
        round((1i64, 2usize));
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            let v = f.to_value();
            assert_eq!(f64::from_value(&v).unwrap(), f);
        }
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn range_checks_reject() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }

    #[test]
    fn variant_helper_requires_single_entry() {
        let ok = Value::Object(vec![("V".into(), Value::Null)]);
        assert_eq!(variant(&ok).unwrap().0, "V");
        assert!(variant(&Value::Null).is_err());
        let two = Value::Object(vec![("a".into(), Value::Null), ("b".into(), Value::Null)]);
        assert!(variant(&two).is_err());
    }
}
