//! The [`Serialize`] trait and its primitive / container implementations.

use crate::value::Value;

/// Converts `self` into the shim's [`Value`] data model (the analogue of
/// upstream's format-agnostic `Serialize::serialize`).
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

/// Floats: finite values stay numbers; the three non-finite values become
/// their conventional names as strings (JSON has no representation for
/// them), which `f64::from_value` maps back — an exact round trip.
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else if self.is_nan() {
            Value::String("NaN".to_string())
        } else if *self > 0.0 {
            Value::String("Infinity".to_string())
        } else {
            Value::String("-Infinity".to_string())
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-7i32).to_value(), Value::Int(-7));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
    }

    #[test]
    fn non_finite_floats_become_named_strings() {
        assert_eq!(f64::NAN.to_value(), Value::String("NaN".into()));
        assert_eq!(f64::INFINITY.to_value(), Value::String("Infinity".into()));
        assert_eq!(
            f64::NEG_INFINITY.to_value(),
            Value::String("-Infinity".into())
        );
    }

    #[test]
    fn containers_nest() {
        let v = vec![Some(1u8), None].to_value();
        assert_eq!(v, Value::Array(vec![Value::UInt(1), Value::Null]));
        let t = (1u8, "x").to_value();
        assert_eq!(
            t,
            Value::Array(vec![Value::UInt(1), Value::String("x".into())])
        );
    }
}
