//! The self-describing data model shared by `serde` and `serde_json`.
//!
//! Upstream keeps `Value` in `serde_json`; this shim hoists it into
//! `serde` so the [`crate::Serialize`] / [`crate::Deserialize`] traits can
//! be defined over it without a dependency cycle (`serde_json` re-exports
//! it). Integers keep their full 64-bit precision (`Int` / `UInt` instead
//! of lossy `f64`), which matters for bit-pattern float keys and large
//! counters; objects preserve insertion order so a document re-serializes
//! canonically — the artifact checksum relies on that.

/// A parsed / to-be-printed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (JSON number without fraction or exponent).
    Int(i64),
    /// An unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object: key/value pairs in insertion order (not a map — order
    /// is semantic here, it makes re-serialization canonical).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert; strings do not — see
    /// `f64::from_value` for the non-finite names).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The field vector, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// First value stored under `key`, if this is an `Object`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_discriminate() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(-3).as_i64(), Some(-3));
        assert_eq!(Value::Int(-3).as_u64(), None);
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Value::UInt(7).as_i64(), Some(7));
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::String("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn object_lookup_preserves_first_match() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Int(2)),
        ]);
        assert_eq!(v.get("b"), Some(&Value::Int(2)));
        assert_eq!(v.get("missing"), None);
    }
}
