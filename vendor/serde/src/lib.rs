//! Offline, API-compatible subset of `serde` used by this workspace.
//!
//! The container has no crates.io access, so this shim implements the
//! slice of the serde ecosystem the workspace actually consumes — grown in
//! PR 3 from empty marker traits into a *working* serialization backbone:
//!
//! * a [`Serialize`] / [`Deserialize`] trait pair with implementations for
//!   the primitive types, `String`, `Option`, `Vec`, boxed values, slices
//!   and small tuples;
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generating real implementations for non-generic structs and
//!   enums, following upstream `serde_json` conventions (structs as
//!   objects, newtype structs transparent, externally-tagged enums);
//! * a self-describing [`Value`] data model that the sibling `serde_json`
//!   shim prints to / parses from JSON text (`to_string` / `from_str`).
//!
//! ## Deviations from upstream
//!
//! Upstream serde is format-agnostic: `Serialize::serialize` drives a
//! `Serializer` visitor. This shim pins the data model to [`Value`]
//! (`Serialize::to_value` / `Deserialize::from_value`), which is exactly
//! as expressive as the JSON backend the workspace needs while keeping
//! the derive small. Call sites — derive attributes, trait bounds,
//! `serde_json::to_string` / `from_str` — match upstream, so swapping in
//! the published crates requires no source changes outside `vendor/`.
//!
//! Non-finite floats (JSON cannot represent them) serialize as the
//! strings `"NaN"`, `"Infinity"` and `"-Infinity"`; `f64::from_value`
//! accepts them back, so every `f64` round-trips exactly.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::Value;

// The derive macros share the trait names (upstream does the same; macros
// and traits live in different namespaces).
pub use serde_derive::{Deserialize, Serialize};
