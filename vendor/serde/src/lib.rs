//! Offline shim of the `serde` surface used by this workspace.
//!
//! Only the derive names are consumed (`#[derive(Serialize, Deserialize)]`
//! as structural markers); no code serializes values yet. The derives are
//! re-exported no-ops and the traits are empty markers so `use
//! serde::{Serialize, Deserialize}` resolves. Replace with the published
//! crate once network access / vendoring of the real dependency exists.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeMarker {}
