//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The container has no network access to crates.io, so the workspace
//! vendors a small, deterministic re-implementation of exactly the calls
//! the sources make: `StdRng`, `SeedableRng::seed_from_u64`, the `Rng`
//! extension methods (`gen`, `gen_range`, `gen_bool`), and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64, so streams are fully reproducible from a `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds. Only `seed_from_u64` is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` (`span >= 1`) via rejection sampling on a
/// 64-bit word (span never exceeds 2^64 in practice for this workspace).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection zone keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    }
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    v % span
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive float range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

// f64 only: an f32 impl would leave `gen_range(0.5..1.5)` with an
// ambiguous literal type, and nothing in the workspace samples f32 ranges.
float_sample_range!(f64);

/// The user-facing RNG extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Mirrors the `rand::seq::SliceRandom` methods the workspace uses.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = super::uniform_u128(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u128(rng, self.len() as u128) as usize;
                Some(&self[i])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
