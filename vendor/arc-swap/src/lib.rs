//! Offline shim of the `arc-swap` crate: an atomic `Arc<T>` slot with
//! wait-free reads, implemented with classic hazard pointers.
//!
//! Only the subset the workspace uses is provided: [`ArcSwap::new`],
//! [`ArcSwap::from_pointee`], [`ArcSwap::load`], [`ArcSwap::load_full`],
//! [`ArcSwap::store`] and [`ArcSwap::swap`].
//!
//! # How reads stay wait-free and panic-proof
//!
//! A reader publishes the pointer it is about to dereference in a global
//! *hazard slot*, re-validates that the slot still holds the current
//! pointer, bumps the `Arc` strong count, and clears the slot — a handful
//! of atomic operations with no locks, so a read can neither block behind
//! a writer nor observe a poisoned lock (there is none to poison). A
//! writer swaps the pointer and then spins until no hazard slot still
//! names the pointer it replaced before releasing its reference; readers
//! therefore never dereference freed memory.
//!
//! Writers do not need mutual exclusion: `AtomicPtr::swap` linearizes
//! concurrent stores and each writer only waits out its *own* displaced
//! pointer.

use std::cell::Cell;
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::Arc;

/// One published hazard: the raw pointer a reader is currently protecting.
/// Slots are leaked once allocated and recycled through `in_use`, so the
/// registry only ever grows to the peak number of concurrent readers.
struct HazardSlot {
    hazard: AtomicPtr<()>,
    in_use: AtomicBool,
    next: AtomicPtr<HazardSlot>,
}

/// Head of the global slot list (lock-free Treiber-style push).
static SLOTS: AtomicPtr<HazardSlot> = AtomicPtr::new(ptr::null_mut());

fn acquire_slot() -> &'static HazardSlot {
    // First try to recycle a free slot.
    let mut cur = SLOTS.load(Ordering::Acquire);
    while let Some(slot) = unsafe { cur.as_ref() } {
        if !slot.in_use.load(Ordering::Relaxed)
            && slot
                .in_use
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            return slot;
        }
        cur = slot.next.load(Ordering::Acquire);
    }
    // None free: grow the registry by one leaked slot.
    let slot: &'static HazardSlot = Box::leak(Box::new(HazardSlot {
        hazard: AtomicPtr::new(ptr::null_mut()),
        in_use: AtomicBool::new(true),
        next: AtomicPtr::new(ptr::null_mut()),
    }));
    loop {
        let head = SLOTS.load(Ordering::Acquire);
        slot.next.store(head, Ordering::Relaxed);
        if SLOTS
            .compare_exchange(
                head,
                slot as *const _ as *mut _,
                Ordering::Release,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return slot;
        }
    }
}

/// Whether any active slot currently protects `p`.
fn any_slot_protects(p: *mut ()) -> bool {
    let mut cur = SLOTS.load(Ordering::Acquire);
    while let Some(slot) = unsafe { cur.as_ref() } {
        if slot.hazard.load(Ordering::SeqCst) == p {
            return true;
        }
        cur = slot.next.load(Ordering::Acquire);
    }
    false
}

/// Per-thread cached slot so the common path skips the registry scan.
/// Released (recycled) when the thread exits.
struct ThreadSlot(Cell<Option<&'static HazardSlot>>);

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        if let Some(slot) = self.0.get() {
            slot.in_use.store(false, Ordering::Release);
        }
    }
}

thread_local! {
    static THREAD_SLOT: ThreadSlot = const { ThreadSlot(Cell::new(None)) };
}

/// Runs `f` with this thread's hazard slot, falling back to a one-shot
/// slot during thread teardown (when the thread-local is gone).
fn with_slot<R>(f: impl FnOnce(&'static HazardSlot) -> R) -> R {
    let cached = THREAD_SLOT
        .try_with(|ts| {
            if ts.0.get().is_none() {
                ts.0.set(Some(acquire_slot()));
            }
            ts.0.get().expect("just set")
        })
        .ok();
    match cached {
        Some(slot) => f(slot),
        None => {
            let slot = acquire_slot();
            let out = f(slot);
            slot.in_use.store(false, Ordering::Release);
            out
        }
    }
}

/// An atomic `Arc<T>` cell: readers get wait-free snapshots, writers
/// publish a replacement without ever blocking readers.
pub struct ArcSwap<T> {
    /// Owns one strong count on the stored `Arc`.
    ptr: AtomicPtr<T>,
}

// Same bounds as a plain `Arc<T>` shared across threads.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Wraps an existing `Arc`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
        }
    }

    /// Allocates a fresh `Arc` around `value`.
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Wait-free read: returns a guard dereferencing to the current value.
    /// The guard owns a strong count, so it stays valid across any number
    /// of subsequent `store`/`swap` calls.
    pub fn load(&self) -> Guard<T> {
        Guard {
            inner: self.protected_arc(),
        }
    }

    /// Like [`load`](ArcSwap::load) but returns the `Arc` itself.
    pub fn load_full(&self) -> Arc<T> {
        self.protected_arc()
    }

    /// Publishes `new`, dropping the previous value once no reader still
    /// has it in a hazard slot.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publishes `new` and returns the previous value. Blocks (spinning)
    /// only until in-flight readers of the *old* pointer finish their
    /// few-instruction protection window — never for the lifetime of a
    /// returned guard.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let new_ptr = Arc::into_raw(new) as *mut T;
        let old = self.ptr.swap(new_ptr, Ordering::SeqCst);
        // A reader that published `old` before the swap will finish its
        // increment and clear the slot; one that publishes after will fail
        // validation and retry on the new pointer. Either way the wait is
        // bounded by the protection window, not by guard lifetimes.
        while any_slot_protects(old as *mut ()) {
            std::thread::yield_now();
        }
        unsafe { Arc::from_raw(old) }
    }

    /// Hazard-protected strong-count acquisition on the current pointer.
    fn protected_arc(&self) -> Arc<T> {
        with_slot(|slot| loop {
            let p = self.ptr.load(Ordering::SeqCst);
            slot.hazard.store(p as *mut (), Ordering::SeqCst);
            if self.ptr.load(Ordering::SeqCst) == p {
                // Protected: the pointer cannot be freed until the slot
                // clears, so the count bump below races with nothing.
                unsafe { Arc::increment_strong_count(p) };
                slot.hazard.store(ptr::null_mut(), Ordering::SeqCst);
                return unsafe { Arc::from_raw(p) };
            }
            // A writer moved the pointer mid-protection; retry.
            slot.hazard.store(ptr::null_mut(), Ordering::SeqCst);
        })
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent readers can exist, so the owned
        // count can be released without a hazard scan.
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::Relaxed))) }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&*self.load()).finish()
    }
}

/// A read snapshot: dereferences to the value current at [`ArcSwap::load`]
/// time and keeps it alive independently of later swaps.
pub struct Guard<T> {
    inner: Arc<T>,
}

impl<T> Deref for Guard<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Guard<T> {
    /// Upgrades the guard to a full `Arc`.
    pub fn into_arc(self) -> Arc<T> {
        self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Guard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static LIVE: AtomicUsize = AtomicUsize::new(0);

    /// A payload whose population is observable, to catch leaks and
    /// double-frees.
    struct Counted(u64);

    impl Counted {
        fn new(v: u64) -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Counted(v)
        }
    }

    impl Drop for Counted {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_sees_latest_store() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.load_full(), 2);
    }

    #[test]
    fn swap_returns_the_displaced_value() {
        let cell = ArcSwap::from_pointee(10u64);
        let old = cell.swap(Arc::new(20));
        assert_eq!(*old, 10);
        assert_eq!(*cell.load(), 20);
    }

    #[test]
    fn guards_outlive_swaps() {
        let cell = ArcSwap::from_pointee(String::from("first"));
        let guard = cell.load();
        cell.store(Arc::new(String::from("second")));
        // The old snapshot stays valid while the guard lives.
        assert_eq!(&*guard, "first");
        assert_eq!(&*cell.load(), "second");
    }

    #[test]
    fn no_leaks_or_double_frees_single_threaded() {
        let before = LIVE.load(Ordering::SeqCst);
        {
            let cell = ArcSwap::new(Arc::new(Counted::new(0)));
            for i in 1..100 {
                let g = cell.load();
                let old = cell.swap(Arc::new(Counted::new(i)));
                assert_eq!(old.0 + 1, i);
                drop(g);
            }
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), before);
    }

    #[test]
    fn strong_counts_balance() {
        let arc = Arc::new(7u64);
        let cell = ArcSwap::new(Arc::clone(&arc));
        assert_eq!(Arc::strong_count(&arc), 2);
        let g1 = cell.load();
        let g2 = cell.load_full();
        assert_eq!(Arc::strong_count(&arc), 4);
        drop(g1);
        drop(g2);
        assert_eq!(Arc::strong_count(&arc), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&arc), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let before = LIVE.load(Ordering::SeqCst);
        {
            // Payload carries a self-check: both halves must agree, so a
            // torn or freed read would trip the assertion.
            struct Pair(u64, u64, #[allow(dead_code)] Counted);
            let cell = Arc::new(ArcSwap::new(Arc::new(Pair(0, !0, Counted::new(0)))));
            let stop = Arc::new(AtomicBool::new(false));
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut reads = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let g = cell.load();
                            assert_eq!(g.0, !g.1, "torn read");
                            reads += 1;
                        }
                        reads
                    })
                })
                .collect();
            let writers: Vec<_> = (0..2)
                .map(|w| {
                    let cell = Arc::clone(&cell);
                    std::thread::spawn(move || {
                        for i in 0..500u64 {
                            let v = w * 1000 + i;
                            let old = cell.swap(Arc::new(Pair(v, !v, Counted::new(v))));
                            assert_eq!(old.0, !old.1, "torn swap result");
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().expect("writer");
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().expect("reader") > 0);
            }
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), before, "leak or double free");
    }

    #[test]
    fn writer_does_not_wait_for_held_guards() {
        let cell = ArcSwap::from_pointee(1u64);
        let guard = cell.load();
        // Must return despite the outstanding guard: guards hold strong
        // counts, not hazard slots.
        cell.store(Arc::new(2));
        assert_eq!(*guard, 1);
        assert_eq!(*cell.load(), 2);
    }
}
