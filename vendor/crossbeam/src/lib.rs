//! Offline shim of the `crossbeam` APIs used by this workspace.
//!
//! Two modules are provided:
//!
//! * [`thread`] — `crossbeam::thread::scope`, backed by `std::thread::scope`
//!   (stable since Rust 1.63): `scope(|s| ...)` returning a `Result`, and
//!   `Scope::spawn` whose closure receives the scope again (crossbeam's
//!   signature) so nested spawns are possible.
//! * [`deque`] — the `crossbeam-deque` work-stealing surface
//!   ([`deque::Injector`], [`deque::Worker`], [`deque::Stealer`],
//!   [`deque::Steal`]) used by the `intune_exec` measurement engine. The
//!   shim is mutex-backed rather than lock-free: it preserves the upstream
//!   API and semantics (FIFO workers, batch steals move up to half the
//!   source queue) at smoke-quality throughput, which is ample for
//!   coarse-grained benchmark-measurement cells.

pub mod thread {
    use std::any::Any;

    /// Wrapper over [`std::thread::Scope`] mirroring crossbeam's `Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (ignored
        /// by all current callers, but kept for API fidelity).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. `std::thread::scope` propagates child panics by resuming
    /// them in the parent, so the `Err` arm is never produced here — the
    /// `Result` exists to match crossbeam's signature (callers `.expect()`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Mutex-backed shim of `crossbeam-deque`.
    //!
    //! `Worker::new_fifo()` creates a FIFO queue owned by one thread;
    //! `Worker::stealer()` hands out cloneable [`Stealer`]s for the other
    //! threads; [`Injector`] is the shared MPMC overflow queue. `Steal`
    //! mirrors the upstream three-way result so caller loops written
    //! against real crossbeam compile unchanged.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some(task)` on success, `None` otherwise.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the source queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// Shared batch-steal: takes up to half of `src` (at least one task),
    /// pops the first for the thief, pushes the rest onto `dest`.
    fn steal_half<T>(src: &Mutex<VecDeque<T>>, dest: &Worker<T>) -> Steal<T> {
        let mut src = src.lock().expect("deque poisoned");
        let take = src.len().div_ceil(2);
        if take == 0 {
            return Steal::Empty;
        }
        let mut batch: VecDeque<T> = src.drain(..take).collect();
        drop(src);
        let first = batch.pop_front().expect("nonempty batch");
        if !batch.is_empty() {
            dest.queue
                .lock()
                .expect("worker deque poisoned")
                .extend(batch);
        }
        Steal::Success(first)
    }

    /// A FIFO worker queue owned by a single thread.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .push_back(task);
        }

        /// Pops a task from the front of the queue (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("worker deque poisoned").len()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle that steals tasks from another thread's [`Worker`].
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals a single task from the front of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals up to half of the victim's tasks into `dest`, then pops
        /// one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_half(&self.queue, dest)
        }

        /// Whether the victim's queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker deque poisoned").is_empty()
        }
    }

    /// The shared MPMC injector queue tasks are seeded into.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the injector.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals a single task from the front of the injector.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Moves up to half of the injector (at least one task) into
        /// `dest`, then pops one of the moved tasks.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_half(&self.queue, dest)
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn scoped_threads_fill_buffer() {
        let mut buf = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in buf.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for s in slot.iter_mut() {
                        *s = i as u32 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(buf, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn worker_is_fifo_and_stealable() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert!(w.is_empty());
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_steal_moves_half() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..8 {
            inj.push(i);
        }
        let w: Worker<u32> = Worker::new_fifo();
        // Takes ceil(8/2) = 4 tasks: pops task 0, leaves 1..4 in `w`.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.len(), 3);
        assert_eq!(inj.len(), 4);
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn stealer_batch_steal_from_sibling() {
        let victim: Worker<u32> = Worker::new_fifo();
        for i in 0..6 {
            victim.push(i);
        }
        let thief: Worker<u32> = Worker::new_fifo();
        assert_eq!(
            victim.stealer().steal_batch_and_pop(&thief),
            Steal::Success(0)
        );
        assert_eq!(thief.len(), 2);
        assert_eq!(victim.len(), 3);
    }

    #[test]
    fn empty_sources_report_empty() {
        let inj: Injector<u8> = Injector::new();
        let w: Worker<u8> = Worker::new_fifo();
        assert!(inj.is_empty());
        assert!(inj.steal().is_empty());
        assert!(inj.steal_batch_and_pop(&w).is_empty());
        assert!(w.stealer().steal_batch_and_pop(&w).is_empty());
    }

    #[test]
    fn concurrent_steals_drain_everything_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let inj: Injector<u64> = Injector::new();
        for i in 0..1000u64 {
            inj.push(i);
        }
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let local: Worker<u64> = Worker::new_fifo();
                    loop {
                        if let Some(t) = local.pop() {
                            sum.fetch_add(t, Ordering::Relaxed);
                        } else {
                            match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => {
                                    sum.fetch_add(t, Ordering::Relaxed);
                                }
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
