//! Offline shim of the `crossbeam::thread::scope` API used by this
//! workspace, backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! Only the subset the sources call is provided: `scope(|s| ...)` returning
//! a `Result`, and `Scope::spawn` whose closure receives the scope again
//! (crossbeam's signature) so nested spawns are possible.

pub mod thread {
    use std::any::Any;

    /// Wrapper over [`std::thread::Scope`] mirroring crossbeam's `Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (ignored
        /// by all current callers, but kept for API fidelity).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. `std::thread::scope` propagates child panics by resuming
    /// them in the parent, so the `Err` arm is never produced here — the
    /// `Result` exists to match crossbeam's signature (callers `.expect()`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_buffer() {
        let mut buf = vec![0u32; 8];
        super::thread::scope(|scope| {
            for (i, slot) in buf.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for s in slot.iter_mut() {
                        *s = i as u32 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(buf, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }
}
