//! Offline shim of the `criterion` API surface used by this workspace.
//!
//! Implements the subset the bench targets call: `Criterion`,
//! `benchmark_group` (with `sample_size` / `warm_up_time` /
//! `measurement_time` / `finish`), `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark does a short warm-up
//! and then times batches of iterations until the (scaled-down) measurement
//! time elapses, reporting mean ns/iter to stdout. It is a smoke-quality
//! harness for offline use, not a statistical replacement for criterion.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Scale factor applied to warm-up/measurement budgets so the full bench
/// suite stays CI-affordable. `INTUNE_BENCH_FAST=1` shrinks every bench to
/// a single iteration (used when bench binaries run under `cargo test`).
fn fast_mode() -> bool {
    std::env::var("INTUNE_BENCH_FAST").is_ok_and(|v| v != "0")
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(group: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", group.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

pub struct Bencher {
    iters_done: u64,
    total: Duration,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if fast_mode() {
            let start = Instant::now();
            black_box(routine());
            self.total = start.elapsed();
            self.iters_done = 1;
            return;
        }
        // Warm-up: one call, also used to size batches.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let mut iters: u64 = 1;
        let mut total = first;
        while total < self.budget && iters < 1_000_000 {
            let batch = ((self.budget.as_nanos() / first.as_nanos()).clamp(1, 1000)) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.iters_done = iters;
        self.total = total;
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        // Scale down: the shim aims for smoke-quality numbers, fast.
        self.budget = (t / 20).clamp(Duration::from_millis(5), Duration::from_millis(250));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        report(&self.name, &id.name, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            total: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b, input);
        report(&self.name, &id.name, &b);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, bench: &str, b: &Bencher) {
    let per_iter = if b.iters_done == 0 {
        0
    } else {
        b.total.as_nanos() / b.iters_done as u128
    };
    println!(
        "bench {group}/{bench}: {per_iter} ns/iter ({} iters)",
        b.iters_done
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: Duration::from_millis(50),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` to harness=false targets;
            // `cargo test` does not. Without it (test mode), shrink every
            // bench to a single iteration so the suite stays fast.
            if !std::env::args().any(|a| a == "--bench") {
                std::env::set_var("INTUNE_BENCH_FAST", "1");
            }
            $($group();)+
        }
    };
}
