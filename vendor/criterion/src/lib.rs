//! Offline shim of the `criterion` API surface used by this workspace.
//!
//! Implements the subset the bench targets call: `Criterion`,
//! `benchmark_group` (with `sample_size` / `warm_up_time` /
//! `measurement_time` / `finish`), `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement: each benchmark does a short warm-up, then times batches of
//! iterations until the (scaled-down) measurement budget elapses. Each
//! batch contributes one per-iteration sample; the report line carries the
//! **min / median / p95** of those samples plus **iterations per second**
//! (from the median), so regressions in both the fast path and the tail
//! are visible. It remains a smoke-quality harness for offline use, not a
//! statistical replacement for criterion — but the order statistics make
//! its deltas trustworthy enough to track in `BENCH_*.json` baselines.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Scale factor applied to warm-up/measurement budgets so the full bench
/// suite stays CI-affordable. `INTUNE_BENCH_FAST=1` shrinks every bench to
/// a single iteration (used when bench binaries run under `cargo test`).
fn fast_mode() -> bool {
    std::env::var("INTUNE_BENCH_FAST").is_ok_and(|v| v != "0")
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(group: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", group.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Order statistics of one benchmark's per-iteration samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Fastest per-iteration time observed (ns).
    pub min_ns: f64,
    /// Median per-iteration time (ns).
    pub median_ns: f64,
    /// 95th-percentile per-iteration time (ns) — the tail.
    pub p95_ns: f64,
    /// Iterations per second implied by the median.
    pub iters_per_sec: f64,
    /// Total iterations executed.
    pub iters: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice; `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

pub struct Bencher {
    /// Per-iteration time of each measured batch (ns).
    samples: Vec<f64>,
    iters_done: u64,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if fast_mode() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos().max(1) as f64);
            self.iters_done = 1;
            return;
        }
        // Warm-up: one call, also used to size batches (not recorded).
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let mut iters: u64 = 1;
        let mut total = first;
        while total < self.budget && iters < 1_000_000 {
            let batch = ((self.budget.as_nanos() / first.as_nanos()).clamp(1, 1000)) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_nanos().max(1) as f64 / batch as f64);
            total += elapsed;
            iters += batch;
        }
        if self.samples.is_empty() {
            // Budget consumed by the warm-up call alone: record it so the
            // summary is never empty.
            self.samples.push(first.as_nanos() as f64);
        }
        self.iters_done = iters;
    }

    /// Order statistics over the recorded batch samples.
    pub fn summary(&self) -> Summary {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = percentile(&sorted, 0.5);
        Summary {
            min_ns: percentile(&sorted, 0.0),
            median_ns: median,
            p95_ns: percentile(&sorted, 0.95),
            iters_per_sec: if median > 0.0 { 1e9 / median } else { 0.0 },
            iters: self.iters_done,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        // Scale down: the shim aims for smoke-quality numbers, fast.
        self.budget = (t / 20).clamp(Duration::from_millis(5), Duration::from_millis(250));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_done: 0,
            budget: self.budget,
        };
        f(&mut b);
        report(&self.name, &id.name, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_done: 0,
            budget: self.budget,
        };
        f(&mut b, input);
        report(&self.name, &id.name, &b);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, bench: &str, b: &Bencher) {
    let s = b.summary();
    println!(
        "bench {group}/{bench}: min {:.0} ns, median {:.0} ns, p95 {:.0} ns \
         ({} iters, {:.1} iters/s)",
        s.min_ns, s.median_ns, s.p95_ns, s.iters, s.iters_per_sec
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: Duration::from_millis(50),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` to harness=false targets;
            // `cargo test` does not. Without it (test mode), shrink every
            // bench to a single iteration so the suite stays fast.
            if !std::env::args().any(|a| a == "--bench") {
                std::env::set_var("INTUNE_BENCH_FAST", "1");
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.95), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn summary_orders_statistics() {
        let b = Bencher {
            samples: vec![30.0, 10.0, 20.0, 100.0, 50.0],
            iters_done: 5,
            budget: Duration::from_millis(5),
        };
        let s = b.summary();
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.median_ns, 30.0);
        assert_eq!(s.p95_ns, 100.0);
        assert_eq!(s.iters, 5);
        assert!((s.iters_per_sec - 1e9 / 30.0).abs() < 1e-6);
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_done: 0,
            budget: Duration::from_millis(5),
        };
        b.iter(|| black_box(3u64.pow(7)));
        let s = b.summary();
        assert!(s.iters >= 1);
        assert!(s.min_ns > 0.0);
        assert!(s.p95_ns >= s.median_ns);
        assert!(s.median_ns >= s.min_ns);
    }
}
