//! No-op `Serialize` / `Deserialize` derives for the offline `serde` shim.
//!
//! The workspace only uses serde derives as structural markers (no code
//! actually serializes anything yet), so the derives emit an empty token
//! stream. When real serialization lands, swap the shim for the published
//! crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
