//! Real `Serialize` / `Deserialize` derives for the offline `serde` shim.
//!
//! Upstream `serde_derive` builds on `syn`; no such dependency exists in
//! this offline workspace, so the item is parsed directly from the
//! `proc_macro` token stream. The supported grammar is exactly what the
//! workspace's model types use:
//!
//! * non-generic `struct`s — named fields, tuple (incl. newtype), unit;
//! * non-generic `enum`s — unit, tuple and struct variants.
//!
//! Generated code follows upstream `serde_json` conventions so documents
//! stay compatible if the published crates are ever vendored: structs map
//! to objects, newtype structs are transparent, tuples map to arrays, and
//! enums are externally tagged (`"Variant"` for unit variants,
//! `{"Variant": payload}` otherwise). Generic types are rejected with a
//! compile-time panic naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Item model + parsing
// ---------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(iter: &mut Tokens) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // '#'
                iter.next(); // '[...]'
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // '(crate)' etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(iter: &mut Tokens, what: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive shim: expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = expect_ident(&mut iter, "`struct` or `enum`");
    let name = expect_ident(&mut iter, "a type name");
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde derive shim: generic type `{name}` is not supported \
                 (see vendor/serde_derive/src/lib.rs)"
            );
        }
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde derive shim: malformed struct body: {other:?}"),
        }),
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive shim: malformed enum body: {other:?}"),
        },
        other => panic!("serde derive shim: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Parses `field: Type, ...`, returning the field names. Types are skipped
/// up to the next comma at angle-bracket depth zero (grouped tokens such
/// as tuples and attribute bodies are atomic trees, so only `<`/`>` need
/// explicit depth tracking).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive shim: expected a field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive shim: expected `:` after `{name}`, found {other:?}"),
        }
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tok in stream {
        any = true;
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive shim: expected a variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        // Consume the separating comma, if any (discriminants like `= 3`
        // do not occur on serde-derived enums in this workspace).
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            // `Null` fields (`Option::None`) are omitted entirely, so a
            // type can grow optional fields without changing the encoding
            // of values that do not use them (the deserializer treats an
            // absent field as `Null`, closing the round trip).
            format!(
                "::serde::Value::Object(vec![{}].into_iter().filter(|__kv| \
                 !matches!(__kv.1, ::serde::Value::Null)).collect())",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(String::from(\"{v}\"), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(String::from(\"{v}\"), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        // Same `Null`-elision rule as named-field structs.
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (String::from(\"{v}\"), ::serde::Value::Object(vec![{}]\
                             .into_iter().filter(|__kv| !matches!(__kv.1, \
                             ::serde::Value::Null)).collect()))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 ::serde::de::Error::invalid(\"{name}\", \"an array\"))?; \
                 if __arr.len() != {n} {{ return Err(::serde::de::Error::invalid(\
                 \"{name}\", \"an array of {n} elements\")); }} \
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            // An absent field reads as `Null` (so optional fields elided
            // by the serializer round-trip); a field whose type cannot
            // absorb `Null` still reports the missing-field error.
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match ::serde::de::opt_field(__fields, \"{f}\") {{ \
                         Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                         None => ::serde::Deserialize::from_value(&::serde::Value::Null)\
                         .map_err(|_| ::serde::de::Error::missing_field(\"{name}\", \"{f}\"))?, \
                         }},"
                    )
                })
                .collect();
            format!(
                "let __fields = __value.as_object().ok_or_else(|| \
                 ::serde::de::Error::invalid(\"{name}\", \"an object\"))?; \
                 Ok({name} {{ {} }})",
                items.join(" ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::de::Error::invalid(\"{name}::{v}\", \"an array\"))?; \
                             if __arr.len() != {n} {{ return Err(::serde::de::Error::invalid(\
                             \"{name}::{v}\", \"an array of {n} elements\")); }} \
                             Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: match ::serde::de::opt_field(__fields, \"{f}\") {{ \
                                     Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                                     None => ::serde::Deserialize::from_value(\
                                     &::serde::Value::Null).map_err(|_| \
                                     ::serde::de::Error::missing_field(\"{name}::{v}\", \
                                     \"{f}\"))?, }},"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __fields = __inner.as_object().ok_or_else(|| \
                             ::serde::de::Error::invalid(\"{name}::{v}\", \"an object\"))?; \
                             Ok({name}::{v} {{ {} }}) }}",
                            items.join(" ")
                        ))
                    }
                })
                .collect();
            let tail = if payload_arms.is_empty() {
                format!("Err(::serde::de::Error::invalid(\"{name}\", \"a variant name string\"))")
            } else {
                format!(
                    "let (__tag, __inner) = ::serde::de::variant(__value)?; \
                     match __tag {{ {payload} __other => \
                     Err(::serde::de::Error::unknown_variant(\"{name}\", __other)), }}",
                    payload = payload_arms.join(" ")
                )
            };
            format!(
                "if let ::serde::Value::String(__s) = __value {{ \
                 return match __s.as_str() {{ {unit} __other => \
                 Err(::serde::de::Error::unknown_variant(\"{name}\", __other)), }}; }} \
                 {tail}",
                unit = unit_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} }}"
    )
}
