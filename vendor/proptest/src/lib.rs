//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! The container cannot reach crates.io, so this crate re-implements just
//! what the seed test suites call: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, [`strategy::Strategy`] with
//! `prop_map`, range strategies, tuple strategies, `collection::vec`, and
//! `num::f64::NORMAL`. There is no shrinking: a failing case panics with
//! the test name, case number, and assertion message.
//!
//! Determinism: every test function derives its RNG seed from a stable
//! hash of `module_path!() + test name`, so `cargo test` is reproducible
//! run-to-run and machine-to-machine. `PROPTEST_CASES` in the environment
//! caps the per-test case count (the smaller of the env value and the
//! `ProptestConfig::with_cases` value wins), which CI uses to bound run
//! time.

pub mod strategy;

pub mod test_runner {
    /// RNG used to generate test cases (the workspace's deterministic
    /// xoshiro shim).
    pub type TestRng = rand::rngs::StdRng;

    /// Mirrors the subset of `proptest::test_runner::Config` we use.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Case count after applying the `PROPTEST_CASES` environment cap.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
            {
                Some(env_cases) => self.cases.min(env_cases.max(1)),
                None => self.cases,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// `prop_assert!` / `prop_assert_eq!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Stable FNV-1a hash of the fully-qualified test name: the per-test
    /// RNG seed. Independent of rustc, platform, and process.
    pub fn seed_for_test(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn rng_for_test(name: &str) -> TestRng {
        use rand::SeedableRng;
        TestRng::seed_from_u64(seed_for_test(name))
    }
}

/// `proptest::collection` — only `vec` is provided.
pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// `proptest::num` — only `f64::NORMAL` is provided.
pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy over finite, non-subnormal `f64` values with widely
        /// varying magnitude (sign * mantissa * 2^exp, exp in [-40, 40]).
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                let mantissa: f64 = rng.gen_range(1.0..2.0);
                let exp: i32 = rng.gen_range(-40..41);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * mantissa * (exp as f64).exp2()
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirror of proptest's prelude `prop` module path
    /// (`prop::collection::vec`, `prop::num::f64::NORMAL`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Fails the current case (re-drawn up to a rejection budget) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // stringify! goes through a `{}` placeholder, not the format-string
        // position: asserted expressions may themselves contain braces.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left_val,
                right_val,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(*left_val == *right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                left_val,
                right_val,
            )));
        }
    }};
}

/// The `proptest!` block macro: an optional `#![proptest_config(..)]`
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let full_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::rng_for_test(full_name);
            let strategies = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let max_rejects = cases.saturating_mul(32).max(4096);
            while accepted < cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= max_rejects,
                            "proptest {full_name}: too many prop_assume! rejections ({rejected})",
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {full_name} failed on case {}/{} (seed {}):\n{}",
                            accepted + 1,
                            cases,
                            $crate::test_runner::seed_for_test(full_name),
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}
