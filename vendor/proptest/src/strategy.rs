//! Generation strategies: ranges, tuples, `vec`, `prop_map`, `Just`.
//!
//! No shrinking — `generate` draws one value from the deterministic test
//! RNG. Strategies are generated through `&self` so one strategy value
//! serves every case of a test run.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Length specification for `collection::vec`: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection::vec: empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection::vec: empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
