//! Offline shim of [`mio`](https://docs.rs/mio/0.8)'s readiness-polling
//! core, implemented over POSIX `poll(2)`.
//!
//! The container has no crates.io access, so the surface the daemon's
//! event loop uses is vendored here with upstream-compatible names and
//! signatures: [`Poll`], [`Registry`], [`Events`], [`Event`], [`Token`],
//! [`Interest`], and [`unix::SourceFd`]. Code written against this shim
//! compiles against real mio unchanged (modulo mio's extra surface).
//!
//! ## Why poll(2), not epoll
//!
//! Upstream mio backs Linux with `epoll` for O(ready) dispatch. This shim
//! deliberately uses `poll(2)` — the portable POSIX call every unix has —
//! because the daemon's registration sets are hundreds of fds, not
//! hundreds of thousands, and an O(registered) scan per wakeup is noise
//! next to frame parsing and model inference. In exchange the shim needs
//! no epoll fd lifecycle, works on every unix, and keeps the readiness
//! semantics trivially auditable.
//!
//! ## Level-triggered semantics
//!
//! Like upstream mio's default, readiness here is **level-triggered per
//! call**: every [`Poll::poll`] re-evaluates all registered fds, so a
//! socket with unread input keeps reporting readable until drained.
//! Callers must still drain until `WouldBlock` for throughput, but a
//! missed byte is latency, never a lost wakeup. Peer hangup and error
//! conditions surface as readable/writable (matching mio's epoll
//! mapping), so I/O paths discover them via `read`/`write` returning
//! 0/error — plus [`Event::is_error`] / [`Event::is_read_closed`] for
//! callers that want the hint without a syscall.
//!
//! This file is the one place in the workspace (alongside the other
//! vendored shims) allowed to contain `unsafe`: the single FFI
//! declaration of `poll(2)` and its call site, both documented inline.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::RawFd;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Associates a registered event source with the events [`Poll::poll`]
/// returns for it. Pure user data; the shim never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
///
/// Combine with [`Interest::add`] or `|`:
/// `Interest::READABLE | Interest::WRITABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interest(u8);

const INTEREST_READABLE: u8 = 0b01;
const INTEREST_WRITABLE: u8 = 0b10;

impl Interest {
    /// Interest in readable events.
    pub const READABLE: Interest = Interest(INTEREST_READABLE);
    /// Interest in writable events.
    pub const WRITABLE: Interest = Interest(INTEREST_WRITABLE);

    /// Combines two interests (upstream's non-const `|` helper).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether readable events are included.
    pub const fn is_readable(self) -> bool {
        self.0 & INTEREST_READABLE != 0
    }

    /// Whether writable events are included.
    pub const fn is_writable(self) -> bool {
        self.0 & INTEREST_WRITABLE != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

// poll(2) event bits, identical across Linux and the BSDs (POSIX pins
// the names; these values are universal in practice).
const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

// SAFETY CONTRACT: `poll` reads and writes exactly `nfds` `PollFd`
// entries at `fds` and nothing else; `PollFd` above is layout-identical
// to the C `struct pollfd` (three C ints/shorts, #[repr(C)]).
extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// One readiness event: the registered [`Token`] plus what its source is
/// ready for.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    revents: c_short,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable readiness. Hangup and error conditions count (as in
    /// mio's epoll mapping): a `read` is the way to observe them.
    pub fn is_readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writable readiness. Hangup and error conditions count: a `write`
    /// is the way to observe them.
    pub fn is_writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// The source is in an error state (`POLLERR`), or the registered fd
    /// was invalid (`POLLNVAL`).
    pub fn is_error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// The peer hung up (`POLLHUP`): reads will drain buffered data and
    /// then return 0.
    pub fn is_read_closed(&self) -> bool {
        self.revents & POLLHUP != 0
    }

    /// The write side is closed (`POLLHUP`/`POLLERR`): writes will fail.
    pub fn is_write_closed(&self) -> bool {
        self.revents & (POLLHUP | POLLERR) != 0
    }
}

/// A buffer of events filled by [`Poll::poll`]. Capacity bounds how many
/// events one call may return; sources beyond it stay ready (level
/// triggering) and surface on the next call.
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Creates a buffer returning at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll returned no events (timeout expired).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer (also done by every [`Poll::poll`] call).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The registration table: fd → (token, interest). A `BTreeMap` keyed by
/// fd makes the pollfd array order — and therefore event order —
/// deterministic, which keeps event-loop behavior reproducible under
/// test.
type Registrations = Arc<Mutex<BTreeMap<RawFd, (Token, Interest)>>>;

/// Registers event sources with a [`Poll`] instance. Obtained from
/// [`Poll::registry`]; shareable (all methods take `&self`).
#[derive(Debug)]
pub struct Registry {
    registrations: Registrations,
}

fn lock(r: &Registrations) -> std::sync::MutexGuard<'_, BTreeMap<RawFd, (Token, Interest)>> {
    r.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Registers `source` for `interests`, tagging its events `token`.
    ///
    /// # Errors
    /// `AlreadyExists` if the source's fd is already registered.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Changes an existing registration's token and/or interests.
    ///
    /// # Errors
    /// `NotFound` if the source's fd is not registered.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Removes a source's registration.
    ///
    /// # Errors
    /// `NotFound` if the source's fd is not registered.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    fn register_fd(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        let mut table = lock(&self.registrations);
        if table.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        table.insert(fd, (token, interests));
        Ok(())
    }

    fn reregister_fd(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        match lock(&self.registrations).get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interests);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }

    fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
        match lock(&self.registrations).remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }
}

/// Polls registered sources for readiness.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a poll instance with an empty registration table.
    ///
    /// # Errors
    /// Infallible in this shim (signature matches upstream).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                registrations: Arc::new(Mutex::new(BTreeMap::new())),
            },
        })
    }

    /// The registry sources are (de)registered through.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// expires (`None` = wait indefinitely), then fills `events` with up
    /// to its capacity of ready sources.
    ///
    /// # Errors
    /// Propagates `poll(2)` failures. `EINTR` is retried internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        // Snapshot under the lock, poll outside it: registrations from
        // other threads land on the next call.
        let snapshot: Vec<(RawFd, Token, Interest)> = lock(&self.registry.registrations)
            .iter()
            .map(|(fd, (token, interest))| (*fd, *token, *interest))
            .collect();
        let mut fds: Vec<PollFd> = snapshot
            .iter()
            .map(|(fd, _, interest)| PollFd {
                fd: *fd,
                events: (if interest.is_readable() { POLLIN } else { 0 })
                    | (if interest.is_writable() { POLLOUT } else { 0 }),
                revents: 0,
            })
            .collect();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => d
                .as_millis()
                .min(c_int::MAX as u128)
                .try_into()
                .expect("clamped to c_int::MAX"),
        };
        loop {
            // SAFETY: `fds` is a live, exclusively-borrowed Vec of
            // `nfds` repr(C) pollfd entries; poll(2) only touches that
            // range (see the extern block's contract).
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry. The full timeout restarts — acceptable for a
            // shim whose callers treat the timeout as a heartbeat, not a
            // deadline.
        }
        for (pollfd, (_, token, _)) in fds.iter().zip(&snapshot) {
            if pollfd.revents != 0 {
                events.inner.push(Event {
                    token: *token,
                    revents: pollfd.revents,
                });
                if events.inner.len() == events.capacity {
                    break;
                }
            }
        }
        Ok(())
    }
}

/// The [`event::Source`] trait, in its upstream module location.
pub mod event {
    use super::{io, Interest, Registry, Token};

    /// An event source that can be registered with a [`Registry`].
    pub trait Source {
        /// Registers with `registry` (called by [`Registry::register`]).
        ///
        /// # Errors
        /// `AlreadyExists` if the source is already registered.
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        /// Updates a registration (called by [`Registry::reregister`]).
        ///
        /// # Errors
        /// `NotFound` if the source is not registered.
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;

        /// Removes a registration (called by [`Registry::deregister`]).
        ///
        /// # Errors
        /// `NotFound` if the source is not registered.
        fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
    }
}

/// Unix-only adapters, in their upstream module location.
pub mod unix {
    use super::{event, io, Interest, Registry, Token};
    use std::os::unix::io::RawFd;

    /// Adapts any raw file descriptor into an [`event::Source`] —
    /// upstream mio's escape hatch, and this shim's canonical way to
    /// register `std::net` sockets (which stay in blocking-API types;
    /// callers set nonblocking mode themselves).
    ///
    /// The caller keeps ownership of the fd and must deregister it
    /// before closing it.
    #[derive(Debug)]
    pub struct SourceFd<'a>(pub &'a RawFd);

    impl event::Source for SourceFd<'_> {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.register_fd(*self.0, token, interests)
        }

        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.reregister_fd(*self.0, token, interests)
        }

        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            registry.deregister_fd(*self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::unix::SourceFd;
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    const LISTENER: Token = Token(0);
    const CONN: Token = Token(1);

    fn poll_until(
        poll: &mut Poll,
        events: &mut Events,
        want: Token,
        pred: impl Fn(&Event) -> bool,
    ) -> Event {
        // Bounded retry loop: readiness may need a few scheduler ticks.
        for _ in 0..200 {
            poll.poll(events, Some(Duration::from_millis(50))).unwrap();
            if let Some(e) = events.iter().find(|e| e.token() == want && pred(e)) {
                return *e;
            }
        }
        panic!("no event for {want:?} within the retry budget");
    }

    #[test]
    fn interest_combines() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
        assert_eq!(both, Interest::READABLE.add(Interest::WRITABLE));
    }

    #[test]
    fn timeout_with_nothing_ready_returns_empty() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let fd = listener.as_raw_fd();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut SourceFd(&fd), LISTENER, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn accept_read_and_hangup_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let listener_fd = listener.as_raw_fd();

        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.registry()
            .register(&mut SourceFd(&listener_fd), LISTENER, Interest::READABLE)
            .unwrap();

        // A pending connection makes the listener readable.
        let mut peer = TcpStream::connect(addr).unwrap();
        poll_until(&mut poll, &mut events, LISTENER, Event::is_readable);
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        let conn_fd = conn.as_raw_fd();
        poll.registry()
            .register(
                &mut SourceFd(&conn_fd),
                CONN,
                Interest::READABLE | Interest::WRITABLE,
            )
            .unwrap();

        // A fresh socket with empty send buffers is writable.
        let e = poll_until(&mut poll, &mut events, CONN, Event::is_writable);
        assert!(!e.is_error());

        // Bytes from the peer make it readable.
        peer.write_all(b"ping").unwrap();
        poll_until(&mut poll, &mut events, CONN, Event::is_readable);
        let mut buf = [0u8; 8];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);

        // Narrowing interest to writable-only suppresses read events.
        poll.registry()
            .reregister(&mut SourceFd(&conn_fd), CONN, Interest::WRITABLE)
            .unwrap();
        peer.write_all(b"more").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events
            .iter()
            .all(|e| e.token() != CONN || e.revents & POLLIN == 0));

        // Peer hangup: readable again (drain-then-EOF), flagged closed.
        poll.registry()
            .reregister(&mut SourceFd(&conn_fd), CONN, Interest::READABLE)
            .unwrap();
        drop(peer);
        let e = poll_until(&mut poll, &mut events, CONN, Event::is_readable);
        assert_eq!(conn.read(&mut buf).unwrap(), 4, "buffered bytes drain");
        // After the drain the socket reports EOF; POLLHUP may or may not
        // be set depending on the close sequencing, so only assert the
        // read-side outcome.
        let _ = e.is_read_closed();
        poll_until(&mut poll, &mut events, CONN, Event::is_readable);
        assert_eq!(conn.read(&mut buf).unwrap(), 0, "EOF after hangup");

        poll.registry().deregister(&mut SourceFd(&conn_fd)).unwrap();
        poll.registry()
            .deregister(&mut SourceFd(&listener_fd))
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "deregistered fds report nothing");
    }

    #[test]
    fn registration_errors_are_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        let poll = Poll::new().unwrap();
        poll.registry()
            .register(&mut SourceFd(&fd), LISTENER, Interest::READABLE)
            .unwrap();
        let err = poll
            .registry()
            .register(&mut SourceFd(&fd), LISTENER, Interest::READABLE)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);

        poll.registry().deregister(&mut SourceFd(&fd)).unwrap();
        let err = poll.registry().deregister(&mut SourceFd(&fd)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let err = poll
            .registry()
            .reregister(&mut SourceFd(&fd), LISTENER, Interest::READABLE)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn event_capacity_bounds_one_poll() {
        // Three ready sources, capacity two: two events now, the third
        // (level-triggered) on the next call.
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(2);
        let pairs: Vec<(TcpStream, TcpStream)> = (0..3)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                let peer = TcpStream::connect(l.local_addr().unwrap()).unwrap();
                let (conn, _) = l.accept().unwrap();
                conn.set_nonblocking(true).unwrap();
                (conn, peer)
            })
            .collect();
        let fds: Vec<RawFd> = pairs.iter().map(|(c, _)| c.as_raw_fd()).collect();
        for (i, fd) in fds.iter().enumerate() {
            poll.registry()
                .register(&mut SourceFd(fd), Token(i), Interest::READABLE)
                .unwrap();
        }
        for (_, peer) in &pairs {
            let mut peer = peer;
            peer.write_all(b"x").unwrap();
        }
        // All three have a pending byte; the capped buffer reports two.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().count() == 2 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never saw 2 events");
        }
        let seen: Vec<usize> = events.iter().map(|e| e.token().0).collect();
        assert_eq!(seen, vec![0, 1], "deterministic fd-ordered dispatch");
    }
}
