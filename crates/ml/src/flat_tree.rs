//! Array-indexed decision-tree inference.
//!
//! A fitted [`DecisionTree`](crate::DecisionTree) stores its nodes as a
//! boxed recursive enum — ideal for induction and serialization, terrible
//! for the serving hot path, where every split dereferences a fresh heap
//! pointer. [`FlatTree`] re-packs the same tree into a contiguous
//! pre-order node array at load time: the left child of any split is the
//! next array element, so a prediction is a tight index-chasing loop over
//! one cache-friendly buffer with a single stored index per node.
//!
//! Flattening changes *layout only*. The comparison (`row[feature] <=
//! threshold`), traversal order, and therefore every prediction are
//! bit-identical to the boxed tree — the artifact serialization format is
//! untouched (flat trees are built in memory, never persisted).

use crate::decision_tree::DecisionTree;

/// Sentinel feature index marking a leaf node; real feature indices are
/// bounded by the training dimensionality, far below this.
const LEAF: u32 = u32::MAX;

/// One packed node. For splits, the left child is implicitly the next
/// array index and `right` holds the right child's index; for leaves
/// (`feature == LEAF`), `right` holds the predicted class.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    feature: u32,
    right: u32,
    threshold: f64,
}

/// A [`DecisionTree`](crate::DecisionTree) compiled to a pre-order node
/// array for allocation-free, pointer-chase-free prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
    num_classes: usize,
    num_features: usize,
}

impl FlatTree {
    pub(crate) fn build(tree: &DecisionTree, num_classes: usize, num_features: usize) -> Self {
        let mut nodes = Vec::with_capacity(2 * tree.num_leaves());
        Self::emit(tree.root_for_flatten(), &mut nodes);
        FlatTree {
            nodes,
            num_classes,
            num_features,
        }
    }

    fn emit(node: &crate::decision_tree::Node, nodes: &mut Vec<FlatNode>) -> u32 {
        use crate::decision_tree::Node;
        let idx = nodes.len() as u32;
        match node {
            Node::Leaf { class } => nodes.push(FlatNode {
                feature: LEAF,
                right: *class as u32,
                threshold: 0.0,
            }),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                nodes.push(FlatNode {
                    feature: *feature as u32,
                    right: 0, // patched after the right subtree is emitted
                    threshold: *threshold,
                });
                let left_idx = Self::emit(left, nodes);
                debug_assert_eq!(left_idx, idx + 1, "left child is pre-order adjacent");
                let right_idx = Self::emit(right, nodes);
                nodes[idx as usize].right = right_idx;
            }
        }
        idx
    }

    /// Predicts the class of one sample; identical to
    /// [`DecisionTree::predict`] on the source tree.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the training dimensionality.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.num_features, "dimension mismatch");
        self.predict_with(|f| row[f])
    }

    /// Predicts with an indexed value accessor, letting callers feed
    /// feature values straight out of their own storage (e.g. a sample
    /// buffer) without materializing a dense row first. `value(f)` must
    /// be defined for every `f < num_features`.
    pub fn predict_with(&self, mut value: impl FnMut(usize) -> f64) -> usize {
        let mut i = 0usize;
        loop {
            let n = self.nodes[i];
            if n.feature == LEAF {
                return n.right as usize;
            }
            i = if value(n.feature as usize) <= n.threshold {
                i + 1
            } else {
                n.right as usize
            };
        }
    }

    /// Number of classes the source tree was trained with.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of input features the tree expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total packed nodes (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::{DecisionTree, TreeOptions};

    /// Deterministic pseudo-random stream (no external RNG in unit tests).
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64) / ((1u64 << 31) as f64)
    }

    fn random_problem(seed: u64, n: usize, d: usize, k: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut s = seed;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| lcg(&mut s) * 10.0).collect())
            .collect();
        let y: Vec<usize> = x
            .iter()
            .map(|row| {
                let score: f64 = row
                    .iter()
                    .enumerate()
                    .map(|(j, v)| v * (j + 1) as f64)
                    .sum();
                (score as usize / 7) % k
            })
            .collect();
        (x, y)
    }

    #[test]
    fn flat_predictions_match_boxed_tree_exactly() {
        for seed in 0..5u64 {
            let (x, y) = random_problem(seed + 1, 120, 3, 4);
            let tree = DecisionTree::fit_plain(&x, &y, 4, TreeOptions::default());
            let flat = tree.flatten();
            assert_eq!(flat.num_classes(), tree.num_classes());
            assert_eq!(flat.num_features(), tree.num_features());
            // Training rows, plus off-manifold probes (including the exact
            // thresholds' neighborhoods via scaled rows).
            let mut s = seed + 99;
            for row in x.iter() {
                assert_eq!(flat.predict(row), tree.predict(row));
            }
            for _ in 0..500 {
                let probe: Vec<f64> = (0..3).map(|_| lcg(&mut s) * 12.0 - 1.0).collect();
                assert_eq!(flat.predict(&probe), tree.predict(&probe));
            }
        }
    }

    #[test]
    fn flat_node_count_matches_tree_shape() {
        let (x, y) = random_problem(7, 80, 2, 3);
        let tree = DecisionTree::fit_plain(&x, &y, 3, TreeOptions::default());
        let flat = tree.flatten();
        // A binary tree with L leaves has exactly 2L - 1 nodes.
        assert_eq!(flat.num_nodes(), 2 * tree.num_leaves() - 1);
    }

    #[test]
    fn stump_flattens_to_single_leaf() {
        let tree =
            DecisionTree::fit_plain(&[vec![1.0], vec![2.0]], &[1, 1], 2, TreeOptions::default());
        let flat = tree.flatten();
        assert_eq!(flat.num_nodes(), 1);
        assert_eq!(flat.predict(&[123.0]), 1);
    }

    #[test]
    fn predict_with_reads_by_feature_index() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 5.0]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let flat = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default()).flatten();
        assert_eq!(flat.predict_with(|f| [3.0, 5.0][f]), 0);
        assert_eq!(flat.predict_with(|f| [15.0, 5.0][f]), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_checks_dimensions() {
        let flat = DecisionTree::fit_plain(&[vec![0.0]], &[0], 1, TreeOptions::default()).flatten();
        let _ = flat.predict(&[1.0, 2.0]);
    }
}
