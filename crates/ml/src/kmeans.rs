//! K-means clustering with K-means++ seeding (Lloyd's algorithm).
//!
//! Level 1, Step 2 of the pipeline clusters training inputs in normalized
//! feature space "by running a standard clustering algorithm (e.g., K-means)
//! on the feature vectors" and takes each cluster's centroid as the
//! representative input to autotune (100 clusters in the paper).

use crate::stats::euclidean;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`KMeans::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansOptions {
    /// Number of clusters K.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for K-means++ seeding.
    pub seed: u64,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
}

impl Default for KMeansOptions {
    fn default() -> Self {
        KMeansOptions {
            k: 8,
            max_iters: 100,
            seed: 0,
            tol: 1e-9,
        }
    }
}

/// A fitted K-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    labels: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Runs K-means++ seeding followed by Lloyd iterations.
    ///
    /// `k` is clamped to the number of points. Empty clusters are repaired by
    /// re-seeding them at the point farthest from its assigned centroid.
    ///
    /// # Panics
    /// Panics if `points` is empty, `opts.k == 0`, or rows have inconsistent
    /// lengths.
    pub fn fit(points: &[Vec<f64>], opts: KMeansOptions) -> Self {
        assert!(!points.is_empty(), "kmeans requires at least one point");
        assert!(opts.k > 0, "kmeans requires k > 0");
        let dims = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dims),
            "inconsistent point dimensions"
        );
        let k = opts.k.min(points.len());
        let mut rng = StdRng::seed_from_u64(opts.seed);

        let mut centroids = Self::plus_plus_seeds(points, k, &mut rng);
        let mut labels = vec![0usize; points.len()];
        let mut iterations = 0;

        for _ in 0..opts.max_iters {
            iterations += 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                labels[i] = Self::nearest(&centroids, p).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; dims]; k];
            let mut counts = vec![0usize; k];
            for (p, &l) in points.iter().zip(&labels) {
                counts[l] += 1;
                for (s, x) in sums[l].iter_mut().zip(p) {
                    *s += x;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the worst-fitted point.
                    let (far_idx, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, euclidean(p, &centroids[labels[i]])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .expect("nonempty points");
                    movement += euclidean(&centroids[c], &points[far_idx]);
                    centroids[c] = points[far_idx].clone();
                    continue;
                }
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += euclidean(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement <= opts.tol {
                break;
            }
        }

        // Final assignment + inertia.
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (l, d) = Self::nearest(&centroids, p);
            labels[i] = l;
            inertia += d * d;
        }

        KMeans {
            centroids,
            labels,
            inertia,
            iterations,
        }
    }

    fn plus_plus_seeds(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let first = rng.gen_range(0..points.len());
        let mut centroids = vec![points[first].clone()];
        let mut d2: Vec<f64> = points
            .iter()
            .map(|p| {
                let d = euclidean(p, &centroids[0]);
                d * d
            })
            .collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let idx = if total <= 0.0 {
                rng.gen_range(0..points.len())
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = points.len() - 1;
                for (i, w) in d2.iter().enumerate() {
                    if target < *w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                chosen
            };
            centroids.push(points[idx].clone());
            for (i, p) in points.iter().enumerate() {
                let d = euclidean(p, centroids.last().expect("just pushed"));
                d2[i] = d2[i].min(d * d);
            }
        }
        centroids
    }

    fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (c, centroid) in centroids.iter().enumerate() {
            let d = euclidean(p, centroid);
            if d < best.1 {
                best = (c, d);
            }
        }
        best
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Cluster label per training point.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sum of squared distances of points to their centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations actually run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Predicts the nearest cluster for a new point.
    pub fn predict(&self, p: &[f64]) -> usize {
        Self::nearest(&self.centroids, p).0
    }

    /// Index of the training point nearest to each centroid (the *medoid*):
    /// the realizable representative we autotune on, standing in for the
    /// paper's "use the centroid as the presumed input".
    pub fn medoids(&self, points: &[Vec<f64>]) -> Vec<usize> {
        self.centroids
            .iter()
            .map(|c| {
                points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, euclidean(p, c)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .expect("nonempty points")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Three tight, well-separated blobs.
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for i in 0..20 {
                let dx = (i as f64 * 0.7).sin() * 0.3;
                let dy = (i as f64 * 1.3).cos() * 0.3;
                pts.push(vec![cx + dx, cy + dy]);
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = blobs();
        let km = KMeans::fit(
            &pts,
            KMeansOptions {
                k: 3,
                ..KMeansOptions::default()
            },
        );
        // All points in each blob share a label and labels differ across blobs.
        for blob in 0..3 {
            let first = km.labels()[blob * 20];
            for i in 0..20 {
                assert_eq!(km.labels()[blob * 20 + i], first, "blob {blob} split");
            }
        }
        let distinct: std::collections::HashSet<_> = km.labels().iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn labels_in_range_and_predict_consistent() {
        let pts = blobs();
        let km = KMeans::fit(
            &pts,
            KMeansOptions {
                k: 5,
                ..KMeansOptions::default()
            },
        );
        for (i, p) in pts.iter().enumerate() {
            assert!(km.labels()[i] < km.centroids().len());
            assert_eq!(km.predict(p), km.labels()[i]);
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let km = KMeans::fit(
            &pts,
            KMeansOptions {
                k: 10,
                ..KMeansOptions::default()
            },
        );
        assert_eq!(km.centroids().len(), 2);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = blobs();
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 3, 6] {
            let km = KMeans::fit(
                &pts,
                KMeansOptions {
                    k,
                    seed: 1,
                    ..KMeansOptions::default()
                },
            );
            assert!(
                km.inertia() <= last + 1e-9,
                "k={k} inertia {} above previous {last}",
                km.inertia()
            );
            last = km.inertia();
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blobs();
        let a = KMeans::fit(&pts, KMeansOptions::default());
        let b = KMeans::fit(&pts, KMeansOptions::default());
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn medoids_are_members_near_centroids() {
        let pts = blobs();
        let km = KMeans::fit(
            &pts,
            KMeansOptions {
                k: 3,
                ..KMeansOptions::default()
            },
        );
        let medoids = km.medoids(&pts);
        assert_eq!(medoids.len(), 3);
        for (c, &m) in medoids.iter().enumerate() {
            assert!(m < pts.len());
            // The medoid belongs to the cluster it represents.
            assert_eq!(km.labels()[m], c);
        }
    }

    #[test]
    fn centroid_is_mean_of_members() {
        let pts = blobs();
        let km = KMeans::fit(
            &pts,
            KMeansOptions {
                k: 3,
                ..KMeansOptions::default()
            },
        );
        for c in 0..3 {
            let members: Vec<&Vec<f64>> = pts
                .iter()
                .zip(km.labels())
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            for d in 0..2 {
                let mean: f64 = members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64;
                assert!((mean - km.centroids()[c][d]).abs() < 1e-9);
            }
        }
    }
}
