//! Summary statistics shared across the workspace.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice; NaN-safe (NaNs ignored). `None` when empty or all-NaN.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
}

/// Maximum of a slice; NaN-safe. `None` when empty or all-NaN.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
}

/// Linear-interpolation quantile `q ∈ [0, 1]` of unsorted data.
/// Returns `None` when empty.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Geometric mean of strictly positive values; `None` if empty or any
/// value ≤ 0. Speedup tables aggregate with geometric means.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|x| *x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Euclidean distance between two equal-length points.
///
/// # Panics
/// Panics if lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(stddev(&xs), 2.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn geomean_of_speedups() {
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
    }

    #[test]
    fn nan_safe_min_max() {
        let xs = [f64::NAN, 3.0, -1.0, f64::NAN];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(3.0));
    }

    #[test]
    fn euclidean_distance() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }
}
