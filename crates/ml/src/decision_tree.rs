//! Cost-sensitive CART decision trees.
//!
//! The Exhaustive Feature Subsets classifiers of Level 2 are decision trees
//! trained per feature subset (the paper cites Quinlan's induction of
//! decision trees). Because mislabeling input *i* as configuration *j* costs
//! the performance (and accuracy-penalty) difference `C_ij`, the tree
//! minimizes *expected misclassification cost* rather than plain error: leaf
//! predictions pick `argmin_j Σ_i C[label_i][j]`, and splits greedily reduce
//! total leaf cost (with a small Gini tie-breaker so that cost plateaus do
//! not stall induction).

use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeOptions {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// Minimum samples in each child of a split.
    pub min_leaf: usize,
    /// Maximum number of candidate thresholds examined per feature
    /// (quantile-spaced); bounds induction cost on large data.
    pub max_thresholds: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions {
            max_depth: 12,
            min_split: 4,
            min_leaf: 1,
            max_thresholds: 32,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted cost-sensitive decision tree over dense `f64` features and
/// `usize` class labels. Serializable: trained trees ship inside model
/// artifacts (`intune_serve`) and reload bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    num_classes: usize,
    num_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `x` (rows = samples) and `labels` (`0..num_classes`),
    /// minimizing expected cost under `cost` — a `num_classes × num_classes`
    /// matrix where `cost[i][j]` is the penalty for predicting `j` on a
    /// sample labeled `i`. Pass a 0/1 matrix for plain accuracy.
    ///
    /// # Panics
    /// Panics if `x` is empty, row lengths differ, labels are out of range,
    /// or `cost` is not `num_classes × num_classes`.
    pub fn fit(
        x: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        cost: &[Vec<f64>],
        opts: TreeOptions,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on no samples");
        assert_eq!(x.len(), labels.len(), "x/labels length mismatch");
        let num_features = x[0].len();
        assert!(
            x.iter().all(|r| r.len() == num_features),
            "inconsistent feature dimensions"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        assert_eq!(cost.len(), num_classes, "cost matrix rows");
        assert!(
            cost.iter().all(|r| r.len() == num_classes),
            "cost matrix cols"
        );

        let idx: Vec<usize> = (0..x.len()).collect();
        let root = Self::build(x, labels, num_classes, cost, &idx, 0, &opts);
        DecisionTree {
            root,
            num_classes,
            num_features,
        }
    }

    /// Convenience: fit with the 0/1 cost matrix (plain misclassification).
    pub fn fit_plain(
        x: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        opts: TreeOptions,
    ) -> Self {
        let cost: Vec<Vec<f64>> = (0..num_classes)
            .map(|i| {
                (0..num_classes)
                    .map(|j| if i == j { 0.0 } else { 1.0 })
                    .collect()
            })
            .collect();
        Self::fit(x, labels, num_classes, &cost, opts)
    }

    fn class_counts(labels: &[usize], idx: &[usize], num_classes: usize) -> Vec<f64> {
        let mut counts = vec![0.0; num_classes];
        for &i in idx {
            counts[labels[i]] += 1.0;
        }
        counts
    }

    /// Expected cost of the best single prediction for a node, plus that
    /// prediction. Gini impurity is blended in at 1e-6 weight to break ties.
    // `j` walks prediction columns of the cost matrix; the index is the point.
    #[allow(clippy::needless_range_loop)]
    fn node_cost(counts: &[f64], cost: &[Vec<f64>]) -> (f64, usize) {
        let total: f64 = counts.iter().sum();
        let mut best = (f64::INFINITY, 0usize);
        for j in 0..counts.len() {
            let c: f64 = counts.iter().enumerate().map(|(i, n)| n * cost[i][j]).sum();
            if c < best.0 {
                best = (c, j);
            }
        }
        if total > 0.0 {
            let gini: f64 = 1.0
                - counts
                    .iter()
                    .map(|n| {
                        let p = n / total;
                        p * p
                    })
                    .sum::<f64>();
            best.0 += 1e-6 * gini * total;
        }
        best
    }

    fn build(
        x: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        cost: &[Vec<f64>],
        idx: &[usize],
        depth: usize,
        opts: &TreeOptions,
    ) -> Node {
        let counts = Self::class_counts(labels, idx, num_classes);
        let (parent_cost, majority) = Self::node_cost(&counts, cost);
        let pure = counts.iter().filter(|&&c| c > 0.0).count() <= 1;
        if pure || depth >= opts.max_depth || idx.len() < opts.min_split {
            return Node::Leaf { class: majority };
        }

        let num_features = x[0].len();
        // Best split so far: (cost, feature, threshold). `f` below is a
        // column index into every row of `x`, not into one slice.
        let mut best: Option<(f64, usize, f64)> = None;
        #[allow(clippy::needless_range_loop)]
        for f in 0..num_features {
            let mut values: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Quantile-spaced candidate thresholds (midpoints).
            let step = ((values.len() - 1) as f64 / opts.max_thresholds as f64).max(1.0);
            let mut t = 0.0;
            while (t as usize) < values.len() - 1 {
                let v = t as usize;
                let threshold = (values[v] + values[v + 1]) / 2.0;
                t += step;

                let mut left_counts = vec![0.0; num_classes];
                let mut right_counts = vec![0.0; num_classes];
                let mut left_n = 0usize;
                for &i in idx {
                    if x[i][f] <= threshold {
                        left_counts[labels[i]] += 1.0;
                        left_n += 1;
                    } else {
                        right_counts[labels[i]] += 1.0;
                    }
                }
                let right_n = idx.len() - left_n;
                if left_n < opts.min_leaf || right_n < opts.min_leaf {
                    continue;
                }
                let (lc, _) = Self::node_cost(&left_counts, cost);
                let (rc, _) = Self::node_cost(&right_counts, cost);
                let split_cost = lc + rc;
                if best.is_none_or(|(b, _, _)| split_cost < b) {
                    best = Some((split_cost, f, threshold));
                }
            }
        }

        match best {
            Some((split_cost, feature, threshold)) if split_cost < parent_cost - 1e-12 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                let left = Self::build(x, labels, num_classes, cost, &left_idx, depth + 1, opts);
                let right = Self::build(x, labels, num_classes, cost, &right_idx, depth + 1, opts);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf { class: majority },
        }
    }

    /// Predicts the class of one sample.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the training dimensionality.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.num_features, "dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Compiles the tree into the array-indexed
    /// [`FlatTree`](crate::FlatTree) layout for hot-path inference;
    /// predictions are bit-identical to [`DecisionTree::predict`].
    pub fn flatten(&self) -> crate::FlatTree {
        crate::FlatTree::build(self, self.num_classes, self.num_features)
    }

    /// Root access for the flattener (layout-only consumer).
    pub(crate) fn root_for_flatten(&self) -> &Node {
        &self.root
    }

    /// Number of classes the tree was trained with.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of input features the tree expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of leaves (model-complexity diagnostic).
    pub fn num_leaves(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clearly separable classes on feature 0.
    fn separable() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64;
            x.push(vec![v, (i % 7) as f64]);
            y.push(if v < 20.0 { 0 } else { 1 });
        }
        (x, y)
    }

    #[test]
    fn learns_separable_data_perfectly() {
        let (x, y) = separable();
        let t = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default());
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(t.predict(row), label);
        }
        assert!(t.depth() >= 1);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let t = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default());
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn max_depth_zero_gives_majority_stump() {
        let (x, y) = separable();
        let t = DecisionTree::fit_plain(
            &x,
            &y,
            2,
            TreeOptions {
                max_depth: 0,
                ..TreeOptions::default()
            },
        );
        assert_eq!(t.num_leaves(), 1);
    }

    #[test]
    fn cost_matrix_biases_leaf_prediction() {
        // 70% class 0, 30% class 1 — but predicting 0 on a true 1 is 10x
        // worse than the reverse, so the cost-optimal stump predicts 1.
        let x: Vec<Vec<f64>> = (0..10).map(|_| vec![0.0]).collect();
        let y = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        let cost = vec![vec![0.0, 1.0], vec![10.0, 0.0]];
        let t = DecisionTree::fit(
            &x,
            &y,
            2,
            &cost,
            TreeOptions {
                max_depth: 0,
                ..TreeOptions::default()
            },
        );
        assert_eq!(t.predict(&[0.0]), 1);
    }

    #[test]
    fn irrelevant_feature_ignored() {
        // Feature 1 is constant; the split must be on feature 0.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 5.0]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let t = DecisionTree::fit_plain(&x, &y, 2, TreeOptions::default());
        assert_eq!(t.predict(&[3.0, 5.0]), 0);
        assert_eq!(t.predict(&[15.0, 5.0]), 1);
    }

    #[test]
    fn multiclass_checkerboard() {
        // Four quadrants, four classes.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                x.push(vec![i as f64, j as f64]);
                y.push(usize::from(i >= 6) * 2 + usize::from(j >= 6));
            }
        }
        let t = DecisionTree::fit_plain(&x, &y, 4, TreeOptions::default());
        let errors = x
            .iter()
            .zip(&y)
            .filter(|(row, &l)| t.predict(row) != l)
            .count();
        assert_eq!(errors, 0);
        assert!(t.num_leaves() >= 4);
    }

    #[test]
    fn min_leaf_respected() {
        let (x, y) = separable();
        let t = DecisionTree::fit_plain(
            &x,
            &y,
            2,
            TreeOptions {
                min_leaf: 40, // cannot split without starving a side
                ..TreeOptions::default()
            },
        );
        assert_eq!(t.num_leaves(), 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = DecisionTree::fit_plain(&[vec![0.0]], &[5], 2, TreeOptions::default());
    }
}
