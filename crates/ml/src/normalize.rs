//! Z-score normalization of feature matrices.
//!
//! Level 1 of the pipeline normalizes input feature vectors before
//! clustering "to avoid biases imposed by the different value scales in
//! different dimensions".

use crate::stats::{mean, stddev};
use serde::{Deserialize, Serialize};

/// A fitted per-dimension z-score transform `x ↦ (x − μ) / σ`.
/// Dimensions with zero variance map to 0. Serializable: fitted
/// normalizers ship inside model artifacts (`intune_serve`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZScore {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ZScore {
    /// Fits means and standard deviations column-wise over `rows`.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on no rows");
        let dims = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dims),
            "inconsistent row lengths"
        );
        let mut means = Vec::with_capacity(dims);
        let mut stds = Vec::with_capacity(dims);
        for d in 0..dims {
            let col: Vec<f64> = rows.iter().map(|r| r[d]).collect();
            means.push(mean(&col));
            stds.push(stddev(&col));
        }
        ZScore { means, stds }
    }

    /// Number of dimensions this normalizer was fitted on.
    pub fn dims(&self) -> usize {
        self.means.len()
    }

    /// Transforms one row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the fitted dimensionality.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| if *s > 0.0 { (x - m) / s } else { 0.0 })
            .collect()
    }

    /// Transforms many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Transforms many rows in one struct-of-arrays pass: iteration is
    /// dimension-major, so each fitted `(μ, σ)` pair is loaded once and
    /// streamed down the whole batch column (and zero-variance columns
    /// are settled with one branch instead of one per element).
    /// Bit-identical to [`ZScore::transform_all`] — every element is the
    /// same `(x − μ) / σ`.
    ///
    /// # Panics
    /// Panics if any row's length differs from the fitted dimensionality.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let dims = self.means.len();
        for row in rows {
            assert_eq!(row.len(), dims, "dimension mismatch");
        }
        let mut out = vec![vec![0.0; dims]; rows.len()];
        for d in 0..dims {
            let (m, s) = (self.means[d], self.stds[d]);
            if s > 0.0 {
                for (o, row) in out.iter_mut().zip(rows) {
                    o[d] = (row[d] - m) / s;
                }
            }
        }
        out
    }

    /// Inverse transform of one normalized row (zero-variance dims recover
    /// their mean).
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the fitted dimensionality.
    pub fn inverse(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(z, (m, s))| if *s > 0.0 { z * s + m } else { *m })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ]
    }

    #[test]
    fn transformed_columns_are_standardized() {
        let z = ZScore::fit(&rows());
        let t = z.transform_all(&rows());
        for d in 0..2 {
            let col: Vec<f64> = t.iter().map(|r| r[d]).collect();
            assert!(mean(&col).abs() < 1e-12);
            assert!((stddev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let z = ZScore::fit(&rows());
        for r in z.transform_all(&rows()) {
            assert_eq!(r[2], 0.0);
        }
    }

    #[test]
    fn round_trip_inverse() {
        let z = ZScore::fit(&rows());
        for r in rows() {
            let back = z.inverse(&z.transform(&r));
            for (a, b) in back.iter().zip(&r) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batch_transform_is_bit_identical_to_per_row() {
        let z = ZScore::fit(&rows());
        let extra = vec![
            vec![-4.0, 17.5, 5.0],
            vec![0.0, 0.0, 9.0],
            vec![2.5, 250.0, 5.0],
        ];
        for batch in [rows(), extra, vec![]] {
            let per_row = z.transform_all(&batch);
            let soa = z.transform_batch(&batch);
            assert_eq!(per_row.len(), soa.len());
            for (a, b) in per_row.iter().zip(&soa) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn batch_transform_validates_dims() {
        let z = ZScore::fit(&rows());
        let _ = z.transform_batch(&[vec![1.0, 2.0, 3.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transform_validates_dims() {
        let z = ZScore::fit(&rows());
        let _ = z.transform(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn fit_requires_rows() {
        let _ = ZScore::fit(&[]);
    }
}
