//! Principal component analysis.
//!
//! Included to reproduce the paper's §1 observation: *"Standard unsupervised
//! feature selection (e.g., PCA) does not solve the [mapping disparity]
//! problem"* — PCA finds directions of input-feature variance, which need
//! not align with configuration-performance behaviour. The ablation harness
//! contrasts PCA-reduced one-level clustering against the two-level method.

use intune_linalg::eigen::symmetric_eigen;
use intune_linalg::Matrix;

use crate::stats::mean;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    means: Vec<f64>,
    /// `components[c]` is the c-th principal axis (unit vector).
    components: Vec<Vec<f64>>,
    explained: Vec<f64>,
}

impl Pca {
    /// Fits `num_components` principal axes from `rows`.
    ///
    /// # Panics
    /// Panics if `rows` is empty, rows have inconsistent lengths, or
    /// `num_components` exceeds the dimensionality.
    pub fn fit(rows: &[Vec<f64>], num_components: usize) -> Self {
        assert!(!rows.is_empty(), "cannot fit PCA on no rows");
        let dims = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dims),
            "inconsistent row lengths"
        );
        assert!(
            num_components >= 1 && num_components <= dims,
            "components {num_components} out of range for {dims} dims"
        );

        let means: Vec<f64> = (0..dims)
            .map(|d| mean(&rows.iter().map(|r| r[d]).collect::<Vec<_>>()))
            .collect();

        // Covariance matrix.
        let n = rows.len() as f64;
        let cov = Matrix::from_fn(dims, dims, |i, j| {
            rows.iter()
                .map(|r| (r[i] - means[i]) * (r[j] - means[j]))
                .sum::<f64>()
                / n
        });

        let eig = symmetric_eigen(&cov, 1e-12, 100);
        let components: Vec<Vec<f64>> = (0..num_components).map(|c| eig.vectors.col(c)).collect();
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let explained: Vec<f64> = eig
            .values
            .iter()
            .take(num_components)
            .map(|v| if total > 0.0 { v.max(0.0) / total } else { 0.0 })
            .collect();

        Pca {
            means,
            components,
            explained,
        }
    }

    /// Fraction of total variance captured per component, descending.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained
    }

    /// Projects one row onto the fitted components.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the fitted dimensionality.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|axis| {
                row.iter()
                    .zip(axis)
                    .zip(&self.means)
                    .map(|((x, a), m)| (x - m) * a)
                    .sum()
            })
            .collect()
    }

    /// Projects many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points along the y = 2x line with tiny perpendicular noise.
    fn line_data() -> Vec<Vec<f64>> {
        (0..50)
            .map(|i| {
                let t = i as f64 / 5.0 - 5.0;
                let noise = ((i * 17) % 7) as f64 * 0.01 - 0.03;
                vec![t - 2.0 * noise, 2.0 * t + noise]
            })
            .collect()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let pca = Pca::fit(&line_data(), 2);
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > 0.99, "first PC explains {}", ratios[0]);
        // First axis parallel to (1, 2)/√5.
        let axis = &pca.transform(&[1.0, 2.0]);
        let back = &pca.transform(&[0.0, 0.0]);
        let along = (axis[0] - back[0]).abs();
        let across = (axis[1] - back[1]).abs();
        assert!(along > 10.0 * across, "along {along}, across {across}");
    }

    #[test]
    fn transform_centers_data() {
        let data = line_data();
        let pca = Pca::fit(&data, 1);
        let projected = pca.transform_all(&data);
        let m = mean(&projected.iter().map(|p| p[0]).collect::<Vec<_>>());
        assert!(m.abs() < 1e-9);
    }

    #[test]
    fn ratios_sum_to_at_most_one() {
        let pca = Pca::fit(&line_data(), 2);
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_components_panics() {
        let _ = Pca::fit(&line_data(), 3);
    }
}
