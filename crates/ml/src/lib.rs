//! # intune-ml
//!
//! A from-scratch machine-learning substrate for the two-level input
//! learning pipeline. The paper's learner needs exactly these pieces:
//!
//! * [`kmeans`] — K-means++ clustering of normalized input feature vectors
//!   (Level 1, Step 2 "Input Clustering").
//! * [`normalize`] — z-score normalization ("we first normalize the input
//!   feature vectors to avoid biases imposed by the different value scales").
//! * [`decision_tree`] — cost-sensitive CART decision trees, the learner
//!   behind the Exhaustive Feature Subsets classifiers (paper cites Quinlan).
//! * [`naive_bayes`] — discretized per-class likelihoods powering the
//!   Incremental Feature Examination classifier's posteriors (Eq. 1).
//! * [`crossval`] — 10-fold cross validation used to select among per-subset
//!   trees.
//! * [`pca`] — principal component analysis, included to reproduce the
//!   paper's observation that unsupervised feature selection does *not*
//!   close the mapping-disparity gap.
//! * [`stats`] — summary statistics shared by everything above.
//!
//! All algorithms are deterministic given their seed parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossval;
pub mod decision_tree;
pub mod flat_tree;
pub mod kmeans;
pub mod naive_bayes;
pub mod normalize;
pub mod pca;
pub mod stats;

pub use crossval::KFold;
pub use decision_tree::{DecisionTree, TreeOptions};
pub use flat_tree::FlatTree;
pub use kmeans::{KMeans, KMeansOptions};
pub use naive_bayes::{IncrementalPosterior, NaiveBayes};
pub use normalize::ZScore;
pub use pca::Pca;
