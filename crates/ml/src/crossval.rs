//! K-fold cross validation.
//!
//! Level 2 trains each exhaustive-subset decision tree with 10-fold cross
//! validation "to avoid any learning to the data" and keeps the tree that
//! performs best on held-out folds.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A shuffled K-fold splitter over `n` samples.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Splits `0..n` into `k` shuffled, near-equal folds.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(k <= n, "cannot make {k} folds from {n} samples");
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (pos, idx) in order.into_iter().enumerate() {
            folds[pos % k].push(idx);
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// Iterates `(train_indices, test_indices)` pairs, one per fold.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, &[usize])> + '_ {
        (0..self.folds.len()).map(move |f| {
            let test = &self.folds[f];
            let train: Vec<usize> = self
                .folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, test.as_slice())
        })
    }
}

/// Splits `0..n` into a (train, test) pair with `test_fraction` of samples
/// held out, shuffled deterministically — the paper divides its 50–60 k
/// inputs roughly half/half.
///
/// # Panics
/// Panics if `test_fraction` is outside `(0, 1)`.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let test_n = ((n as f64) * test_fraction).round() as usize;
    let test = order[..test_n].to_vec();
    let train = order[test_n..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_everything() {
        let kf = KFold::new(103, 10, 7);
        let mut seen = HashSet::new();
        for (train, test) in kf.splits() {
            assert_eq!(train.len() + test.len(), 103);
            let train_set: HashSet<_> = train.iter().collect();
            for t in test {
                assert!(!train_set.contains(t), "test index {t} leaked into train");
                seen.insert(*t);
            }
        }
        assert_eq!(
            seen.len(),
            103,
            "every index appears in exactly one test fold"
        );
    }

    #[test]
    fn fold_sizes_near_equal() {
        let kf = KFold::new(100, 10, 0);
        for (_, test) in kf.splits() {
            assert_eq!(test.len(), 10);
        }
        let kf = KFold::new(101, 10, 0);
        for (_, test) in kf.splits() {
            assert!(test.len() == 10 || test.len() == 11);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KFold::new(50, 5, 3);
        let b = KFold::new(50, 5, 3);
        let fa: Vec<_> = a.splits().map(|(_, t)| t.to_vec()).collect();
        let fb: Vec<_> = b.splits().map(|(_, t)| t.to_vec()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (train, test) = train_test_split(1000, 0.5, 11);
        assert_eq!(train.len(), 500);
        assert_eq!(test.len(), 500);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn too_many_folds_panics() {
        let _ = KFold::new(3, 10, 0);
    }
}
