//! Discretized naive Bayes with incremental posterior evaluation.
//!
//! This powers the paper's **Incremental Feature Examination classifier**:
//! every feature is divided into decision regions `{d₁ … d_j}`, per-region
//! per-class likelihoods `P(f ∈ d | L = k)` are estimated from training
//! data (Laplace-smoothed), and at deployment features are acquired *one at
//! a time* — cheapest first — updating the class posterior (Eq. 1 of the
//! paper) until it clears a confidence threshold Λ, at which point
//! classification stops and remaining features are never paid for.

use crate::stats::quantile;
use serde::{Deserialize, Serialize};

/// Per-feature discretization into decision regions by training-data
/// quantiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Regions {
    /// Ascending inner thresholds; region = #thresholds ≤ value.
    thresholds: Vec<f64>,
}

impl Regions {
    fn fit(values: &[f64], regions: usize) -> Self {
        let mut thresholds = Vec::with_capacity(regions.saturating_sub(1));
        for r in 1..regions {
            let q = r as f64 / regions as f64;
            if let Some(t) = quantile(values, q) {
                thresholds.push(t);
            }
        }
        thresholds.dedup();
        Regions { thresholds }
    }

    fn region_of(&self, value: f64) -> usize {
        self.thresholds.iter().filter(|t| value > **t).count()
    }

    fn count(&self) -> usize {
        self.thresholds.len() + 1
    }
}

/// A fitted discretized naive-Bayes model. Serializable: fitted models
/// ship inside model artifacts (`intune_serve`) and reload bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaiveBayes {
    priors: Vec<f64>,
    regions: Vec<Regions>,
    /// `likelihood[f][r][k] = P(feature f in region r | class k)`.
    likelihood: Vec<Vec<Vec<f64>>>,
    num_classes: usize,
}

impl NaiveBayes {
    /// Fits the model with `regions_per_feature` quantile regions.
    ///
    /// # Panics
    /// Panics if `x` is empty, lengths mismatch, or labels out of range.
    pub fn fit(
        x: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        regions_per_feature: usize,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit naive bayes on no samples");
        assert_eq!(x.len(), labels.len(), "x/labels length mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        let num_features = x[0].len();
        let n = x.len() as f64;

        // Priors with Laplace smoothing.
        let mut class_counts = vec![0.0; num_classes];
        for &l in labels {
            class_counts[l] += 1.0;
        }
        let priors: Vec<f64> = class_counts
            .iter()
            .map(|c| (c + 1.0) / (n + num_classes as f64))
            .collect();

        // Discretize each feature on the pooled values.
        let regions: Vec<Regions> = (0..num_features)
            .map(|f| {
                let col: Vec<f64> = x.iter().map(|r| r[f]).collect();
                Regions::fit(&col, regions_per_feature.max(2))
            })
            .collect();

        // Likelihoods with Laplace smoothing.
        let mut likelihood = vec![Vec::new(); num_features];
        for f in 0..num_features {
            let r_count = regions[f].count();
            let mut counts = vec![vec![0.0; num_classes]; r_count];
            for (row, &l) in x.iter().zip(labels) {
                counts[regions[f].region_of(row[f])][l] += 1.0;
            }
            likelihood[f] = counts
                .iter()
                .map(|per_class| {
                    per_class
                        .iter()
                        .enumerate()
                        .map(|(k, c)| (c + 1.0) / (class_counts[k] + r_count as f64))
                        .collect()
                })
                .collect();
        }

        NaiveBayes {
            priors,
            regions,
            likelihood,
            num_classes,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Full-evidence prediction using all features of `row`.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the training dimensionality.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut inc = self.start();
        for (f, v) in row.iter().enumerate() {
            inc.observe(f, *v);
        }
        inc.argmax()
    }

    /// Starts an incremental evaluation with the class priors.
    pub fn start(&self) -> IncrementalPosterior<'_> {
        IncrementalPosterior {
            model: self,
            log_posterior: self.priors.iter().map(|p| p.ln()).collect(),
        }
    }
}

/// An in-flight incremental posterior (Eq. 1): observe features one at a
/// time and stop as soon as [`IncrementalPosterior::confident`] clears the
/// threshold.
#[derive(Debug, Clone)]
pub struct IncrementalPosterior<'m> {
    model: &'m NaiveBayes,
    log_posterior: Vec<f64>,
}

impl IncrementalPosterior<'_> {
    /// Folds in the observation that feature `f` has `value`.
    ///
    /// # Panics
    /// Panics if `f` is out of range.
    pub fn observe(&mut self, f: usize, value: f64) {
        let region = self.model.regions[f].region_of(value);
        for (k, lp) in self.log_posterior.iter_mut().enumerate() {
            *lp += self.model.likelihood[f][region][k].ln();
        }
    }

    /// The normalized posterior distribution over classes.
    pub fn posterior(&self) -> Vec<f64> {
        let max = self
            .log_posterior
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let unnorm: Vec<f64> = self
            .log_posterior
            .iter()
            .map(|lp| (lp - max).exp())
            .collect();
        let z: f64 = unnorm.iter().sum();
        unnorm.iter().map(|u| u / z).collect()
    }

    /// The currently most probable class.
    pub fn argmax(&self) -> usize {
        self.log_posterior
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Returns `Some(class)` when the posterior of the best class exceeds
    /// `threshold` (the paper's Λ); `None` means acquire more features.
    pub fn confident(&self, threshold: f64) -> Option<usize> {
        let post = self.posterior();
        let best = self.argmax();
        (post[best] > threshold).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class 0 clusters near 0, class 1 near 10 on feature 0; feature 1 is
    /// uninformative noise.
    fn data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let noise = (i % 5) as f64;
            x.push(vec![(i % 3) as f64 * 0.5, noise]);
            y.push(0);
            x.push(vec![10.0 + (i % 3) as f64 * 0.5, noise]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn predicts_separable_classes() {
        let (x, y) = data();
        let nb = NaiveBayes::fit(&x, &y, 2, 4);
        for (row, &l) in x.iter().zip(&y) {
            assert_eq!(nb.predict(row), l);
        }
    }

    #[test]
    fn posterior_normalized() {
        let (x, y) = data();
        let nb = NaiveBayes::fit(&x, &y, 2, 4);
        let mut inc = nb.start();
        inc.observe(0, 0.3);
        let p = inc.posterior();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn informative_feature_raises_confidence() {
        let (x, y) = data();
        let nb = NaiveBayes::fit(&x, &y, 2, 4);
        let mut inc = nb.start();
        // Uninformative feature first: confidence stays moderate.
        inc.observe(1, 2.0);
        let before = inc.posterior()[inc.argmax()];
        // Decisive feature: confidence jumps.
        inc.observe(0, 10.2);
        let after = inc.posterior()[inc.argmax()];
        assert!(after > before);
        assert_eq!(inc.argmax(), 1);
        assert_eq!(inc.confident(0.9), Some(1));
    }

    #[test]
    fn confidence_gate_blocks_on_priors() {
        let (x, y) = data();
        let nb = NaiveBayes::fit(&x, &y, 2, 4);
        let inc = nb.start();
        // Balanced priors: no class clears a 0.9 bar without evidence.
        assert_eq!(inc.confident(0.9), None);
    }

    #[test]
    fn skewed_priors_dominate_without_evidence() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut y = vec![0; 20];
        y[0] = 1; // 19:1 prior skew
        let nb = NaiveBayes::fit(&x, &y, 2, 2);
        assert_eq!(nb.start().argmax(), 0);
    }

    #[test]
    fn region_count_respects_duplicates() {
        // Constant feature collapses to one region and predicts from priors.
        let x: Vec<Vec<f64>> = (0..10).map(|_| vec![7.0]).collect();
        let y: Vec<usize> = (0..10).map(|i| usize::from(i >= 7)).collect();
        let nb = NaiveBayes::fit(&x, &y, 2, 4);
        assert_eq!(nb.predict(&[7.0]), 0);
    }
}
