//! Property-based tests for the ML substrate.

use intune_ml::crossval::train_test_split;
use intune_ml::{DecisionTree, KFold, KMeans, KMeansOptions, NaiveBayes, TreeOptions, ZScore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trees never predict out-of-range classes and always fit pure data
    /// perfectly.
    #[test]
    fn tree_predictions_in_range(
        rows in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 4..60),
        classes in 2usize..5,
    ) {
        let labels: Vec<usize> = (0..rows.len()).map(|i| i % classes).collect();
        let tree = DecisionTree::fit_plain(&rows, &labels, classes, TreeOptions::default());
        for row in &rows {
            prop_assert!(tree.predict(row) < classes);
        }
        prop_assert!(tree.depth() <= TreeOptions::default().max_depth);
    }

    /// A tree trained on label = sign(feature 0) learns it exactly whenever
    /// the feature is duplicate-free.
    #[test]
    fn tree_learns_threshold(
        mut xs in prop::collection::vec(-100.0f64..100.0, 10..80),
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        prop_assume!(xs.len() >= 10);
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let labels: Vec<usize> = xs.iter().map(|&x| usize::from(x > 0.0)).collect();
        prop_assume!(labels.contains(&0) && labels.contains(&1));
        // Unregularized tree: one clean threshold exists, so perfect
        // separation must be reachable (min_split would otherwise leave
        // small mixed leaves by design).
        let opts = TreeOptions {
            min_split: 2,
            min_leaf: 1,
            max_thresholds: 128,
            ..TreeOptions::default()
        };
        let tree = DecisionTree::fit_plain(&rows, &labels, 2, opts);
        for (row, &label) in rows.iter().zip(&labels) {
            prop_assert_eq!(tree.predict(row), label);
        }
    }

    /// K-fold covers every index exactly once across test folds.
    #[test]
    fn kfold_partitions(n in 10usize..200, k in 2usize..10, seed in 0u64..100) {
        prop_assume!(k <= n);
        let kf = KFold::new(n, k, seed);
        let mut seen = vec![false; n];
        for (train, test) in kf.splits() {
            prop_assert_eq!(train.len() + test.len(), n);
            for &t in test {
                prop_assert!(!seen[t], "index {} in two test folds", t);
                seen[t] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Train/test split is a disjoint cover with the requested size.
    #[test]
    fn split_covers(n in 4usize..500, frac in 0.1f64..0.9, seed in 0u64..100) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Naive Bayes posteriors always normalize and predictions stay in
    /// range.
    #[test]
    fn nb_posterior_normalized(
        rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 2), 6..60),
        classes in 2usize..4,
    ) {
        let labels: Vec<usize> = (0..rows.len()).map(|i| i % classes).collect();
        let nb = NaiveBayes::fit(&rows, &labels, classes, 4);
        for row in &rows {
            let mut inc = nb.start();
            for (f, v) in row.iter().enumerate() {
                inc.observe(f, *v);
                let p = inc.posterior();
                prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!(p.iter().all(|x| *x >= 0.0));
            }
            prop_assert!(nb.predict(row) < classes);
        }
    }

    /// K-means labels agree with predict() and centroids are member means.
    #[test]
    fn kmeans_centroid_is_member_mean(
        pts in prop::collection::vec(prop::collection::vec(-20.0f64..20.0, 2), 6..80),
        k in 1usize..6,
    ) {
        let km = KMeans::fit(&pts, KMeansOptions { k, ..KMeansOptions::default() });
        for (i, p) in pts.iter().enumerate() {
            prop_assert_eq!(km.predict(p), km.labels()[i]);
        }
        for c in 0..km.centroids().len() {
            let members: Vec<&Vec<f64>> = pts
                .iter()
                .zip(km.labels())
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            for d in 0..2 {
                let mean: f64 = members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64;
                prop_assert!((mean - km.centroids()[c][d]).abs() < 1e-6);
            }
        }
    }

    /// Z-score transform standardizes every non-constant column.
    #[test]
    fn zscore_standardizes(
        rows in prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 3), 3..60),
    ) {
        let z = ZScore::fit(&rows);
        let t = z.transform_all(&rows);
        for d in 0..3 {
            let col: Vec<f64> = t.iter().map(|r| r[d]).collect();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-7, "column {} mean {}", d, mean);
        }
    }
}
