//! Property tests for artifact persistence: randomly-built models
//! round-trip through the checksummed document format exactly, and
//! tampered documents never load.

use intune_core::{ConfigSpace, Configuration, FeatureDef};
use intune_learning::classifiers::{train_incremental, Classifier};
use intune_ml::{DecisionTree, TreeOptions, ZScore};
use intune_serve::ModelArtifact;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn space() -> ConfigSpace {
    ConfigSpace::builder()
        .switch("alg", 4)
        .int("cutoff", 0, 4096)
        .log_int("block", 1, 65536)
        .float("relax", 0.25, 2.0)
        .build()
}

/// Builds a structurally-valid random artifact: random landmarks from a
/// mixed space, a normalizer/centroid geometry fitted on random data, and
/// one of the three classifier kinds.
fn random_artifact(seed: u64, landmarks: usize, kind: u8) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = space();
    let defs = vec![FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
    let dims = 3; // 2 + 1 levels
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..dims).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..16).map(|i| i % landmarks).collect();
    let classifier = match kind % 3 {
        0 => Classifier::MaxApriori {
            class: rng.gen_range(0..landmarks),
            num_properties: defs.len(),
        },
        1 => Classifier::Tree {
            set: intune_core::FeatureSet::from_choices(vec![Some(1), Some(0)]),
            tree: DecisionTree::fit_plain(
                &rows.iter().map(|r| r[..2].to_vec()).collect::<Vec<_>>(),
                &labels,
                landmarks,
                TreeOptions::default(),
            ),
        },
        _ => train_incremental(
            intune_core::FeatureSet::from_choices(vec![Some(0), Some(0)]),
            &rows.iter().map(|r| r[..2].to_vec()).collect::<Vec<_>>(),
            &labels,
            landmarks,
            &[1.0, 2.0],
            4,
            0.8,
        ),
    };
    let centroids: Vec<Vec<f64>> = (0..landmarks)
        .map(|_| (0..dims).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    ModelArtifact {
        benchmark: "property".to_string(),
        feature_defs: defs,
        normalizer: ZScore::fit(&rows),
        landmarks: (0..landmarks)
            .map(|_| space.random(&mut rng))
            .collect::<Vec<Configuration>>(),
        classifier,
        centroids,
        dispersion: (0..landmarks).map(|_| rng.gen_range(0.0..4.0)).collect(),
        fallback: rng.gen_range(0..landmarks),
        accuracy_threshold: if rng.gen::<bool>() {
            Some(rng.gen_range(0.0..1.0))
        } else {
            None
        },
        revision: rng.gen_range(0..1000),
        trained_inputs: rng.gen_range(0..100_000),
    }
}

/// A fully-extracted random feature vector shaped for `artifact`.
fn random_vector(artifact: &ModelArtifact, rng: &mut StdRng) -> intune_core::FeatureVector {
    let mut fv = intune_core::FeatureVector::empty(&artifact.feature_defs);
    for (p, def) in artifact.feature_defs.iter().enumerate() {
        for level in 0..def.levels {
            fv.insert(
                intune_core::FeatureId { property: p, level },
                intune_core::FeatureSample::new(
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(0.0..5.0),
                ),
            )
            .unwrap();
        }
    }
    fv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fallback policy can never route a request to a landmark the
    /// artifact does not carry: for any structurally-valid artifact and
    /// any input stream — including drift storms that engage fallback,
    /// resets, and re-trips — every selection (fallen-back or not) indexes
    /// into the artifact's landmark list.
    #[test]
    fn fallback_never_selects_a_landmark_absent_from_the_artifact(
        seed in 0u64..100_000, landmarks in 1usize..6, kind in 0u8..3,
        batches in 1usize..5,
    ) {
        use intune_serve::{ServeOptions, VectorService};
        let artifact = random_artifact(seed, landmarks, kind);
        let count = artifact.landmarks.len();
        // A drift storm: every probe is OOD, the threshold trips as soon
        // as the observation floor is met.
        let svc = VectorService::new(artifact, ServeOptions {
            radius_factor: -1.0,
            drift_threshold: 0.1,
            min_observations: 4,
            ..ServeOptions::default()
        }).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa11bac);
        for round in 0..batches {
            let vectors: Vec<_> = (0..8)
                .map(|_| random_vector(svc.artifact(), &mut rng))
                .collect();
            for s in svc.select_vector_batch(&vectors).unwrap() {
                prop_assert!(
                    s.landmark < count,
                    "round {}: landmark {} out of range ({count})", round, s.landmark
                );
                if s.fell_back {
                    prop_assert_eq!(s.landmark, svc.artifact().fallback);
                }
            }
            if round == batches / 2 {
                svc.reset_drift();
            }
        }
    }

    /// save → load reproduces the artifact exactly (field equality and
    /// canonical-document byte equality) for every classifier kind and
    /// random model geometry.
    #[test]
    fn artifact_round_trips_exactly(
        seed in 0u64..100_000, landmarks in 1usize..6, kind in 0u8..3,
    ) {
        let artifact = random_artifact(seed, landmarks, kind);
        let text = artifact.to_document();
        let loaded = ModelArtifact::from_document(&text).unwrap();
        prop_assert_eq!(&loaded, &artifact);
        prop_assert_eq!(loaded.to_document(), text);
    }

    /// Journal crash tolerance: a segment truncated at **any** byte
    /// offset reloads every complete record and reports the torn tail as
    /// a typed error — never a panic, and never a phantom record.
    #[test]
    fn truncated_journal_segments_recover_every_complete_record(
        seed in 0u64..100_000, records in 1usize..12, cut_sel in 0usize..100_000,
    ) {
        use intune_serve::journal::{
            read_segment, segment_path, JournalOptions, JournalRecord, JournalWriter,
        };

        let dir = std::env::temp_dir().join(format!(
            "intune-serve-prop-journal-{}-{seed}-{records}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut rng = StdRng::seed_from_u64(seed);
        let artifact = random_artifact(seed, 3, (seed % 3) as u8);
        {
            // One segment holds everything: rotation is covered by unit
            // tests; truncation semantics are per-file.
            let mut w = JournalWriter::open(&dir, JournalOptions {
                segment_max_records: records + 1,
                ..JournalOptions::default()
            }).unwrap();
            for i in 0..records {
                w.append(JournalRecord {
                    seq: 0,
                    revision: seed % 17,
                    landmark: (i % 3) as u64,
                    out_of_distribution: rng.gen::<bool>(),
                    fell_back: false,
                    features: random_vector(&artifact, &mut rng),
                    payload: rng.gen::<bool>().then(|| serde_json::Value::Array(vec![
                        serde_json::Value::Float(rng.gen_range(-10.0..10.0)),
                    ])),
                    trace_id: rng.gen::<bool>().then(|| rng.gen_range(1..1_000_000) as u64),
                }).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();

        // Record the clean read and every record's end offset.
        let clean = read_segment(&path).unwrap();
        prop_assert!(clean.torn.is_none());
        prop_assert_eq!(clean.records.len(), records);
        let mut boundaries = vec![0usize];
        {
            let mut at = 0usize;
            while at < bytes.len() {
                let len = u32::from_be_bytes([
                    bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3],
                ]) as usize;
                at += 4 + len;
                boundaries.push(at);
            }
        }

        let cut = cut_sel % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let scan = read_segment(&path).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(
            scan.records.len(), complete,
            "cut at {} must keep exactly the complete prefix", cut
        );
        for (a, b) in scan.records.iter().zip(&clean.records) {
            prop_assert_eq!(a, b, "recovered records are bit-faithful");
        }
        let on_boundary = boundaries.contains(&cut);
        prop_assert_eq!(
            scan.torn.is_none(), on_boundary,
            "torn tail iff the cut splits a record (cut at {})", cut
        );
        if let Some(torn) = scan.torn {
            prop_assert!(
                matches!(torn, intune_core::Error::Artifact { .. }),
                "torn tail must be the typed artifact error, got {:?}", torn
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single-byte corruption of the payload region either fails to
    /// parse or fails the checksum — it never yields a loaded artifact.
    #[test]
    fn corrupted_documents_never_load(
        seed in 0u64..100_000, victim in 0usize..10_000,
    ) {
        let artifact = random_artifact(seed, 3, (seed % 3) as u8);
        let text = artifact.to_document();
        // Corrupt one byte inside the payload (skip the envelope header
        // so the checksum still governs) by rotating a digit/letter.
        let payload_at = text.find("\"payload\"").unwrap();
        let bytes = text.as_bytes();
        let candidates: Vec<usize> = (payload_at..bytes.len())
            .filter(|&i| bytes[i].is_ascii_alphanumeric())
            .collect();
        let at = candidates[victim % candidates.len()];
        let mut corrupted = text.clone().into_bytes();
        corrupted[at] = match corrupted[at] {
            b'9' => b'8',
            b'z' | b'Z' => b'a',
            c => c + 1,
        };
        let corrupted = String::from_utf8(corrupted).unwrap();
        if corrupted != text {
            // A corrupted byte must be rejected — except in the one
            // honest escape hatch: a digit flip that still parses to the
            // *identical* value (e.g. two decimal strings rounding to
            // the same f64), which re-canonicalizes to the original
            // document and is therefore semantically untampered.
            if let Ok(loaded) = ModelArtifact::from_document(&corrupted) {
                prop_assert_eq!(
                    loaded.to_document(),
                    text,
                    "semantically-different corruption at byte {} loaded",
                    at
                );
            }
        }
    }
}
