//! # intune-serve
//!
//! Model-artifact persistence and the online selector serving runtime —
//! the deployment phase of the paper (Figure 3) as a subsystem.
//!
//! The two-level learner (`intune_learning`) produces everything a
//! production system needs — landmark configurations, the level-2 input
//! classifier, the feature normalizer and cluster geometry — but until
//! this crate existed that model lived and died inside one process. This
//! crate draws the train/deploy boundary:
//!
//! * [`ModelArtifact`] — a versioned, checksummed, JSON-persisted model:
//!   save after `learn()`, reload in a fresh process, get byte-identical
//!   selections (`artifact` module; format spec in `crates/serve/README.md`,
//!   current schema version 2 with a version-1 migration reader).
//! * [`SelectorService`] — the serving runtime: batched classification
//!   over the work-stealing executor, per-request feature-subset
//!   extraction, a centroid-distance **drift monitor** counting
//!   out-of-distribution inputs, and a **fallback policy** that pins the
//!   safe landmark when the input distribution has shifted too far from
//!   the training corpus (`service` module).
//! * [`VectorService`] — the same selection + drift semantics over
//!   **pre-extracted feature vectors**, with no benchmark type in sight:
//!   the core the `intune_daemon` wire server is built on (`vector`
//!   module). Both services share one drift monitor implementation
//!   (`monitor` module), so a vector-served selection is bit-identical
//!   to a benchmark-served one.
//! * [`TraceSink`] + the **request journal** (`trace` / `journal`
//!   modules) — continuous learning's observation layer: every answered
//!   selection can be appended to a segmented, crash-tolerant log
//!   (served features, chosen landmark, drift outcome, optional raw-input
//!   payload), which the `intune_retrain` subsystem compacts into a
//!   retraining corpus (format spec in `crates/retrain/README.md`).
//!
//! ## Lifecycle
//!
//! ```text
//! learn() ──▶ ModelArtifact::export ──▶ save(path)        (training box)
//!                                          │
//! load(path) ──▶ SelectorService::new ──▶ select_batch    (serving box)
//! ```
//!
//! ```
//! use intune_exec::Engine;
//! use intune_learning::pipeline::{learn, TwoLevelOptions};
//! use intune_serve::{ModelArtifact, SelectorService, ServeOptions};
//! # use intune_autotuner::TunerOptions;
//! # use intune_core::{Benchmark, ConfigSpace, Configuration, ExecutionReport,
//! #                   FeatureDef, FeatureSample};
//! # struct Toy;
//! # impl Benchmark for Toy {
//! #     type Input = f64;
//! #     fn name(&self) -> &str { "toy" }
//! #     fn space(&self) -> ConfigSpace {
//! #         ConfigSpace::builder().switch("alg", 2).build()
//! #     }
//! #     fn run(&self, cfg: &Configuration, x: &f64) -> ExecutionReport {
//! #         ExecutionReport::of_cost(x * (1.0 + (cfg.choice(0) as f64 - (*x > 0.5) as u8 as f64).abs()))
//! #     }
//! #     fn properties(&self) -> Vec<FeatureDef> { vec![FeatureDef::new("x", 1)] }
//! #     fn extract(&self, _: usize, _: usize, x: &f64) -> FeatureSample {
//! #         FeatureSample::new(*x, 0.01)
//! #     }
//! # }
//! let toy = Toy;
//! let inputs: Vec<f64> = (0..24).map(|i| 0.2 + 0.6 * ((i % 3) as f64) / 2.0).collect();
//! let mut opts = TwoLevelOptions::default();
//! opts.level1.clusters = 2;
//! opts.level1.tuner = TunerOptions { population: 6, generations: 3, ..TunerOptions::quick(1) };
//! let result = learn(&toy, &inputs, &opts, &Engine::serial()).unwrap();
//!
//! // Train → export → (save/load) → serve.
//! let artifact = ModelArtifact::export(&toy, &result);
//! let reloaded = ModelArtifact::from_document(&artifact.to_document()).unwrap();
//! let service = SelectorService::new(&toy, reloaded, ServeOptions::default()).unwrap();
//! let selections = service.select_batch(&inputs);
//! assert_eq!(selections.len(), inputs.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod journal;
mod monitor;
pub mod service;
pub mod trace;
pub mod vector;

pub use artifact::{ModelArtifact, ARTIFACT_MIN_VERSION, ARTIFACT_SCHEMA, ARTIFACT_VERSION};
pub use journal::{JournalOptions, JournalRecord, JournalSink, JournalWriter};
pub use service::{Selection, SelectorService, ServeOptions, ServeStats};
pub use trace::TraceSink;
pub use vector::VectorService;

/// Shared fixtures for this crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use intune_autotuner::TunerOptions;
    use intune_core::{
        AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef,
        FeatureSample,
    };
    use intune_exec::Engine;
    use intune_learning::pipeline::{learn, TwoLevelOptions, TwoLevelResult};
    use intune_learning::Level1Options;

    /// Same synthetic family as the learning-pipeline tests: three input
    /// kinds, the matching switch value is 3–5× cheaper, the kind is
    /// readable from cheap feature 0 while feature 1 is an expensive red
    /// herring.
    pub struct Synthetic;

    impl Benchmark for Synthetic {
        type Input = (usize, f64);

        fn name(&self) -> &str {
            "synthetic"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder()
                .switch("alg", 3)
                .int("knob", 0, 10)
                .build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            let (kind, size) = *input;
            let alg = cfg.choice(0);
            let penalty = 1.0 + 2.0 * ((alg + 3 - kind) % 3) as f64;
            ExecutionReport::with_accuracy(size * penalty, 1.0)
        }

        fn accuracy(&self) -> Option<AccuracySpec> {
            Some(AccuracySpec::new(0.5))
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("kind", 2), FeatureDef::new("noise", 2)]
        }

        fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
            match property {
                0 => FeatureSample::new(input.0 as f64, 1.0 + level as f64),
                _ => FeatureSample::new((input.1 * 7.0) % 5.0, 200.0 * (level + 1) as f64),
            }
        }
    }

    /// A deterministic corpus of `(kind, size)` inputs.
    pub fn synthetic_corpus(n: usize, seed: usize) -> Vec<(usize, f64)> {
        (0..n)
            .map(|i| ((i + seed) % 3, 100.0 + ((i * 17 + seed) % 9) as f64 * 10.0))
            .collect()
    }

    /// Trains the synthetic benchmark at quick-test scale.
    pub fn train_synthetic() -> TwoLevelResult {
        let opts = TwoLevelOptions {
            level1: Level1Options {
                clusters: 3,
                tuner: TunerOptions {
                    population: 10,
                    generations: 8,
                    ..TunerOptions::quick(1)
                },
                ..Level1Options::default()
            },
            ..TwoLevelOptions::default()
        };
        learn(
            &Synthetic,
            &synthetic_corpus(60, 0),
            &opts,
            &Engine::serial(),
        )
        .expect("synthetic training succeeds")
    }
}
