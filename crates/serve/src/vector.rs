//! The benchmark-free serving core: selection over pre-extracted
//! feature vectors.
//!
//! A [`VectorService`] answers the same question as
//! [`SelectorService`](crate::SelectorService) — *which landmark should
//! this input run?* — but consumes [`FeatureVector`]s instead of
//! benchmark inputs. That makes it deployable where the benchmark type
//! cannot follow: the serve daemon links no benchmark crates and serves
//! any artifact whose clients extract features near their data and ship
//! the vectors over the wire. Selections are computed exactly like the
//! in-process path (`classify_costed` over the classifier's subset of the
//! vector), so a vector-served selection is bit-identical to a
//! benchmark-served one for the same input.

use crate::artifact::ModelArtifact;
use crate::monitor::DriftMonitor;
use crate::service::{Selection, ServeOptions, ServeStats};
use crate::trace::TraceSink;
use intune_core::{Configuration, Error, FeatureSet, FeatureVector, Result, TraceContext};
use intune_exec::Executor;
use intune_learning::selection::samples_for;
use intune_learning::CompiledClassifier;
use intune_obs::{EventKind, EventLog, IdMinter, Span, SpanLog};
use std::sync::Arc;

/// A serving runtime over pre-extracted feature vectors: validated
/// artifact, the production classifier's feature subset, a drift monitor,
/// and the work-stealing executor for batches.
///
/// Shared-state design mirrors `SelectorService`: the artifact is
/// immutable after construction and all counters are atomics, so `&self`
/// methods are safe from multiple threads.
pub struct VectorService {
    artifact: ModelArtifact,
    /// The production classifier compiled for inference (flattened tree),
    /// fixed at construction.
    compiled: CompiledClassifier,
    /// The classifier's feature subset, precomputed at construction.
    set: FeatureSet,
    executor: Executor,
    opts: ServeOptions,
    monitor: DriftMonitor,
    /// Optional observer of every answered selection (request journal).
    trace: Option<Arc<dyn TraceSink>>,
    /// Optional lifecycle event log: drift trips and fallback
    /// recoveries are journaled as they happen.
    events: Option<Arc<EventLog>>,
    /// Optional span log: sampled requests record a `service.select`
    /// span (revision, batch size, drift score, fallback verdict).
    spans: Option<Arc<SpanLog>>,
    /// Span-id source for this service's spans (deterministic: seeded
    /// from benchmark + revision + pid, never the clock).
    span_ids: IdMinter,
}

impl std::fmt::Debug for VectorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorService")
            .field("artifact", &self.artifact.benchmark)
            .field("revision", &self.artifact.revision)
            .field("opts", &self.opts)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl VectorService {
    /// Builds a service from a loaded artifact, checking its internal
    /// consistency ([`ModelArtifact::validate_shape`]) first — the
    /// strongest check possible without the benchmark.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the artifact is inconsistent.
    pub fn new(artifact: ModelArtifact, opts: ServeOptions) -> Result<Self> {
        artifact.validate_shape()?;
        let monitor = DriftMonitor::new(&artifact, &opts);
        let compiled = CompiledClassifier::compile(artifact.classifier.clone());
        let set = compiled.feature_set();
        let span_ids = IdMinter::new(&format!(
            "service/{}/r{}/{}",
            artifact.benchmark,
            artifact.revision,
            std::process::id()
        ));
        Ok(VectorService {
            artifact,
            compiled,
            set,
            executor: Executor::new(opts.threads),
            opts,
            monitor,
            trace: None,
            events: None,
            spans: None,
            span_ids,
        })
    }

    /// Attaches (or detaches) a trace sink observing every answered
    /// selection — the continuous-learning request journal. Sinks see
    /// final selections only; they cannot change an answer.
    pub fn set_trace(&mut self, trace: Option<Arc<dyn TraceSink>>) {
        self.trace = trace;
    }

    /// Attaches (or detaches) a lifecycle event log. The service emits
    /// `DriftTripped` when its monitor engages fallback and
    /// `FallbackCleared` when it recovers — best-effort, observation
    /// only, off the hot path except for one state comparison.
    pub fn set_events(&mut self, events: Option<Arc<EventLog>>) {
        self.events = events;
    }

    /// Attaches (or detaches) a span log. With one attached, every
    /// batch served under a sampled [`TraceContext`] records a
    /// `service.select` span; untraced traffic never touches it.
    pub fn set_spans(&mut self, spans: Option<Arc<SpanLog>>) {
        self.spans = spans;
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The landmark configurations being dispatched to.
    pub fn landmarks(&self) -> &[Configuration] {
        &self.artifact.landmarks
    }

    /// Whether the fallback policy is currently engaged.
    pub fn fallback_active(&self) -> bool {
        self.monitor.fallback_active()
    }

    /// The current out-of-distribution fraction among probed requests —
    /// the quantity the fallback policy compares against its threshold.
    /// Cheap (two atomic loads), so drift watchers (the retrain
    /// controller, tests) need not diff [`VectorService::stats`]
    /// snapshots.
    pub fn trip_rate(&self) -> f64 {
        self.monitor.trip_rate()
    }

    /// Resets the drift monitor; request counters keep counting. An
    /// engaged fallback clearing through reset is journaled like a
    /// recovery.
    pub fn reset_drift(&self) {
        let was = self.monitor.fallback_active();
        self.monitor.reset();
        if was {
            if let Some(events) = &self.events {
                events.record(
                    &self.artifact.benchmark,
                    self.artifact.revision,
                    EventKind::FallbackCleared { trip_rate: 0.0 },
                );
            }
        }
    }

    /// Journals a fallback-state transition (entry snapshot `was` vs the
    /// post-record state). One branch when no event log is attached;
    /// both events carry the monitor's counters at the transition.
    fn note_fallback_transition(&self, was: bool) {
        let Some(events) = &self.events else { return };
        let now = self.monitor.fallback_active();
        if now == was {
            return;
        }
        let stats = self.monitor.stats();
        let kind = if now {
            EventKind::DriftTripped {
                probed: stats.probed,
                ood: stats.ood,
                trip_rate: self.monitor.trip_rate(),
            }
        } else {
            EventKind::FallbackCleared {
                trip_rate: self.monitor.trip_rate(),
            }
        };
        events.record(&self.artifact.benchmark, self.artifact.revision, kind);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.monitor.stats()
    }

    /// Checks that `fv` is shaped for this artifact: the exact property
    /// partition of the pinned feature declaration (untrusted wire
    /// vectors with a different layout could alias the wrong slots even
    /// at an equal slot total), with every slot present
    /// (`extract_all`-complete).
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] describing the mismatch.
    pub fn validate_vector(&self, fv: &FeatureVector) -> Result<()> {
        if !fv.matches_defs(&self.artifact.feature_defs) {
            return Err(Error::artifact(format!(
                "feature vector layout ({} slots) does not match the \
                 artifact's feature declaration {:?}",
                fv.len(),
                self.artifact.feature_defs
            )));
        }
        if !fv.is_complete() {
            return Err(Error::artifact(
                "feature vector is partially extracted; the wire protocol \
                 requires fully-extracted vectors",
            ));
        }
        Ok(())
    }

    /// The deterministic core shared by both entry points: classify one
    /// validated vector under the drift state observed at entry, without
    /// touching counters. `z` is the pre-normalized feature row for
    /// probed requests (`None` = unprobed — no drift check).
    fn classify(&self, fv: &FeatureVector, z: Option<&[f64]>, fall_back: bool) -> Selection {
        let samples = samples_for(fv, &self.set);
        let (landmark, extraction_cost) = self.compiled.classify_costed(&samples);
        let out_of_distribution = match z {
            Some(z) => self.monitor.is_ood(&self.artifact, z),
            None => false,
        };
        Selection {
            landmark: if fall_back {
                self.artifact.fallback
            } else {
                landmark
            },
            extraction_cost,
            out_of_distribution,
            fell_back: fall_back,
        }
    }

    /// Answers one selection request, updating the drift monitor.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the vector does not fit the
    /// artifact's feature declaration.
    pub fn select_vector(&self, fv: &FeatureVector) -> Result<Selection> {
        self.validate_vector(fv)?;
        let fall_back = self.monitor.fallback_active();
        let z = self.artifact.normalizer.transform(&fv.dense());
        let selection = self.classify(fv, Some(&z), fall_back);
        self.monitor
            .record_single(true, selection.out_of_distribution, selection.fell_back);
        self.note_fallback_transition(fall_back);
        if let Some(trace) = &self.trace {
            trace.record_batch(
                self.artifact.revision,
                std::slice::from_ref(fv),
                &[],
                std::slice::from_ref(&selection),
            );
        }
        Ok(selection)
    }

    /// Answers a batch of selection requests, fanned out over the
    /// work-stealing executor. Vectors are validated up front (the whole
    /// batch is rejected before any counter moves), the drift/fallback
    /// state is snapshotted at batch entry, and counter updates merge at
    /// batch exit — identical results at any worker count, with a drift
    /// trip engaging fallback from the *next* batch on.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] naming the first ill-shaped vector.
    pub fn select_vector_batch(&self, vectors: &[FeatureVector]) -> Result<Vec<Selection>> {
        self.select_vector_batch_traced(vectors, &[])
    }

    /// [`VectorService::select_vector_batch`] with opaque raw-input
    /// payloads riding along for the trace sink: `payloads` is either
    /// empty or parallel to `vectors` (`Null` = no payload for that
    /// vector). Payloads never influence selection — they exist so a
    /// request journal can capture what the client actually processed,
    /// which is what retraining needs.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] naming the first ill-shaped vector, or
    /// describing a payload/vector length mismatch.
    pub fn select_vector_batch_traced(
        &self,
        vectors: &[FeatureVector],
        payloads: &[serde_json::Value],
    ) -> Result<Vec<Selection>> {
        self.select_vector_batch_observed(vectors, payloads, None)
    }

    /// [`VectorService::select_vector_batch_traced`] under an optional
    /// request [`TraceContext`]. A sampled context makes this batch
    /// *observed*: the service records a `service.select` span (child of
    /// the caller's span) annotated with the answering revision, batch
    /// size, drift score, and fallback/probe verdicts, and the journal
    /// sink receives the trace id alongside the records. Selections are
    /// byte-identical to the untraced path — observation never steers.
    ///
    /// # Errors
    /// Same as [`VectorService::select_vector_batch_traced`].
    pub fn select_vector_batch_observed(
        &self,
        vectors: &[FeatureVector],
        payloads: &[serde_json::Value],
        trace: Option<&TraceContext>,
    ) -> Result<Vec<Selection>> {
        let started = std::time::Instant::now();
        if !payloads.is_empty() && payloads.len() != vectors.len() {
            return Err(Error::artifact(format!(
                "batch ships {} payloads for {} vectors; payloads must be \
                 absent or parallel",
                payloads.len(),
                vectors.len()
            )));
        }
        for (i, fv) in vectors.iter().enumerate() {
            self.validate_vector(fv)
                .map_err(|e| Error::artifact(format!("batch vector {i}: {e}")))?;
        }
        let fall_back = self.monitor.fallback_active();
        let probe_every = self.opts.probe_every.max(1);
        // Normalize the probed sub-batch in one struct-of-arrays pass
        // (dimension-major; see `ZScore::transform_batch`) instead of one
        // row-major transform per probed request inside the workers.
        let probed_rows: Vec<Vec<f64>> = vectors
            .iter()
            .step_by(probe_every)
            .map(|fv| fv.dense())
            .collect();
        let zs = self.artifact.normalizer.transform_batch(&probed_rows);
        let jobs: Vec<usize> = (0..vectors.len()).collect();
        let outcome = self.executor.run(jobs, |_, i| {
            let z = (i % probe_every == 0).then(|| zs[i / probe_every].as_slice());
            self.classify(&vectors[i], z, fall_back)
        });
        let selections = outcome.results;

        let probed = (0..vectors.len()).filter(|i| i % probe_every == 0).count() as u64;
        let ood = selections.iter().filter(|s| s.out_of_distribution).count() as u64;
        let fallbacks = if fall_back {
            selections.len() as u64
        } else {
            0
        };
        self.monitor
            .record_batch(selections.len() as u64, probed, ood, fallbacks);
        self.note_fallback_transition(fall_back);
        let sampled = trace.filter(|ctx| ctx.sampled && ctx.trace_id != 0);
        if let Some(sink) = &self.trace {
            sink.record_batch_traced(
                self.artifact.revision,
                vectors,
                payloads,
                &selections,
                sampled.map(|ctx| ctx.trace_id),
            );
        }
        if let (Some(ctx), Some(spans)) = (sampled, &self.spans) {
            let duration = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            spans.record(
                &Span::new(
                    ctx.trace_id,
                    self.span_ids.next(),
                    ctx.parent_span,
                    "service.select",
                    &self.artifact.benchmark,
                )
                .annotate("revision", self.artifact.revision)
                .annotate("batch", vectors.len())
                .annotate("probed", probed)
                .annotate("fallback", fall_back)
                .annotate("drift", format!("{:.4}", self.trip_rate()))
                .lasting(duration),
            );
        }
        Ok(selections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::SelectorService;
    use crate::testutil::{synthetic_corpus, train_synthetic, Synthetic};
    use intune_core::Benchmark;

    fn vector_service(opts: ServeOptions) -> VectorService {
        let artifact = ModelArtifact::export(&Synthetic, &train_synthetic());
        VectorService::new(artifact, opts).unwrap()
    }

    fn vectors(n: usize, seed: usize) -> Vec<FeatureVector> {
        synthetic_corpus(n, seed)
            .iter()
            .map(|i| Synthetic.extract_all(i))
            .collect()
    }

    #[test]
    fn vector_selection_matches_benchmark_bound_selection() {
        let inputs = synthetic_corpus(48, 11);
        let artifact = ModelArtifact::export(&Synthetic, &train_synthetic());
        let bound =
            SelectorService::new(&Synthetic, artifact.clone(), ServeOptions::default()).unwrap();
        let vector = VectorService::new(artifact, ServeOptions::default()).unwrap();
        let expected = bound.select_batch(&inputs);
        let got = vector
            .select_vector_batch(&vectors(48, 11))
            .expect("well-shaped batch");
        assert_eq!(got, expected, "vector path must be bit-identical");
        assert_eq!(vector.stats(), bound.stats());
    }

    #[test]
    fn batched_vector_selection_is_worker_count_invariant() {
        let vs = vectors(40, 3);
        let serial = vector_service(ServeOptions::default());
        let expected: Vec<Selection> = vs
            .iter()
            .map(|fv| serial.select_vector(fv).unwrap())
            .collect();
        for threads in [1, 4] {
            let svc = vector_service(ServeOptions {
                threads,
                ..ServeOptions::default()
            });
            assert_eq!(svc.select_vector_batch(&vs).unwrap(), expected, "{threads}");
        }
    }

    #[test]
    fn ill_shaped_vectors_are_rejected_before_counters_move() {
        let svc = vector_service(ServeOptions::default());
        // Wrong shape: one property instead of the artifact's two.
        let short = FeatureVector::empty(&[intune_core::FeatureDef::new("only", 1)]);
        let err = svc.select_vector(&short).unwrap_err();
        assert!(matches!(err, Error::Artifact { .. }), "{err:?}");

        // Right shape, but incomplete (nothing extracted).
        let empty = FeatureVector::empty(&Synthetic.properties());
        let err = svc.select_vector(&empty).unwrap_err();
        assert!(err.to_string().contains("partially extracted"), "{err}");

        // Same slot *total* as the artifact's 2+2 declaration but a
        // different property partition (1+3): an untrusted wire vector
        // like this would alias the wrong slots (or panic the subset
        // lookup) if only lengths were compared — must be a typed error.
        let alias_defs = [
            intune_core::FeatureDef::new("x", 1),
            intune_core::FeatureDef::new("y", 3),
        ];
        let mut aliased = FeatureVector::empty(&alias_defs);
        for (p, def) in alias_defs.iter().enumerate() {
            for level in 0..def.levels {
                aliased
                    .insert(
                        intune_core::FeatureId { property: p, level },
                        intune_core::FeatureSample::new(1.0, 1.0),
                    )
                    .unwrap();
            }
        }
        assert_eq!(aliased.len(), 4, "same slot count as the artifact");
        let err = svc.select_vector(&aliased).unwrap_err();
        assert!(err.to_string().contains("layout"), "{err}");

        // A batch with one bad vector is rejected wholesale.
        let mut batch = vectors(4, 1);
        batch.push(empty);
        let err = svc.select_vector_batch(&batch).unwrap_err();
        assert!(err.to_string().contains("batch vector 4"), "{err}");
        assert_eq!(svc.stats().requests, 0, "no counter moved");
    }

    #[test]
    fn trace_sink_sees_every_selection_with_revision_and_payloads() {
        use crate::trace::testutil::CountingSink;
        use std::sync::Arc;

        let artifact = ModelArtifact::export(&Synthetic, &train_synthetic()).with_revision(5);
        let mut svc = VectorService::new(artifact, ServeOptions::default()).unwrap();
        let sink = Arc::new(CountingSink::default());
        svc.set_trace(Some(sink.clone()));

        let vs = vectors(6, 2);
        let untraced_answers = svc.select_vector_batch(&vs).unwrap();
        let payloads: Vec<serde_json::Value> =
            (0..6).map(|i| serde_json::Value::Int(i as i64)).collect();
        let traced_answers = svc.select_vector_batch_traced(&vs, &payloads).unwrap();
        assert_eq!(untraced_answers, traced_answers, "payloads never steer");
        svc.select_vector(&vs[0]).unwrap();

        assert_eq!(sink.appended(), 13);
        let seen = sink.seen.lock().unwrap().clone();
        assert_eq!(seen, vec![(5, 6, 0), (5, 6, 6), (5, 1, 0)]);

        // Mismatched payloads are a typed error before any counter moves.
        let before = svc.stats();
        let err = svc
            .select_vector_batch_traced(&vs, &payloads[..2])
            .unwrap_err();
        assert!(err.to_string().contains("parallel"), "{err}");
        assert_eq!(svc.stats(), before);
    }

    #[test]
    fn trip_rate_tracks_the_ood_fraction_without_snapshot_diffing() {
        let svc = vector_service(ServeOptions {
            radius_factor: -1.0, // everything is out-of-distribution
            min_observations: 1000,
            ..ServeOptions::default()
        });
        assert_eq!(svc.trip_rate(), 0.0, "nothing probed yet");
        svc.select_vector_batch(&vectors(8, 1)).unwrap();
        assert_eq!(svc.trip_rate(), 1.0);
        let stats = svc.stats();
        assert_eq!(
            svc.trip_rate(),
            stats.drift_fraction(),
            "accessor and snapshot derive the same rate"
        );
        svc.reset_drift();
        assert_eq!(svc.trip_rate(), 0.0, "reset re-arms the rate");
    }

    #[test]
    fn drift_transitions_are_journaled_to_the_event_log() {
        use intune_obs::{read_events, EventKind, EventLog};

        let dir = std::env::temp_dir().join(format!("intune-serve-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drift-events.log");
        let _ = std::fs::remove_file(&path);
        let events = Arc::new(EventLog::open(&path).unwrap());

        let mut svc = vector_service(ServeOptions {
            radius_factor: -1.0, // synthetic drift storm: everything OOD
            min_observations: 8,
            drift_threshold: 0.5,
            ..ServeOptions::default()
        });
        svc.set_events(Some(events.clone()));
        let vs = vectors(16, 5);
        svc.select_vector_batch(&vs).unwrap(); // trips at batch exit
        svc.select_vector_batch(&vs).unwrap(); // already tripped: no event
        svc.reset_drift(); // recovery is journaled too

        let scan = read_events(&path).unwrap();
        assert!(scan.torn.is_none());
        let kinds: Vec<&EventKind> = scan.events.iter().map(|e| &e.kind).collect();
        assert_eq!(
            kinds.len(),
            2,
            "one trip + one clear, no repeats: {kinds:?}"
        );
        match kinds[0] {
            EventKind::DriftTripped {
                probed,
                ood,
                trip_rate,
            } => {
                assert_eq!((*probed, *ood), (16, 16));
                assert_eq!(*trip_rate, 1.0);
            }
            other => panic!("expected DriftTripped, got {other:?}"),
        }
        assert!(matches!(kinds[1], EventKind::FallbackCleared { .. }));
        assert_eq!(scan.events[0].tenant, svc.artifact().benchmark);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drift_trips_and_resets_like_the_benchmark_bound_service() {
        let svc = vector_service(ServeOptions {
            radius_factor: -1.0,
            min_observations: 8,
            drift_threshold: 0.5,
            ..ServeOptions::default()
        });
        let vs = vectors(16, 5);
        let first = svc.select_vector_batch(&vs).unwrap();
        assert!(first.iter().all(|s| s.out_of_distribution && !s.fell_back));
        assert!(svc.fallback_active());
        let second = svc.select_vector_batch(&vs).unwrap();
        assert!(second
            .iter()
            .all(|s| s.fell_back && s.landmark == svc.artifact().fallback));
        svc.reset_drift();
        assert!(!svc.fallback_active());
    }
}
