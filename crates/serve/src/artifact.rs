//! The versioned, checksummed model artifact — the train/deploy boundary.
//!
//! Everything the two-level learner ships to production (Figure 3 of the
//! paper: the input classifier plus the landmark configurations, here
//! extended with the training-corpus cluster geometry that powers the
//! serving runtime's drift monitor) is captured in one [`ModelArtifact`]
//! that saves to and loads from a checksummed JSON document. An artifact
//! saved from `learn()` reloads in a fresh process and produces
//! byte-identical selections.

use intune_core::{codec, Benchmark, Configuration, Error, FeatureDef, Result};
use intune_learning::classifiers::Classifier;
use intune_learning::oracles::static_oracle;
use intune_learning::pipeline::{TunedProgram, TwoLevelResult};
use intune_ml::ZScore;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Envelope schema name of persisted model artifacts.
pub const ARTIFACT_SCHEMA: &str = "intune-model-artifact";
/// Current artifact schema version (written by [`ModelArtifact::save`]).
pub const ARTIFACT_VERSION: u32 = 2;
/// Oldest artifact schema version this build still reads. Version-1
/// payloads are migrated forward through [`intune_core::codec`]
/// (`migrations()`); anything older (or newer than
/// [`ARTIFACT_VERSION`]) is a typed [`Error::Artifact`].
pub const ARTIFACT_MIN_VERSION: u32 = 1;

/// Satisfaction threshold H2 used when electing the fallback landmark at
/// export time (the paper's 95 %).
const FALLBACK_SATISFACTION: f64 = 0.95;

/// The deployable model: everything needed to select a configuration for
/// a fresh input without the training corpus or the learner.
///
/// See `crates/serve/README.md` for the on-disk format specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// `Benchmark::name()` of the program this model was trained for;
    /// checked at load/deploy time.
    pub benchmark: String,
    /// The benchmark's feature declaration, pinned so a drifted binary
    /// cannot feed the classifier a differently-shaped feature space.
    pub feature_defs: Vec<FeatureDef>,
    /// Z-score normalizer fitted on the dense training feature matrix.
    pub normalizer: ZScore,
    /// The landmark configurations (cluster representatives, autotuned).
    pub landmarks: Vec<Configuration>,
    /// The level-2 production input classifier.
    pub classifier: Classifier,
    /// Training-corpus cluster centroids in normalized feature space —
    /// the one-level geometry the drift monitor measures distance to.
    pub centroids: Vec<Vec<f64>>,
    /// Per-cluster dispersion: the maximum normalized distance of any
    /// training member to its centroid (the cluster's training radius).
    /// An incoming input farther than `radius_factor ×` this from every
    /// centroid is counted out-of-distribution.
    pub dispersion: Vec<f64>,
    /// The safe/fallback landmark (the training static oracle): what the
    /// serving runtime dispatches when drift exceeds its threshold.
    pub fallback: usize,
    /// The benchmark's accuracy threshold H1, if variable-accuracy.
    pub accuracy_threshold: Option<f64>,
    /// Rollout revision counter (schema v2). Each retrain/redeploy of the
    /// same benchmark bumps this; the serve daemon reports it so shadow
    /// promotions are attributable. Version-1 artifacts migrate to `0`.
    pub revision: u64,
    /// Number of training inputs behind the model (schema v2; `0` =
    /// unknown, the version-1 migration default).
    pub trained_inputs: u64,
}

impl ModelArtifact {
    /// Exports the deployable artifact from a learning result.
    ///
    /// # Panics
    /// Panics if `result` shapes are inconsistent (cannot happen for a
    /// result produced by `learn`).
    pub fn export<B: Benchmark>(benchmark: &B, result: &TwoLevelResult) -> Self {
        let level1 = &result.level1;
        let threshold = benchmark.accuracy().map(|a| a.threshold);
        // Per-cluster training radius in normalized feature space.
        let mut dispersion = vec![0.0f64; level1.centroids.len()];
        for (fv, &cluster) in level1.features.iter().zip(&level1.cluster_labels) {
            let z = level1.normalizer.transform(&fv.dense());
            let d = distance(&z, &level1.centroids[cluster]);
            if d > dispersion[cluster] {
                dispersion[cluster] = d;
            }
        }
        ModelArtifact {
            benchmark: benchmark.name().to_string(),
            feature_defs: benchmark.properties(),
            normalizer: level1.normalizer.clone(),
            landmarks: level1.landmarks.clone(),
            classifier: result.production().clone(),
            centroids: level1.centroids.clone(),
            dispersion,
            fallback: static_oracle(&level1.perf, threshold, FALLBACK_SATISFACTION),
            accuracy_threshold: threshold,
            revision: 0,
            trained_inputs: result.stats.inputs as u64,
        }
    }

    /// Returns the artifact stamped with a rollout revision (builder
    /// style; [`ModelArtifact::export`] starts at revision 0).
    pub fn with_revision(mut self, revision: u64) -> Self {
        self.revision = revision;
        self
    }

    /// Serializes into the checksummed envelope document (text form).
    pub fn to_document(&self) -> String {
        codec::encode_document(
            ARTIFACT_SCHEMA,
            ARTIFACT_VERSION,
            serde_json::to_value(self),
        )
    }

    /// The payload migration chain accepted by [`ModelArtifact::from_document`]:
    /// `migrations()[i]` upgrades schema version `ARTIFACT_MIN_VERSION + i`
    /// to the next one.
    ///
    /// **v1 → v2**: adds the rollout metadata fields — `revision: 0`
    /// (pre-rollout artifacts carry no revision history) and
    /// `trained_inputs: 0` (unknown; v1 never recorded corpus size). All
    /// v1 fields are kept bit-for-bit, so a migrated artifact selects
    /// identically to the v1 reader's.
    pub fn migrations() -> &'static [codec::Migration] {
        fn v1_to_v2(payload: serde_json::Value) -> std::result::Result<serde_json::Value, String> {
            let serde_json::Value::Object(mut fields) = payload else {
                return Err("artifact payload is not an object".to_string());
            };
            for (name, default) in [("revision", 0u64), ("trained_inputs", 0u64)] {
                if !fields.iter().any(|(k, _)| k == name) {
                    fields.push((name.to_string(), serde_json::Value::UInt(default)));
                }
            }
            Ok(serde_json::Value::Object(fields))
        }
        &[v1_to_v2]
    }

    /// Parses an envelope document produced by [`ModelArtifact::to_document`],
    /// migrating payloads of older schema versions (≥
    /// [`ARTIFACT_MIN_VERSION`]) forward.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on malformed JSON, schema mismatch, a
    /// version outside the supported window, checksum failure, or a
    /// payload shape mismatch.
    pub fn from_document(text: &str) -> Result<Self> {
        let payload = codec::decode_document_migrating(
            text,
            ARTIFACT_SCHEMA,
            ARTIFACT_VERSION,
            Self::migrations(),
        )?;
        serde_json::from_value(&payload)
            .map_err(|e| Error::artifact(format!("malformed artifact payload: {e}")))
    }

    /// Saves the artifact to `path` (the file holds exactly
    /// [`ModelArtifact::to_document`]).
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_document())
            .map_err(|e| Error::artifact(format!("cannot write {}: {e}", path.display())))
    }

    /// Loads an artifact persisted by [`ModelArtifact::save`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure or any
    /// [`ModelArtifact::from_document`] check.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::artifact(format!("cannot read {}: {e}", path.display())))?;
        Self::from_document(&text)
    }

    /// Total number of feature slots `M = Σ levels` declared by the
    /// artifact's pinned feature definitions.
    pub fn feature_slots(&self) -> usize {
        self.feature_defs.iter().map(|d| d.levels).sum()
    }

    /// Validates the artifact's *internal* consistency — everything that
    /// can be checked without the benchmark: landmark presence, fallback
    /// range, normalizer / centroid / classifier dimensions against the
    /// pinned feature declaration. This is the check a benchmark-agnostic
    /// consumer (the serve daemon, which classifies pre-extracted feature
    /// vectors) runs before serving.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] naming the first inconsistency.
    pub fn validate_shape(&self) -> Result<()> {
        if self.landmarks.is_empty() {
            return Err(Error::artifact("artifact has no landmarks"));
        }
        let total_features = self.feature_slots();
        if self.normalizer.dims() != total_features {
            return Err(Error::artifact(format!(
                "normalizer covers {} feature slots, artifact declares {}",
                self.normalizer.dims(),
                total_features
            )));
        }
        if self.centroids.len() != self.dispersion.len() {
            return Err(Error::artifact(format!(
                "{} centroids but {} dispersion entries",
                self.centroids.len(),
                self.dispersion.len()
            )));
        }
        if self.centroids.is_empty() {
            return Err(Error::artifact("artifact has no cluster centroids"));
        }
        if let Some(c) = self.centroids.iter().find(|c| c.len() != total_features) {
            return Err(Error::artifact(format!(
                "centroid has {} dimensions, feature space has {total_features}",
                c.len()
            )));
        }
        if self.fallback >= self.landmarks.len() {
            return Err(Error::artifact(format!(
                "fallback landmark {} out of range ({} landmarks)",
                self.fallback,
                self.landmarks.len()
            )));
        }
        let props = self.classifier.feature_set().num_properties();
        if props != self.feature_defs.len() {
            return Err(Error::artifact(format!(
                "classifier spans {props} properties, artifact declares {}",
                self.feature_defs.len()
            )));
        }
        Ok(())
    }

    /// Validates the artifact against the benchmark it is about to serve:
    /// [`ModelArtifact::validate_shape`] plus name, feature-declaration
    /// equality, and landmark well-formedness in the benchmark's space.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] naming the first mismatch.
    pub fn validate<B: Benchmark>(&self, benchmark: &B) -> Result<()> {
        if self.benchmark != benchmark.name() {
            return Err(Error::artifact(format!(
                "artifact was trained for `{}`, not `{}`",
                self.benchmark,
                benchmark.name()
            )));
        }
        let defs = benchmark.properties();
        if self.feature_defs != defs {
            return Err(Error::artifact(format!(
                "feature declaration changed: artifact has {:?}, benchmark declares {:?}",
                self.feature_defs, defs
            )));
        }
        self.validate_shape()?;
        let space = benchmark.space();
        for (i, lm) in self.landmarks.iter().enumerate() {
            space.validate(lm).map_err(|e| {
                Error::artifact(format!("landmark {i} does not fit the space: {e}"))
            })?;
        }
        Ok(())
    }

    /// Builds the in-process deployment object ([`TunedProgram`]) from the
    /// artifact, validating it against `benchmark` first.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when validation fails.
    pub fn tuned<'b, B: Benchmark>(&self, benchmark: &'b B) -> Result<TunedProgram<'b, B>> {
        self.validate(benchmark)?;
        Ok(TunedProgram::from_parts(
            benchmark,
            self.landmarks.clone(),
            self.classifier.clone(),
        ))
    }
}

/// Euclidean distance between two equal-length vectors.
pub(crate) fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{synthetic_corpus, train_synthetic, Synthetic};

    #[test]
    fn export_save_load_round_trips_bit_identically() {
        let b = Synthetic;
        let result = train_synthetic();
        let artifact = ModelArtifact::export(&b, &result);
        artifact.validate(&b).unwrap();

        let dir = std::env::temp_dir().join(format!("intune-artifact-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("synthetic.model.json");
        artifact.save(&path).unwrap();
        let loaded = ModelArtifact::load(&path).unwrap();
        assert_eq!(loaded, artifact);
        // Saving the loaded artifact reproduces the file byte for byte.
        assert_eq!(loaded.to_document(), artifact.to_document());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_artifact_selects_identically_on_fresh_inputs() {
        let b = Synthetic;
        let result = train_synthetic();
        let artifact = ModelArtifact::export(&b, &result);
        let reloaded = ModelArtifact::from_document(&artifact.to_document()).unwrap();

        let trained = TunedProgram::new(&b, &result);
        let served = reloaded.tuned(&b).unwrap();
        for input in synthetic_corpus(40, 9) {
            assert_eq!(trained.select(&input), served.select(&input));
        }
    }

    #[test]
    fn dispersion_covers_every_training_member() {
        let b = Synthetic;
        let result = train_synthetic();
        let artifact = ModelArtifact::export(&b, &result);
        for (fv, &cluster) in result
            .level1
            .features
            .iter()
            .zip(&result.level1.cluster_labels)
        {
            let z = artifact.normalizer.transform(&fv.dense());
            let d = distance(&z, &artifact.centroids[cluster]);
            assert!(d <= artifact.dispersion[cluster] + 1e-12);
        }
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let b = Synthetic;
        let artifact = ModelArtifact::export(&b, &train_synthetic());
        let text = artifact.to_document();
        let tampered = text.replacen("\"fallback\"", "\"fallbacc\"", 1);
        assert_ne!(tampered, text);
        let err = ModelArtifact::from_document(&tampered).unwrap_err();
        assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
    }

    /// Re-encodes an artifact as a faithful version-1 document: the v2
    /// fields stripped from the payload, envelope stamped `version: 1`.
    fn as_v1_document(artifact: &ModelArtifact) -> String {
        let serde_json::Value::Object(fields) = serde_json::to_value(artifact) else {
            panic!("artifact payload is an object");
        };
        let v1 = serde_json::Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "revision" && k != "trained_inputs")
                .collect(),
        );
        codec::encode_document(ARTIFACT_SCHEMA, ARTIFACT_VERSION - 1, v1)
    }

    #[test]
    fn version_1_documents_migrate_with_defaulted_rollout_fields() {
        let b = Synthetic;
        let mut artifact = ModelArtifact::export(&b, &train_synthetic());
        artifact.revision = 7;
        artifact.trained_inputs = 60;
        let migrated = ModelArtifact::from_document(&as_v1_document(&artifact)).unwrap();
        assert_eq!(migrated.revision, 0, "v1 artifacts predate revisions");
        assert_eq!(migrated.trained_inputs, 0, "v1 never recorded corpus size");
        // Everything the v1 schema carried survives bit-for-bit.
        let expected = ModelArtifact {
            revision: 0,
            trained_inputs: 0,
            ..artifact
        };
        assert_eq!(migrated, expected);
        migrated.validate(&b).unwrap();
    }

    #[test]
    fn versions_outside_the_window_are_rejected() {
        let b = Synthetic;
        let artifact = ModelArtifact::export(&b, &train_synthetic());
        for stale in [0, ARTIFACT_VERSION + 1] {
            let doc =
                codec::encode_document(ARTIFACT_SCHEMA, stale, serde_json::to_value(&artifact));
            let err = ModelArtifact::from_document(&doc).unwrap_err();
            assert!(err.to_string().contains("version"), "{stale}: {err}");
        }
    }

    #[test]
    fn validate_rejects_wrong_benchmark_and_shapes() {
        let b = Synthetic;
        let mut artifact = ModelArtifact::export(&b, &train_synthetic());
        artifact.validate(&b).unwrap();

        let mut wrong_name = artifact.clone();
        wrong_name.benchmark = "other".into();
        assert!(wrong_name.validate(&b).is_err());

        let mut bad_fallback = artifact.clone();
        bad_fallback.fallback = 99;
        assert!(bad_fallback.validate(&b).is_err());

        let mut bad_centroid = artifact.clone();
        bad_centroid.centroids[0].pop();
        assert!(bad_centroid.validate(&b).is_err());

        artifact.landmarks.clear();
        assert!(artifact.validate(&b).is_err());
    }
}
