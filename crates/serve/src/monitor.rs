//! The drift monitor shared by both serving front ends.
//!
//! [`SelectorService`](crate::SelectorService) (benchmark-bound, lazy
//! extraction) and [`VectorService`](crate::VectorService) (benchmark-free,
//! pre-extracted feature vectors — the daemon's core) watch the input
//! distribution the same way: probed requests are normalized with the
//! artifact's training normalizer and measured against the training
//! cluster centroids; when the out-of-distribution fraction among probed
//! requests exceeds a threshold (after a minimum observation count), the
//! fallback policy pins the artifact's safe landmark until reset. This
//! module owns that state — the geometry test, the monotone counters, and
//! the threshold decision — so the two front ends cannot drift apart.

use crate::artifact::{distance, ModelArtifact};
use crate::service::{ServeOptions, ServeStats};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters + threshold state of one serving runtime. All methods take
/// `&self`; everything is atomics, so the monitor is freely shared across
/// the executor's workers.
#[derive(Debug)]
pub(crate) struct DriftMonitor {
    /// Largest per-cluster training radius — the OOD allowance of
    /// zero-radius (singleton) clusters, fixed at construction because
    /// the artifact is immutable afterwards.
    max_radius: f64,
    radius_factor: f64,
    drift_threshold: f64,
    min_observations: u64,
    requests: AtomicU64,
    probed: AtomicU64,
    ood: AtomicU64,
    fallbacks: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

impl DriftMonitor {
    pub(crate) fn new(artifact: &ModelArtifact, opts: &ServeOptions) -> Self {
        DriftMonitor {
            max_radius: artifact.dispersion.iter().cloned().fold(0.0f64, f64::max),
            radius_factor: opts.radius_factor,
            drift_threshold: opts.drift_threshold,
            min_observations: opts.min_observations,
            requests: AtomicU64::new(0),
            probed: AtomicU64::new(0),
            ood: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// Whether a normalized feature vector lies outside every cluster's
    /// (scaled) training radius.
    pub(crate) fn is_ood(&self, artifact: &ModelArtifact, z: &[f64]) -> bool {
        // Zero-radius clusters (singletons) borrow the largest training
        // radius so near-duplicates of a singleton are not spuriously OOD.
        artifact
            .centroids
            .iter()
            .zip(&artifact.dispersion)
            .all(|(centroid, &radius)| {
                let allowed = if radius > 0.0 {
                    radius
                } else {
                    self.max_radius
                };
                distance(z, centroid) > self.radius_factor * allowed.max(1e-12)
            })
    }

    /// Whether the fallback policy is currently engaged.
    pub(crate) fn fallback_active(&self) -> bool {
        let probed = self.probed.load(Ordering::Acquire);
        if probed < self.min_observations.max(1) {
            return false;
        }
        let ood = self.ood.load(Ordering::Acquire);
        intune_exec::hit_rate(ood, probed) > self.drift_threshold
    }

    /// The current out-of-distribution fraction among probed requests
    /// (0 when nothing probed yet) — the quantity [`fallback_active`]
    /// compares against the threshold. A cheap two-load accessor so
    /// callers watching for a trip (the retrain controller, tests) do not
    /// have to take and diff whole [`stats`] snapshots.
    ///
    /// [`fallback_active`]: DriftMonitor::fallback_active
    /// [`stats`]: DriftMonitor::stats
    pub(crate) fn trip_rate(&self) -> f64 {
        intune_exec::hit_rate(
            self.ood.load(Ordering::Acquire),
            self.probed.load(Ordering::Acquire),
        )
    }

    /// Resets the drift counters; request counters keep counting.
    pub(crate) fn reset(&self) {
        self.probed.store(0, Ordering::Release);
        self.ood.store(0, Ordering::Release);
    }

    /// Records one answered request (probe outcome + fallback flag).
    pub(crate) fn record_single(&self, probed: bool, was_ood: bool, fell_back: bool) {
        self.requests.fetch_add(1, Ordering::AcqRel);
        if probed {
            self.probed.fetch_add(1, Ordering::AcqRel);
            if was_ood {
                self.ood.fetch_add(1, Ordering::AcqRel);
            }
        }
        if fell_back {
            self.fallbacks.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Merges one dispatched batch's counts at batch exit.
    pub(crate) fn record_batch(&self, requests: u64, probed: u64, ood: u64, fallbacks: u64) {
        self.requests.fetch_add(requests, Ordering::AcqRel);
        self.batches.fetch_add(1, Ordering::AcqRel);
        self.max_batch.fetch_max(requests, Ordering::AcqRel);
        self.probed.fetch_add(probed, Ordering::AcqRel);
        self.ood.fetch_add(ood, Ordering::AcqRel);
        self.fallbacks.fetch_add(fallbacks, Ordering::AcqRel);
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Acquire),
            probed: self.probed.load(Ordering::Acquire),
            ood: self.ood.load(Ordering::Acquire),
            fallbacks: self.fallbacks.load(Ordering::Acquire),
            batches: self.batches.load(Ordering::Acquire),
            max_batch: self.max_batch.load(Ordering::Acquire),
        }
    }
}
