//! The request journal: a segmented, crash-tolerant append-only log of
//! served selections.
//!
//! Every record captures one answered request — the served feature
//! vector, the chosen landmark, the drift/fallback outcome, the serving
//! artifact's revision, and (when the client shipped one) an opaque
//! raw-input payload. Records are framed with the workspace's checksummed
//! record codec ([`intune_core::codec::encode_record`]): a 4-byte
//! big-endian length prefix followed by a compact checksummed JSON
//! envelope (`schema: "intune-request-journal"`, version 1).
//!
//! ## Segments
//!
//! A journal directory holds numbered segment files
//! (`journal-00000000.seg`, `journal-00000001.seg`, …). The writer
//! appends to the highest-numbered segment and rotates to a fresh one
//! every `segment_max_records` records, so compaction can consume sealed
//! segments while the daemon keeps appending to the active one.
//!
//! ## Crash tolerance
//!
//! Appends are not atomic: a crash can leave a torn record at the end of
//! the active segment. [`read_segment`] recovers every complete,
//! checksum-verified record and reports the torn tail as a **typed
//! error** (never a panic, whatever the truncation offset — a property
//! test pins this). On reopen, a writer never appends after a torn tail:
//! it seals the damaged segment and starts a fresh one, so one crash
//! costs at most the record being written, not the segment.
//!
//! ## Durability
//!
//! A flushed record has reached the kernel (it survives a process
//! crash); a **sealed** segment has been `fdatasync`ed (it survives a
//! power cut). The active segment is only synced per flush when
//! [`JournalOptions::sync_every_flush`] is set — see
//! [`JournalWriter::flush`] for the exact guarantee and the rationale
//! for the default.
//!
//! The full on-disk format specification lives in
//! `crates/retrain/README.md`.

use crate::service::Selection;
use crate::trace::TraceSink;
use intune_core::{codec, Error, FeatureVector, Result};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Envelope schema name of journal records.
pub const JOURNAL_SCHEMA: &str = "intune-request-journal";
/// Current journal record schema version.
pub const JOURNAL_VERSION: u32 = 1;
/// Segment file name prefix.
pub const SEGMENT_PREFIX: &str = "journal-";
/// Segment file name suffix.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// One served selection, as persisted in the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotone sequence number, unique across all segments of one
    /// journal directory (assigned by the writer).
    pub seq: u64,
    /// Rollout revision of the artifact that answered.
    pub revision: u64,
    /// Index of the landmark actually served.
    pub landmark: u64,
    /// Whether the drift probe flagged the input out-of-distribution.
    pub out_of_distribution: bool,
    /// Whether the fallback policy overrode the classifier.
    pub fell_back: bool,
    /// The served (fully-extracted) feature vector.
    pub features: FeatureVector,
    /// Opaque raw-input payload shipped by the client for retraining
    /// (`Benchmark::encode_input`), or `None` for feature-only requests.
    pub payload: Option<Value>,
    /// Trace id of the sampled request that served this record, or
    /// `None` for untraced traffic. Elided from the encoding when absent,
    /// so journals written before tracing read back unchanged — and a
    /// retrain cycle can name exactly which traces fed it.
    pub trace_id: Option<u64>,
}

/// Journal writer tunables.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// Records per segment before the writer rotates to a fresh file.
    pub segment_max_records: usize,
    /// Call `fdatasync` after every flush, not only at segment seal.
    ///
    /// Off by default: the journal feeds retraining, where losing the
    /// last batch to a power cut costs a little training data, not
    /// correctness — and a per-batch fsync would put a disk round trip
    /// on the serving path. Turn it on when every served selection must
    /// survive power loss.
    pub sync_every_flush: bool,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            segment_max_records: 1024,
            sync_every_flush: false,
        }
    }
}

/// What [`read_segment`] recovered from one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Every complete, checksum-verified record, in append order.
    pub records: Vec<JournalRecord>,
    /// The typed error describing a torn or corrupt tail, if the file
    /// does not end exactly on a record boundary.
    pub torn: Option<Error>,
}

/// Lists a journal directory's segment files, ascending by index.
///
/// # Errors
/// Returns [`Error::Artifact`] when the directory cannot be read.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| Error::artifact(format!("cannot read journal dir {}: {e}", dir.display())))?;
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| Error::artifact(format!("cannot list {}: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|rest| rest.strip_suffix(SEGMENT_SUFFIX))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_by_key(|(index, _)| *index);
    Ok(segments.into_iter().map(|(_, path)| path).collect())
}

/// Path of segment `index` inside `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}"))
}

/// Index parsed back out of a segment path (None for foreign files).
pub fn segment_index(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Reads one segment, recovering every complete record and typing the
/// torn tail (see the module docs). IO failure is the only hard error —
/// truncation and corruption are reported in [`SegmentScan::torn`].
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be read at all.
pub fn read_segment(path: &Path) -> Result<SegmentScan> {
    let bytes = std::fs::read(path)
        .map_err(|e| Error::artifact(format!("cannot read segment {}: {e}", path.display())))?;
    let scan = codec::scan_records(&bytes, JOURNAL_SCHEMA, JOURNAL_VERSION);
    let mut records = Vec::with_capacity(scan.records.len());
    let mut torn = scan.torn;
    for (i, value) in scan.records.into_iter().enumerate() {
        match serde_json::from_value::<JournalRecord>(&value) {
            Ok(record) => records.push(record),
            Err(e) => {
                // A checksum-valid record with an alien shape: everything
                // from here on is untrusted, exactly like a torn tail.
                torn = Some(Error::artifact(format!(
                    "segment {} record {i} has an unexpected shape: {e}",
                    path.display()
                )));
                break;
            }
        }
    }
    Ok(SegmentScan { records, torn })
}

/// The append side of the journal. Not thread-safe by itself — the
/// serving integration wraps it in a [`JournalSink`].
///
/// Appends are **staged**: [`JournalWriter::stage`] encodes records into
/// an in-memory buffer and [`JournalWriter::flush`] writes the buffer in
/// one syscall — so a served batch of B selections costs one write, not
/// B. [`JournalWriter::append`] is the stage+flush convenience for
/// single records.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    opts: JournalOptions,
    file: File,
    segment: u64,
    records_in_segment: usize,
    next_seq: u64,
    /// Encoded-but-unwritten frames (cleared by [`JournalWriter::flush`]).
    pending: Vec<u8>,
    /// Records inside `pending`.
    pending_records: u64,
    /// Records durably written since open — the ground truth the sink's
    /// `appended` counter is derived from, exact even when an
    /// intra-batch rotation flush fails.
    durable: u64,
}

impl JournalWriter {
    /// Opens (or resumes) the journal in `dir`, creating the directory if
    /// needed. Resuming scans existing segments for the next sequence
    /// number; a segment with a torn tail is sealed as-is (appending
    /// after garbage would bury every later record) and writing continues
    /// in a fresh segment.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure.
    pub fn open(dir: &Path, opts: JournalOptions) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| {
            Error::artifact(format!("cannot create journal dir {}: {e}", dir.display()))
        })?;
        let segments = list_segments(dir)?;
        // One backwards pass serves both resume questions: the newest
        // segment's scan decides whether it can be appended to, and the
        // newest segment holding any complete record fixes the next
        // sequence number.
        let mut next_seq = 0u64;
        let mut active: Option<(u64, usize, bool)> = None;
        for (i, path) in segments.iter().enumerate().rev() {
            let scan = read_segment(path)?;
            if i == segments.len() - 1 {
                let index = segment_index(path).expect("listed segments parse");
                let reusable =
                    scan.torn.is_none() && scan.records.len() < opts.segment_max_records.max(1);
                active = Some(if reusable {
                    (index, scan.records.len(), true)
                } else {
                    (index + 1, 0, false)
                });
            }
            if let Some(last) = scan.records.last() {
                next_seq = last.seq + 1;
                break;
            }
        }
        let (segment, records_in_segment, reuse) = active.unwrap_or((0, 0, false));
        let path = segment_path(dir, segment);
        let file = if reuse {
            OpenOptions::new().append(true).open(&path)
        } else {
            File::create(&path)
        }
        .map_err(|e| Error::artifact(format!("cannot open segment {}: {e}", path.display())))?;
        Ok(JournalWriter {
            dir: dir.to_path_buf(),
            opts,
            file,
            segment,
            records_in_segment,
            next_seq,
            pending: Vec::new(),
            pending_records: 0,
            durable: 0,
        })
    }

    /// The sequence number the next append will be stamped with.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Index of the segment currently being appended to.
    pub fn active_segment(&self) -> u64 {
        self.segment
    }

    /// Encodes one record into the pending buffer (its `seq` field is
    /// overwritten with the journal's next sequence number, which is
    /// returned), rotating to a fresh segment — flushing first — when the
    /// active one is full. Nothing reaches disk until
    /// [`JournalWriter::flush`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on an unencodable (oversized) record
    /// or a rotation failure; the sequence number is not consumed on
    /// failure.
    pub fn stage(&mut self, mut record: JournalRecord) -> Result<u64> {
        if self.records_in_segment >= self.opts.segment_max_records.max(1) {
            self.flush()?;
            // Seal the full segment durably before rotating away from it:
            // compaction consumes sealed segments on the assumption that
            // their contents survive a crash, and this is the last moment
            // this writer holds the file.
            self.file
                .sync_data()
                .map_err(|e| Error::artifact(format!("cannot sync sealed segment: {e}")))?;
            self.segment += 1;
            let path = segment_path(&self.dir, self.segment);
            self.file = File::create(&path).map_err(|e| {
                Error::artifact(format!("cannot rotate to segment {}: {e}", path.display()))
            })?;
            self.records_in_segment = 0;
        }
        record.seq = self.next_seq;
        let frame = codec::encode_record(
            JOURNAL_SCHEMA,
            JOURNAL_VERSION,
            serde_json::to_value(&record),
        )?;
        self.pending.extend_from_slice(&frame);
        self.pending_records += 1;
        self.records_in_segment += 1;
        self.next_seq += 1;
        Ok(record.seq)
    }

    /// Writes every pending frame in one syscall. On failure the pending
    /// records are lost (their sequence numbers stay consumed — gaps are
    /// legal, resumption only needs the maximum).
    ///
    /// ## Durability
    ///
    /// By default a flushed record has reached the kernel, not the
    /// platter: it survives a process crash but not a power cut. Sealed
    /// (rotated-away) segments are always `fdatasync`ed; the active
    /// segment is only synced when
    /// [`JournalOptions::sync_every_flush`] is set.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let outcome = self
            .file
            .write_all(&self.pending)
            .and_then(|()| self.file.flush())
            .and_then(|()| {
                if self.opts.sync_every_flush {
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            })
            .map_err(|e| Error::artifact(format!("cannot append journal records: {e}")));
        if outcome.is_ok() {
            self.durable += self.pending_records;
        }
        self.pending.clear();
        self.pending_records = 0;
        outcome
    }

    /// Records durably written since this writer opened.
    pub fn durable(&self) -> u64 {
        self.durable
    }

    /// Stages and flushes one record — see [`JournalWriter::stage`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on encoding or IO failure.
    pub fn append(&mut self, record: JournalRecord) -> Result<u64> {
        let seq = self.stage(record)?;
        self.flush()?;
        Ok(seq)
    }
}

/// The journal as a [`TraceSink`]: the bridge between the serving runtime
/// and the append-only log. Appends happen on the serving thread under a
/// mutex, one buffered **write per served batch** (not per selection); a
/// sink that cannot record — oversized payload, disk failure — **never
/// fails the serving path**: it counts the dropped records and keeps the
/// last error for the operator.
#[derive(Debug)]
pub struct JournalSink {
    writer: Mutex<JournalWriter>,
    appended: AtomicU64,
    dropped: AtomicU64,
    last_error: Mutex<Option<Error>>,
}

impl JournalSink {
    /// Opens (or resumes) the journal in `dir` — see
    /// [`JournalWriter::open`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure.
    pub fn open(dir: &Path, opts: JournalOptions) -> Result<Self> {
        Ok(JournalSink {
            writer: Mutex::new(JournalWriter::open(dir, opts)?),
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            last_error: Mutex::new(None),
        })
    }

    /// Records dropped because the journal could not be written.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// The most recent append failure, if any.
    pub fn last_error(&self) -> Option<Error> {
        self.last_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl TraceSink for JournalSink {
    fn record_batch(
        &self,
        revision: u64,
        features: &[FeatureVector],
        payloads: &[Value],
        selections: &[Selection],
    ) {
        self.record_batch_traced(revision, features, payloads, selections, None);
    }

    fn record_batch_traced(
        &self,
        revision: u64,
        features: &[FeatureVector],
        payloads: &[Value],
        selections: &[Selection],
        trace_id: Option<u64>,
    ) {
        // Recover from poisoning: a panic on one serving thread must not
        // wedge journaling (and with it every later traced batch) behind
        // a `PoisonError`. The writer's counters stay consistent across
        // a panic — `durable` only advances on successful flushes.
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let durable_before = writer.durable();
        let mut error: Option<Error> = None;
        for (i, (fv, selection)) in features.iter().zip(selections).enumerate() {
            let payload = payloads.get(i).filter(|v| !v.is_null()).cloned();
            let record = JournalRecord {
                seq: 0, // assigned by the writer
                revision,
                landmark: selection.landmark as u64,
                out_of_distribution: selection.out_of_distribution,
                fell_back: selection.fell_back,
                features: fv.clone(),
                payload,
                trace_id,
            };
            match writer.stage(record) {
                Ok(_) => {}
                Err(e) => {
                    // An unrecordable record (e.g. an oversized payload)
                    // or a failed rotation costs what it costs, never the
                    // batch — and never a panic that would poison this
                    // mutex. (A rotation failure inside `stage` may also
                    // have lost earlier staged records; the durable
                    // counter below accounts for those exactly.)
                    error = Some(e);
                }
            }
        }
        if let Err(e) = writer.flush() {
            error = Some(e);
        }
        // `durable` is ground truth: staged records can be lost by a
        // failed intra-batch rotation flush as well as the final flush,
        // so derive both counters from what actually reached disk.
        let landed = writer.durable() - durable_before;
        drop(writer);
        self.appended.fetch_add(landed, Ordering::AcqRel);
        self.dropped
            .fetch_add(selections.len() as u64 - landed, Ordering::AcqRel);
        if let Some(e) = error {
            *self
                .last_error
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
        }
    }

    fn appended(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::FeatureDef;

    fn record(seq: u64, kind: f64) -> JournalRecord {
        let defs = [FeatureDef::new("kind", 1), FeatureDef::new("size", 1)];
        let mut fv = FeatureVector::empty(&defs);
        for (p, _) in defs.iter().enumerate() {
            fv.insert(
                intune_core::FeatureId {
                    property: p,
                    level: 0,
                },
                intune_core::FeatureSample::new(kind + p as f64, 1.0),
            )
            .unwrap();
        }
        JournalRecord {
            seq,
            revision: 3,
            landmark: seq % 2,
            out_of_distribution: seq.is_multiple_of(3),
            fell_back: false,
            features: fv,
            payload: ((kind as u64).is_multiple_of(2))
                .then(|| Value::Array(vec![Value::Float(kind)])),
            trace_id: None,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "intune-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_rotate_and_read_back_across_segments() {
        let dir = tmp("rotate");
        let mut w = JournalWriter::open(
            &dir,
            JournalOptions {
                segment_max_records: 4,
                ..JournalOptions::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            assert_eq!(w.append(record(999, i as f64)).unwrap(), i);
        }
        assert_eq!(w.active_segment(), 2, "10 records at 4/segment");
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 3);
        let mut all = Vec::new();
        for s in &segments {
            let scan = read_segment(s).unwrap();
            assert!(scan.torn.is_none());
            all.extend(scan.records);
        }
        assert_eq!(all.len(), 10);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "writer stamps sequence numbers");
            assert_eq!(r.revision, 3);
        }
        // Payload presence alternates by construction.
        assert!(all[0].payload.is_some());
        assert!(all[1].payload.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_sequence_and_appends_to_the_active_segment() {
        let dir = tmp("resume");
        {
            let mut w = JournalWriter::open(
                &dir,
                JournalOptions {
                    segment_max_records: 4,
                    ..JournalOptions::default()
                },
            )
            .unwrap();
            for i in 0..6 {
                w.append(record(0, i as f64)).unwrap();
            }
        }
        let mut w = JournalWriter::open(
            &dir,
            JournalOptions {
                segment_max_records: 4,
                ..JournalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(w.next_seq(), 6, "sequence resumes after the last record");
        assert_eq!(w.active_segment(), 1, "half-full segment is reused");
        w.append(record(0, 9.0)).unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 2, "no fresh segment was needed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_sealed_and_writing_continues_in_a_fresh_segment() {
        let dir = tmp("torn");
        {
            let mut w = JournalWriter::open(&dir, JournalOptions::default()).unwrap();
            for i in 0..3 {
                w.append(record(0, i as f64)).unwrap();
            }
        }
        // Crash simulation: cut the active segment mid-record.
        let path = segment_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2, "complete records survive");
        let torn = scan.torn.expect("torn tail typed");
        assert!(matches!(torn, Error::Artifact { .. }), "{torn:?}");

        let mut w = JournalWriter::open(&dir, JournalOptions::default()).unwrap();
        assert_eq!(w.next_seq(), 2, "the torn record's seq is reissued");
        assert_eq!(w.active_segment(), 1, "damaged segment is sealed");
        w.append(record(0, 8.0)).unwrap();
        let scan = read_segment(&segment_path(&dir, 1)).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq, 2);
        // The sealed segment still reads back its complete prefix.
        let sealed = read_segment(&path).unwrap();
        assert_eq!(sealed.records.len(), 2);
        assert!(sealed.torn.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_counts_appends_and_null_payloads_become_none() {
        use crate::trace::TraceSink as _;
        let dir = tmp("sink");
        let sink = JournalSink::open(&dir, JournalOptions::default()).unwrap();
        let r = record(0, 1.0);
        let selections = vec![
            Selection {
                landmark: 1,
                extraction_cost: 0.5,
                out_of_distribution: true,
                fell_back: false,
            };
            2
        ];
        let features = vec![r.features.clone(), r.features.clone()];
        let payloads = vec![Value::Array(vec![Value::Int(1)]), Value::Null];
        sink.record_batch(7, &features, &payloads, &selections);
        // And a payload-free batch.
        sink.record_batch(7, &features, &[], &selections);
        assert_eq!(sink.appended(), 4);
        assert_eq!(sink.dropped(), 0);
        assert!(sink.last_error().is_none());

        let scan = read_segment(&segment_path(&dir, 0)).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert!(scan.records[0].payload.is_some());
        assert!(scan.records[1].payload.is_none(), "Null payload elided");
        assert!(scan.records[2].payload.is_none());
        assert_eq!(scan.records[0].revision, 7);
        assert_eq!(scan.records[0].landmark, 1);
        assert!(scan.records[0].out_of_distribution);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_payloads_are_dropped_typed_and_never_poison_the_sink() {
        use crate::trace::TraceSink as _;
        let dir = tmp("oversize");
        let sink = JournalSink::open(&dir, JournalOptions::default()).unwrap();
        let fv = record(0, 1.0).features;
        let selection = Selection {
            landmark: 0,
            extraction_cost: 0.0,
            out_of_distribution: false,
            fell_back: false,
        };
        // A payload whose encoded record exceeds the 16 MiB frame cap —
        // wire clients can ship these (the wire frame cap is 64 MiB), so
        // the sink must drop the record, not panic under its mutex and
        // take every later selection down with it.
        let huge = Value::String("x".repeat(intune_core::codec::MAX_RECORD_BYTES + 1024));
        sink.record_batch(
            1,
            &[fv.clone(), fv.clone()],
            &[huge, Value::Null],
            &[selection, selection],
        );
        assert_eq!(sink.dropped(), 1, "only the oversized record is lost");
        assert_eq!(sink.appended(), 1, "the rest of the batch lands");
        let err = sink.last_error().expect("typed drop reason");
        assert!(err.to_string().contains("frame cap"), "{err}");

        // The sink (and its mutex) survive: later batches still journal.
        sink.record_batch(1, &[fv], &[], &[selection]);
        assert_eq!(sink.appended(), 2);
        let scan = read_segment(&segment_path(&dir, 0)).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_every_flush_writes_the_same_bytes() {
        // The opt-in fsync changes when bytes become durable, never what
        // is written: both modes must produce byte-identical segments.
        let write_all = |tag: &str, sync: bool| {
            let dir = tmp(tag);
            let mut w = JournalWriter::open(
                &dir,
                JournalOptions {
                    segment_max_records: 3,
                    sync_every_flush: sync,
                },
            )
            .unwrap();
            for i in 0..7 {
                w.append(record(0, i as f64)).unwrap();
            }
            assert_eq!(w.durable(), 7);
            let bytes: Vec<Vec<u8>> = list_segments(&dir)
                .unwrap()
                .iter()
                .map(|s| std::fs::read(s).unwrap())
                .collect();
            std::fs::remove_dir_all(&dir).ok();
            bytes
        };
        assert_eq!(write_all("sync-on", true), write_all("sync-off", false));
    }

    #[test]
    fn foreign_files_in_the_journal_dir_are_ignored() {
        let dir = tmp("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "not a segment").unwrap();
        std::fs::write(dir.join("journal-xx.seg"), "bad index").unwrap();
        let mut w = JournalWriter::open(&dir, JournalOptions::default()).unwrap();
        w.append(record(0, 1.0)).unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
