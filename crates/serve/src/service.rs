//! The online selector serving runtime.
//!
//! A [`SelectorService`] owns a loaded [`ModelArtifact`] and answers
//! selection requests: extract (only) the production classifier's feature
//! subset, classify, and return the landmark to run — batched across the
//! work-stealing executor for throughput, with results independent of the
//! worker count.
//!
//! Production input distributions drift away from the training corpus
//! (Lesoil et al.), so the service also carries a **drift monitor**: each
//! probed request's full feature vector is normalized with the artifact's
//! training normalizer and measured against the training cluster
//! centroids. An input farther than `radius_factor ×` the cluster's
//! training radius from *every* centroid counts as out-of-distribution;
//! when the OOD fraction exceeds `drift_threshold` (after a minimum
//! observation count), the service switches to the artifact's safe
//! **fallback landmark** — the paper's conservative configuration — until
//! the monitor is reset. Fallback state changes take effect at request /
//! batch boundaries, so batch results stay deterministic at any worker
//! count.

use crate::artifact::ModelArtifact;
use crate::monitor::DriftMonitor;
use intune_core::{Benchmark, Configuration, ExecutionReport, FeatureSet, Result};
use intune_exec::Executor;
use intune_learning::selection::samples_for;
use intune_learning::CompiledClassifier;
use intune_obs::{EventKind, EventLog};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tunables of the serving runtime.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads for batched selection (clamped to ≥ 1).
    pub threads: usize,
    /// Drift probe cadence: the full feature vector (needed for the
    /// centroid distance) is extracted for every `probe_every`-th request
    /// of a batch; selection itself always pays only the classifier's
    /// subset. `1` probes everything (deterministic counters for benches).
    pub probe_every: usize,
    /// An input is out-of-distribution when its distance to every
    /// centroid exceeds `radius_factor ×` that cluster's training radius.
    pub radius_factor: f64,
    /// OOD fraction (among probed requests) beyond which the fallback
    /// policy engages.
    pub drift_threshold: f64,
    /// Minimum probed requests before the fallback policy may engage.
    pub min_observations: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            probe_every: 1,
            radius_factor: 1.5,
            drift_threshold: 0.5,
            min_observations: 32,
        }
    }
}

/// One answered selection request. Serializable: selections travel over
/// the daemon's wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Index of the chosen landmark in the artifact's landmark list.
    pub landmark: usize,
    /// Feature-extraction cost actually paid by the classifier.
    pub extraction_cost: f64,
    /// Whether the drift probe flagged this input as out-of-distribution
    /// (`false` for unprobed requests).
    pub out_of_distribution: bool,
    /// Whether the fallback policy overrode the classifier's choice.
    pub fell_back: bool,
}

/// Monotone counters of a serving runtime ([`SelectorService`] or
/// [`crate::VectorService`]). Serializable: the daemon reports them over
/// the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Selection requests answered.
    pub requests: u64,
    /// Requests whose drift probe ran.
    pub probed: u64,
    /// Probed requests flagged out-of-distribution.
    pub ood: u64,
    /// Requests answered with the fallback landmark.
    pub fallbacks: u64,
    /// Batches dispatched through the executor.
    pub batches: u64,
    /// Largest batch seen.
    pub max_batch: u64,
}

impl ServeStats {
    /// OOD fraction among probed requests (0 when nothing probed).
    pub fn drift_fraction(&self) -> f64 {
        intune_exec::hit_rate(self.ood, self.probed)
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} batches, max {}), {}/{} probed OOD ({:.1}%), {} fallbacks",
            self.requests,
            self.batches,
            self.max_batch,
            self.ood,
            self.probed,
            100.0 * self.drift_fraction(),
            self.fallbacks
        )
    }
}

/// The serving runtime: a validated artifact bound to its benchmark.
///
/// Shared-state design: the artifact is immutable after construction and
/// all counters are atomics, so `&self` methods are safe to call from
/// multiple threads; batch dispatch additionally fans out over the
/// work-stealing executor.
#[derive(Debug)]
pub struct SelectorService<'b, B: Benchmark> {
    benchmark: &'b B,
    artifact: ModelArtifact,
    /// The production classifier compiled for inference (flattened tree),
    /// plus its feature subset — both fixed at construction.
    compiled: CompiledClassifier,
    set: FeatureSet,
    executor: Executor,
    opts: ServeOptions,
    monitor: DriftMonitor,
    /// Optional lifecycle event log: drift trips and fallback
    /// recoveries are journaled as they happen.
    events: Option<Arc<EventLog>>,
}

impl<'b, B: Benchmark> SelectorService<'b, B> {
    /// Builds a service from a loaded artifact, validating it against the
    /// benchmark first.
    ///
    /// # Errors
    /// Returns [`intune_core::Error::Artifact`] when the artifact does
    /// not fit the benchmark.
    pub fn new(benchmark: &'b B, artifact: ModelArtifact, opts: ServeOptions) -> Result<Self> {
        artifact.validate(benchmark)?;
        let monitor = DriftMonitor::new(&artifact, &opts);
        let compiled = CompiledClassifier::compile(artifact.classifier.clone());
        let set = compiled.feature_set();
        Ok(SelectorService {
            benchmark,
            artifact,
            compiled,
            set,
            executor: Executor::new(opts.threads),
            opts,
            monitor,
            events: None,
        })
    }

    /// Attaches (or detaches) a lifecycle event log. The service emits
    /// `DriftTripped` when its monitor engages fallback and
    /// `FallbackCleared` when it recovers — best-effort, observation
    /// only, off the hot path except for one state comparison.
    pub fn set_events(&mut self, events: Option<Arc<EventLog>>) {
        self.events = events;
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The landmark configurations being dispatched to.
    pub fn landmarks(&self) -> &[Configuration] {
        &self.artifact.landmarks
    }

    /// Whether the fallback policy is currently engaged.
    pub fn fallback_active(&self) -> bool {
        self.monitor.fallback_active()
    }

    /// The current out-of-distribution fraction among probed requests —
    /// the quantity the fallback policy compares against its threshold.
    /// Cheap (two atomic loads), so drift watchers (the retrain
    /// controller, tests) need not diff [`SelectorService::stats`]
    /// snapshots.
    pub fn trip_rate(&self) -> f64 {
        self.monitor.trip_rate()
    }

    /// Resets the drift monitor (e.g. after retraining was scheduled or
    /// the input shift was acknowledged); request counters keep
    /// counting. An engaged fallback clearing through reset is
    /// journaled like a recovery.
    pub fn reset_drift(&self) {
        let was = self.monitor.fallback_active();
        self.monitor.reset();
        if was {
            if let Some(events) = &self.events {
                events.record(
                    &self.artifact.benchmark,
                    self.artifact.revision,
                    EventKind::FallbackCleared { trip_rate: 0.0 },
                );
            }
        }
    }

    /// Journals a fallback-state transition (entry snapshot `was` vs the
    /// post-record state). One branch when no event log is attached;
    /// both events carry the monitor's counters at the transition.
    fn note_fallback_transition(&self, was: bool) {
        let Some(events) = &self.events else { return };
        let now = self.monitor.fallback_active();
        if now == was {
            return;
        }
        let stats = self.monitor.stats();
        let kind = if now {
            EventKind::DriftTripped {
                probed: stats.probed,
                ood: stats.ood,
                trip_rate: self.monitor.trip_rate(),
            }
        } else {
            EventKind::FallbackCleared {
                trip_rate: self.monitor.trip_rate(),
            }
        };
        events.record(&self.artifact.benchmark, self.artifact.revision, kind);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.monitor.stats()
    }

    /// Classifies one input under the drift state observed at entry,
    /// returning the selection and the probe outcome without touching
    /// counters (the deterministic core of both entry points).
    fn classify(&self, input: &B::Input, probe: bool, fall_back: bool) -> Selection {
        let (landmark, extraction_cost, out_of_distribution) = if probe {
            // A probed request needs the full feature vector anyway (for
            // the centroid distance), so extract once and feed both the
            // classifier (its subset, via `samples_for`) and the probe —
            // instead of a lazy subset extraction *plus* a full one. The
            // reported cost stays the subset's: the probe is monitoring
            // overhead, not part of the classifier's decision cost.
            let fv = self.benchmark.extract_all(input);
            let samples = samples_for(&fv, &self.set);
            let (landmark, cost) = self.compiled.classify_costed(&samples);
            let z = self.artifact.normalizer.transform(&fv.dense());
            (landmark, cost, self.monitor.is_ood(&self.artifact, &z))
        } else {
            let (landmark, cost) = self
                .compiled
                .classify_lazy(|property, level| self.benchmark.extract(property, level, input));
            (landmark, cost, false)
        };
        if fall_back {
            Selection {
                landmark: self.artifact.fallback,
                extraction_cost,
                out_of_distribution,
                fell_back: true,
            }
        } else {
            Selection {
                landmark,
                extraction_cost,
                out_of_distribution,
                fell_back: false,
            }
        }
    }

    /// Answers one selection request, updating the drift monitor.
    pub fn select(&self, input: &B::Input) -> Selection {
        let fall_back = self.fallback_active();
        let selection = self.classify(input, true, fall_back);
        self.monitor
            .record_single(true, selection.out_of_distribution, selection.fell_back);
        self.note_fallback_transition(fall_back);
        selection
    }

    /// Answers a batch of selection requests, fanned out over the
    /// work-stealing executor. The drift/fallback state is snapshotted at
    /// batch entry and counter updates are merged at batch exit, so the
    /// returned selections are identical at any worker count; a drift
    /// trip engages fallback from the *next* batch on.
    pub fn select_batch(&self, inputs: &[B::Input]) -> Vec<Selection>
    where
        B: Sync,
        B::Input: Sync,
    {
        let fall_back = self.fallback_active();
        let probe_every = self.opts.probe_every.max(1);
        let jobs: Vec<usize> = (0..inputs.len()).collect();
        let outcome = self.executor.run(jobs, |_, i| {
            self.classify(&inputs[i], i % probe_every == 0, fall_back)
        });
        let selections = outcome.results;

        let probed = (0..inputs.len()).filter(|i| i % probe_every == 0).count() as u64;
        let ood = selections.iter().filter(|s| s.out_of_distribution).count() as u64;
        let fallbacks = if fall_back {
            selections.len() as u64
        } else {
            0
        };
        self.monitor
            .record_batch(selections.len() as u64, probed, ood, fallbacks);
        self.note_fallback_transition(fall_back);
        selections
    }

    /// Classifies and executes: runs the selected landmark on the input.
    pub fn run(&self, input: &B::Input) -> (ExecutionReport, Selection) {
        let selection = self.select(input);
        (
            self.benchmark
                .run(&self.artifact.landmarks[selection.landmark], input),
            selection,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{synthetic_corpus, train_synthetic, Synthetic};

    fn service(opts: ServeOptions) -> SelectorService<'static, Synthetic> {
        let artifact = ModelArtifact::export(&Synthetic, &train_synthetic());
        SelectorService::new(&Synthetic, artifact, opts).unwrap()
    }

    #[test]
    fn batched_selection_matches_sequential_at_any_width() {
        let fresh = synthetic_corpus(64, 21);
        let serial = service(ServeOptions::default());
        let expected: Vec<Selection> = fresh.iter().map(|i| serial.select(i)).collect();
        for threads in [1, 4] {
            let svc = service(ServeOptions {
                threads,
                ..ServeOptions::default()
            });
            let got = svc.select_batch(&fresh);
            assert_eq!(got, expected, "{threads} threads");
            assert_eq!(svc.stats().requests, 64);
            assert_eq!(svc.stats().batches, 1);
            assert_eq!(svc.stats().max_batch, 64);
        }
    }

    #[test]
    fn in_distribution_inputs_do_not_trip_the_monitor() {
        let svc = service(ServeOptions {
            min_observations: 8,
            ..ServeOptions::default()
        });
        // Same generator family as training: everything in distribution.
        svc.select_batch(&synthetic_corpus(64, 33));
        let stats = svc.stats();
        assert_eq!(stats.ood, 0, "{stats}");
        assert!(!svc.fallback_active());
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn drift_trips_fallback_at_the_next_batch() {
        // A negative radius bound forces every input OOD (distances are
        // ≥ 0) — a synthetic drift storm.
        let svc = service(ServeOptions {
            radius_factor: -1.0,
            min_observations: 8,
            drift_threshold: 0.5,
            ..ServeOptions::default()
        });
        let inputs = synthetic_corpus(16, 5);
        let first = svc.select_batch(&inputs);
        assert!(first.iter().all(|s| s.out_of_distribution));
        assert!(
            first.iter().all(|s| !s.fell_back),
            "fallback engages at batch boundaries, not mid-batch"
        );
        assert!(svc.fallback_active());
        let second = svc.select_batch(&inputs);
        assert!(second.iter().all(|s| s.fell_back));
        assert!(second.iter().all(|s| s.landmark == svc.artifact().fallback));
        assert_eq!(svc.stats().fallbacks, 16);

        svc.reset_drift();
        assert!(!svc.fallback_active());
        let third = svc.select_batch(&inputs);
        assert!(third.iter().all(|s| !s.fell_back), "monitor was reset");
    }

    #[test]
    fn drift_fraction_exactly_at_threshold_keeps_fallback_off() {
        // radius_factor = -1 makes every probe OOD, so the observed
        // fraction is exactly 1.0. With the threshold also at 1.0 the
        // comparison is strict: at-threshold drift must NOT trip.
        let at = service(ServeOptions {
            radius_factor: -1.0,
            drift_threshold: 1.0,
            min_observations: 8,
            ..ServeOptions::default()
        });
        at.select_batch(&synthetic_corpus(16, 5));
        assert_eq!(at.stats().drift_fraction(), 1.0);
        assert!(!at.fallback_active(), "at-threshold fraction must not trip");

        // The same fraction one notch above the threshold does trip.
        let above = service(ServeOptions {
            radius_factor: -1.0,
            drift_threshold: 1.0 - 1e-9,
            min_observations: 8,
            ..ServeOptions::default()
        });
        above.select_batch(&synthetic_corpus(16, 5));
        assert!(above.fallback_active());
    }

    #[test]
    fn empty_batch_leaves_the_drift_state_untouched() {
        let svc = service(ServeOptions {
            min_observations: 1,
            ..ServeOptions::default()
        });
        let got = svc.select_batch(&[]);
        assert!(got.is_empty());
        let stats = svc.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.probed, 0);
        assert_eq!(stats.ood, 0);
        assert_eq!(stats.batches, 1, "the dispatch itself is recorded");
        assert_eq!(stats.max_batch, 0);
        assert!(!svc.fallback_active());
        assert_eq!(stats.drift_fraction(), 0.0, "0/0 probes is zero drift");
    }

    #[test]
    fn monitor_rearms_after_reset_and_can_trip_again() {
        let svc = service(ServeOptions {
            radius_factor: -1.0,
            min_observations: 8,
            drift_threshold: 0.5,
            ..ServeOptions::default()
        });
        let inputs = synthetic_corpus(16, 5);
        svc.select_batch(&inputs);
        assert!(svc.fallback_active(), "first storm trips");
        svc.reset_drift();
        assert!(!svc.fallback_active(), "reset disarms");
        svc.select_batch(&inputs);
        assert!(
            !svc.select_batch(&inputs).iter().any(|s| !s.fell_back),
            "second storm re-trips: the post-storm batch falls back again"
        );
        assert!(svc.fallback_active(), "monitor re-armed after reset");
    }

    #[test]
    fn fallback_needs_minimum_observations() {
        let svc = service(ServeOptions {
            radius_factor: -1.0,
            min_observations: 1000,
            ..ServeOptions::default()
        });
        svc.select_batch(&synthetic_corpus(16, 5));
        assert!(
            !svc.fallback_active(),
            "16 probes are below the 1000-observation floor"
        );
    }

    #[test]
    fn probe_cadence_limits_probed_count() {
        let svc = service(ServeOptions {
            probe_every: 4,
            ..ServeOptions::default()
        });
        svc.select_batch(&synthetic_corpus(16, 5));
        assert_eq!(svc.stats().probed, 4);
    }

    #[test]
    fn run_executes_the_selected_landmark() {
        let svc = service(ServeOptions::default());
        let input = synthetic_corpus(1, 2)[0];
        let (report, selection) = svc.run(&input);
        assert_eq!(
            report,
            Synthetic.run(&svc.landmarks()[selection.landmark], &input)
        );
    }

    #[test]
    fn selections_track_the_trained_classifier() {
        // The synthetic problem is perfectly classifiable: the service
        // must route nearly every input to a landmark matching its kind.
        let svc = service(ServeOptions::default());
        let fresh = synthetic_corpus(30, 13);
        let correct = svc
            .select_batch(&fresh)
            .iter()
            .zip(&fresh)
            .filter(|(s, input)| svc.landmarks()[s.landmark].choice(0) == input.0)
            .count();
        assert!(correct >= 28, "only {correct}/30 routed correctly");
    }
}
