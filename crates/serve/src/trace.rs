//! The serving runtime's trace hook: every answered selection can be
//! observed by a caller-supplied sink.
//!
//! Continuous learning starts with observation: a model can only be
//! retrained on the traffic it actually saw. A [`TraceSink`] attached to a
//! [`VectorService`](crate::VectorService) receives, per answered batch,
//! the served feature vectors, optional opaque raw-input payloads (what a
//! client shipped alongside its vectors for exactly this purpose), and
//! the selections — landmark, drift-probe outcome, fallback flag. The
//! canonical sink is the request journal
//! ([`JournalSink`](crate::journal::JournalSink)); tests and benches plug
//! in counters.
//!
//! Sinks are observation-only by contract: they must not fail the serving
//! path (the trait is infallible — a sink that cannot persist buffers the
//! error internally) and are called *after* the selections and drift
//! counters are final, so tracing can never change an answer.

use crate::service::Selection;
use intune_core::FeatureVector;
use serde_json::Value;

/// Observer of served selections (see the module docs for the contract).
pub trait TraceSink: Send + Sync {
    /// Called once per answered request/batch with parallel slices:
    /// `selections[i]` answered `features[i]`. `payloads` is either empty
    /// (the caller had no raw inputs to attach) or parallel too, with
    /// `Value::Null` marking vectors that arrived without a payload.
    /// `revision` is the rollout revision of the artifact that answered.
    fn record_batch(
        &self,
        revision: u64,
        features: &[FeatureVector],
        payloads: &[Value],
        selections: &[Selection],
    );

    /// [`TraceSink::record_batch`] plus the request's trace id, when the
    /// batch arrived inside a sampled trace. The default forwards to
    /// `record_batch`, so sinks that do not care about tracing (tests,
    /// counters) implement nothing; the journal overrides it to stamp
    /// the id onto every record — that is how a retrain cycle can later
    /// name the traces whose inputs it consumed.
    fn record_batch_traced(
        &self,
        revision: u64,
        features: &[FeatureVector],
        payloads: &[Value],
        selections: &[Selection],
        trace_id: Option<u64>,
    ) {
        let _ = trace_id;
        self.record_batch(revision, features, payloads, selections);
    }

    /// Total records this sink has durably recorded (0 for sinks that do
    /// not count). Surfaces in daemon `Stats` as `journaled`.
    fn appended(&self) -> u64 {
        0
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A sink that counts and remembers what it saw.
    #[derive(Debug, Default)]
    pub struct CountingSink {
        pub records: AtomicU64,
        pub batches: AtomicU64,
        pub seen: Mutex<Vec<(u64, usize, usize)>>,
    }

    impl TraceSink for CountingSink {
        fn record_batch(
            &self,
            revision: u64,
            features: &[FeatureVector],
            payloads: &[Value],
            selections: &[Selection],
        ) {
            assert_eq!(features.len(), selections.len());
            assert!(payloads.is_empty() || payloads.len() == features.len());
            self.records
                .fetch_add(features.len() as u64, Ordering::AcqRel);
            self.batches.fetch_add(1, Ordering::AcqRel);
            self.seen
                .lock()
                .unwrap()
                .push((revision, features.len(), payloads.len()));
        }

        fn appended(&self) -> u64 {
            self.records.load(Ordering::Acquire)
        }
    }
}
