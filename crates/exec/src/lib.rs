//! # intune-exec
//!
//! The unified measurement engine: every `(input, configuration)` cost
//! measurement in the workspace flows through one deterministic,
//! work-stealing, memoizing executor.
//!
//! The two-level pipeline of the paper is dominated by repeated benchmark
//! measurements — landmark autotuning, the landmark × input `PerfMatrix`,
//! oracle baselines, and deployment evaluation all probe the same space of
//! cells. This crate centralizes that budget:
//!
//! * [`MeasurementPlan`] — an ordered, *deduplicated* set of cells; two
//!   landmarks that converged to the same configuration schedule one row.
//! * [`CostCache`] — exact memoization per corpus with hit/miss
//!   accounting; a cell measured during landmark tuning is never re-run
//!   when filling the `PerfMatrix` or the oracle baselines.
//! * [`Executor`] — a work-stealing deque pool (seeded worker deques + a
//!   shared injector, idle workers batch-refill then steal) whose indexed
//!   results are bit-identical at any worker count.
//! * [`Engine`] — plans in, reports out: serial cache resolution, pooled
//!   execution of misses, typed [`intune_core::Error::Measurement`] errors
//!   instead of process aborts, and an [`EngineStats`] report (cells
//!   measured, cache hits, steal counts).
//!
//! ## Example
//!
//! ```
//! use intune_exec::{CostCache, Engine, MeasurementPlan};
//! use intune_core::{Benchmark, ConfigSpace, Configuration, ExecutionReport,
//!                   FeatureDef, FeatureSample};
//!
//! struct Square;
//! impl Benchmark for Square {
//!     type Input = f64;
//!     fn name(&self) -> &str { "square" }
//!     fn space(&self) -> ConfigSpace { ConfigSpace::builder().switch("alg", 2).build() }
//!     fn run(&self, cfg: &Configuration, x: &f64) -> ExecutionReport {
//!         ExecutionReport::of_cost(x * x + cfg.choice(0) as f64)
//!     }
//!     fn properties(&self) -> Vec<FeatureDef> { vec![FeatureDef::new("x", 1)] }
//!     fn extract(&self, _: usize, _: usize, x: &f64) -> FeatureSample {
//!         FeatureSample::new(*x, 1.0)
//!     }
//! }
//!
//! let inputs = vec![1.0, 2.0, 3.0];
//! let cfg = Square.space().default_config();
//! let engine = Engine::new(4);
//! let mut cache = CostCache::new();
//! let mut plan = MeasurementPlan::new();
//! for i in 0..inputs.len() { plan.add(i, &cfg); }
//! let reports = engine.measure_plan(&Square, &inputs, &plan, &mut cache).unwrap();
//! assert_eq!(reports[2].cost, 9.0);
//! // Resubmitting is free: all three cells come from the cache.
//! engine.measure_plan(&Square, &inputs, &plan, &mut cache).unwrap();
//! assert_eq!(engine.stats().cache_hits, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod env;
pub mod executor;
pub mod plan;

pub use cache::{hit_rate, CacheStats, ConfigKey, CostCache, CACHE_SCHEMA, CACHE_VERSION};
pub use engine::{Engine, EngineStats};
pub use env::{
    cache_dir_from_env, cache_dir_from_env_or_exit, threads_from_env, threads_from_env_or_exit,
    CACHE_DIR_ENV, THREADS_ENV,
};
pub use executor::{ExecOutcome, Executor};
pub use plan::{Cell, MeasurementPlan};
