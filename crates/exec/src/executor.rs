//! The deterministic work-stealing executor.
//!
//! Jobs are indexed; results are returned in job order no matter which
//! worker ran them or in what sequence, so any pure job function yields
//! bit-identical output at every worker count. The pool is built on the
//! `crossbeam::deque` surface: each worker owns a FIFO deque seeded
//! round-robin with an initial share of the jobs, the remainder waits in a
//! shared [`Injector`], and idle workers first refill from the injector in
//! batches, then steal from siblings.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicU64, Ordering};

/// Executor outcome: per-job results in job order plus scheduler counters.
#[derive(Debug)]
pub struct ExecOutcome<O> {
    /// `results[i]` is the output of job `i`.
    pub results: Vec<O>,
    /// Successful steals (injector batch refills + sibling steals).
    pub steals: u64,
}

/// A fixed-width work-stealing thread pool for independent jobs.
///
/// Workers are scoped threads spawned per [`Executor::run`] call and
/// joined before it returns — a deliberate trade-off: measurement cells
/// are coarse (whole benchmark executions), plans are few per experiment,
/// and scoped workers may borrow the caller's benchmark and inputs without
/// `Arc`/`'static` gymnastics. If plan granularity ever drops to
/// per-EA-generation batches, revisit with a parked persistent pool.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

/// How many jobs are seeded directly into each worker's deque before the
/// rest go to the shared injector. Small enough that skewed jobs leave
/// stealable work, large enough that workers start without contention.
const SEED_JOBS_PER_WORKER: usize = 4;

impl Executor {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every job. `f(i, job)` receives the job's index; the
    /// returned results are ordered by that index. Panics in `f` propagate
    /// to the caller (the engine layer converts benchmark panics into
    /// typed errors *inside* `f`, so its jobs never panic).
    pub fn run<I, O, F>(&self, jobs: Vec<I>, f: F) -> ExecOutcome<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        if self.threads == 1 || jobs.len() <= 1 {
            return ExecOutcome {
                results: jobs.into_iter().enumerate().map(|(i, j)| f(i, j)).collect(),
                steals: 0,
            };
        }

        let n = jobs.len();
        let workers: Vec<Worker<(usize, I)>> =
            (0..self.threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<(usize, I)>> = workers.iter().map(|w| w.stealer()).collect();
        let injector: Injector<(usize, I)> = Injector::new();

        let seeded = (self.threads * SEED_JOBS_PER_WORKER).min(n);
        for (i, job) in jobs.into_iter().enumerate() {
            if i < seeded {
                workers[i % self.threads].push((i, job));
            } else {
                injector.push((i, job));
            }
        }

        let steals = AtomicU64::new(0);
        let mut collected: Vec<Vec<(usize, O)>> = Vec::with_capacity(self.threads);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .enumerate()
                .map(|(me, local)| {
                    let stealers = &stealers;
                    let injector = &injector;
                    let steals = &steals;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut out: Vec<(usize, O)> = Vec::new();
                        loop {
                            if let Some((i, job)) = local.pop() {
                                out.push((i, f(i, job)));
                                continue;
                            }
                            match find_work(me, &local, injector, stealers) {
                                Some((i, job)) => {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    out.push((i, f(i, job)));
                                }
                                None => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                collected.push(h.join().expect("executor worker panicked"));
            }
        })
        .expect("executor scope panicked");

        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (i, o) in collected.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "job {i} produced twice");
            slots[i] = Some(o);
        }
        ExecOutcome {
            results: slots
                .into_iter()
                .map(|s| s.expect("every job produces exactly one result"))
                .collect(),
            steals: steals.load(Ordering::Relaxed),
        }
    }
}

/// One round of work discovery for an idle worker: refill from the
/// injector first (batch), then try each sibling once, rotating the start
/// so thieves spread out. `None` means every queue was observed empty.
fn find_work<T>(
    me: usize,
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
) -> Option<T> {
    loop {
        let mut retry = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for off in 1..stealers.len() {
            let victim = (me + off) % stealers.len();
            match stealers[victim].steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let exec = Executor::new(4);
        let jobs: Vec<u64> = (0..257).collect();
        let out = exec.run(jobs, |i, j| {
            assert_eq!(i as u64, j);
            j * 2
        });
        assert_eq!(out.results, (0..257).map(|j| j * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn one_thread_matches_many_threads() {
        let job = |i: usize, j: u64| -> u64 { j.wrapping_mul(0x9e3779b9).rotate_left(i as u32) };
        let jobs: Vec<u64> = (0..500).map(|i| i * 31 + 7).collect();
        let serial = Executor::new(1).run(jobs.clone(), job);
        for threads in [2, 3, 8] {
            let parallel = Executor::new(threads).run(jobs.clone(), job);
            assert_eq!(serial.results, parallel.results, "{threads} threads");
        }
    }

    #[test]
    fn serial_path_reports_zero_steals() {
        let out = Executor::new(1).run(vec![1, 2, 3], |_, j| j);
        assert_eq!(out.steals, 0);
    }

    #[test]
    fn skewed_jobs_get_stolen() {
        // Worker 0's seeded jobs are heavy; everything else is trivial. The
        // other workers must drain the injector and/or steal.
        let exec = Executor::new(4);
        let jobs: Vec<u64> = (0..200).collect();
        let out = exec.run(jobs, |i, j| {
            if i % 4 == 0 {
                // Simulate a heavy cell with real work (deterministic).
                let mut acc = j;
                for k in 0..20_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                acc
            } else {
                j
            }
        });
        assert!(
            out.steals > 0,
            "expected nonzero steals on a skewed workload"
        );
        assert_eq!(out.results.len(), 200);
    }

    #[test]
    fn empty_and_singleton_job_lists() {
        let exec = Executor::new(8);
        let empty: Vec<u8> = vec![];
        assert!(exec.run(empty, |_, j: u8| j).results.is_empty());
        assert_eq!(exec.run(vec![9u8], |_, j| j).results, vec![9]);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
    }
}
