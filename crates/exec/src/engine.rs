//! The measurement engine: plans in, memoized deterministic reports out.

use crate::cache::{ConfigKey, CostCache};
pub use crate::env::THREADS_ENV;
use crate::executor::Executor;
use crate::plan::MeasurementPlan;
use intune_core::{Benchmark, BenchmarkExt, Configuration, Error, ExecutionReport, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of the engine's cumulative counters.
///
/// Everything except `steals` is deterministic for a given workload:
/// cache hits are resolved serially at submission time and deduplication
/// happens at plan construction, so only the scheduler's steal count
/// varies run to run. Keep `steals` out of reproducibility artifacts
/// (CSV); the rest is safe to emit anywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Plans submitted (a `measure_one` burst counts once per call).
    pub plans: u64,
    /// Cells requested across all plans, after plan-level deduplication.
    pub cells_requested: u64,
    /// Cells actually executed (requested − cache hits).
    pub cells_measured: u64,
    /// Cells answered from a [`CostCache`].
    pub cache_hits: u64,
    /// Duplicate submissions collapsed at plan construction, accounted on
    /// every submission of the plan (each submission would have re-requested
    /// those cells, so resubmitting a deduplicated plan counts them again).
    pub dedup_saved: u64,
    /// Successful steals inside the work-stealing pool (nondeterministic).
    pub steals: u64,
}

impl EngineStats {
    /// Cache hits as a fraction of requested cells (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        crate::cache::hit_rate(self.cache_hits, self.cells_requested)
    }

    /// Counter-wise difference `self − earlier` (for per-phase deltas).
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            plans: self.plans - earlier.plans,
            cells_requested: self.cells_requested - earlier.cells_requested,
            cells_measured: self.cells_measured - earlier.cells_measured,
            cache_hits: self.cache_hits - earlier.cache_hits,
            dedup_saved: self.dedup_saved - earlier.dedup_saved,
            steals: self.steals - earlier.steals,
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cells measured, {} cache hits ({:.1}% hit rate), {} deduped, {} steals",
            self.cells_measured,
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.dedup_saved,
            self.steals
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    plans: AtomicU64,
    cells_requested: AtomicU64,
    cells_measured: AtomicU64,
    cache_hits: AtomicU64,
    dedup_saved: AtomicU64,
    steals: AtomicU64,
}

/// The unified measurement engine: a work-stealing pool plus counters.
///
/// One engine is meant to be shared across an entire experiment (the eval
/// suite threads a single engine through all eight Table-1 cases); the
/// per-corpus memoization state lives in [`CostCache`] values owned by the
/// caller, so the engine itself is corpus-agnostic and cheap to share.
///
/// Determinism: results depend only on the benchmark, the plan, and the
/// cache contents — never on the worker count. Cache lookups happen
/// serially at submission, misses execute as independent indexed jobs, and
/// each cell carries a seed derived from its identity.
#[derive(Debug)]
pub struct Engine {
    executor: Executor,
    counters: Counters,
}

impl Engine {
    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Engine {
            executor: Executor::new(threads),
            counters: Counters::default(),
        }
    }

    /// A single-threaded engine (serial measurement).
    pub fn serial() -> Self {
        Engine::new(1)
    }

    /// Worker count from the `INTUNE_THREADS` environment variable, else
    /// the machine's available parallelism capped at 8. A variable set to
    /// garbage is a typed [`Error::Config`] — never a silent default.
    ///
    /// # Errors
    /// Returns [`Error::Config`] when `INTUNE_THREADS` is set but
    /// unusable (non-numeric, zero, non-UTF-8).
    pub fn try_from_env() -> Result<Self> {
        let threads = crate::env::threads_from_env()?.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(4)
                .min(8)
        });
        Ok(Engine::new(threads))
    }

    /// [`Engine::try_from_env`] for contexts without error plumbing.
    ///
    /// # Panics
    /// Panics (with the typed error's message) when `INTUNE_THREADS` is
    /// set to garbage.
    pub fn from_env() -> Self {
        Engine::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Engine::try_from_env`] for binaries: prints the typed error to
    /// stderr and exits with status 2 (the shared CLI convention for
    /// configuration garbage) instead of panicking with a backtrace.
    pub fn from_env_or_exit() -> Self {
        Engine::try_from_env().unwrap_or_else(|e| crate::env::exit_config(&e))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.executor.threads()
    }

    /// Cumulative counters since the engine was created.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            plans: self.counters.plans.load(Ordering::Relaxed),
            cells_requested: self.counters.cells_requested.load(Ordering::Relaxed),
            cells_measured: self.counters.cells_measured.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            dedup_saved: self.counters.dedup_saved.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
        }
    }

    /// Measures every cell of `plan` against `inputs`, answering cells
    /// already in `cache` from memory and memoizing fresh measurements.
    /// Returns reports in plan-cell order.
    ///
    /// The cache must belong to the same corpus as `inputs` — cells are
    /// keyed by input *index*.
    pub fn measure_plan<B: Benchmark + Sync>(
        &self,
        benchmark: &B,
        inputs: &[B::Input],
        plan: &MeasurementPlan,
        cache: &mut CostCache,
    ) -> Result<Vec<ExecutionReport>>
    where
        B::Input: Sync,
    {
        self.counters.plans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .cells_requested
            .fetch_add(plan.len() as u64, Ordering::Relaxed);
        self.counters
            .dedup_saved
            .fetch_add(plan.dedup_saved() as u64, Ordering::Relaxed);

        // Resolve cache hits serially so hit accounting (and therefore
        // every downstream artifact) is independent of the worker count.
        let mut results: Vec<Option<ExecutionReport>> = Vec::with_capacity(plan.len());
        let mut misses: Vec<usize> = Vec::new();
        for (id, cell) in plan.cells().iter().enumerate() {
            if cell.input >= inputs.len() {
                return Err(Error::Measurement {
                    input: cell.input,
                    detail: format!("input index out of range (corpus has {})", inputs.len()),
                });
            }
            match cache.lookup(cell.input, &cell.key) {
                Some(report) => results.push(Some(report)),
                None => {
                    results.push(None);
                    misses.push(id);
                }
            }
        }
        self.counters
            .cache_hits
            .fetch_add((plan.len() - misses.len()) as u64, Ordering::Relaxed);

        // Execute the misses. One code path at every worker count (the
        // executor runs 1-thread job lists on the caller's thread): after
        // the first failure, not-yet-started cells are skipped, so a
        // failing plan neither wastes the remaining budget nor reaches the
        // cache — at one worker this is exactly the serial early-stop.
        // `cells_measured` counts per completed execution. When several
        // cells fail, which failure is reported may vary with scheduling;
        // successful plans are bit-identical at any worker count.
        let cells = plan.cells();
        let abort = std::sync::atomic::AtomicBool::new(false);
        let outcome = self.executor.run(misses.clone(), |_, id| {
            if abort.load(Ordering::Relaxed) {
                return None; // skipped: an earlier cell already failed
            }
            let cell = &cells[id];
            self.counters.cells_measured.fetch_add(1, Ordering::Relaxed);
            let measured =
                benchmark.run_cell(&cell.config, cell.input, &inputs[cell.input], cell.seed);
            if measured.is_err() {
                abort.store(true, Ordering::Relaxed);
            }
            Some(measured)
        });
        self.counters
            .steals
            .fetch_add(outcome.steals, Ordering::Relaxed);

        // Propagate the first observed failure (skipped cells carry no
        // report) *before* memoizing anything, so a failed plan leaves the
        // cache exactly as it found it.
        if let Some(err) = outcome
            .results
            .iter()
            .find_map(|r| r.as_ref().and_then(|m| m.as_ref().err()))
        {
            return Err(err.clone());
        }
        for (&id, measured) in misses.iter().zip(outcome.results) {
            let report = measured
                .expect("no cell was skipped on a successful plan")
                .expect("errors were propagated above");
            let cell = &cells[id];
            cache.insert(cell.input, cell.key.clone(), report);
            results[id] = Some(report);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every plan cell resolved"))
            .collect())
    }

    /// Measures `configs × inputs` (the landmark matrix), returning one row
    /// of reports per configuration. Duplicate configurations are measured
    /// once and their rows share the cached results.
    pub fn measure_matrix<B: Benchmark + Sync>(
        &self,
        benchmark: &B,
        configs: &[Configuration],
        inputs: &[B::Input],
        cache: &mut CostCache,
    ) -> Result<Vec<Vec<ExecutionReport>>>
    where
        B::Input: Sync,
    {
        // Capture the cell id of each (row, column) while building the
        // plan: duplicate configurations collapse onto the same ids, and
        // the rows are reassembled from those ids after one submission.
        let mut plan = MeasurementPlan::new();
        let ids: Vec<Vec<usize>> = configs
            .iter()
            .map(|cfg| (0..inputs.len()).map(|i| plan.add(i, cfg)).collect())
            .collect();
        let flat = self.measure_plan(benchmark, inputs, &plan, cache)?;
        Ok(ids
            .into_iter()
            .map(|row| row.into_iter().map(|id| flat[id]).collect())
            .collect())
    }

    /// Cache-aware single-cell measurement, run on the caller's thread.
    /// This is the entry point for sequential searchers (the evolutionary
    /// autotuner's objective evaluations), which still want memoization
    /// and engine accounting but no fan-out. The cell seed is derived from
    /// the cell's identity exactly as a plan would derive it, so reports
    /// memoized here are interchangeable with plan-measured ones.
    pub fn measure_one<B: Benchmark>(
        &self,
        benchmark: &B,
        input_idx: usize,
        input: &B::Input,
        config: &Configuration,
        cache: &mut CostCache,
    ) -> Result<ExecutionReport> {
        self.counters.plans.fetch_add(1, Ordering::Relaxed);
        self.counters
            .cells_requested
            .fetch_add(1, Ordering::Relaxed);
        let key = ConfigKey::of(config);
        if let Some(report) = cache.lookup(input_idx, &key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(report);
        }
        self.counters.cells_measured.fetch_add(1, Ordering::Relaxed);
        let seed = crate::plan::derive_seed(input_idx, key.fingerprint());
        let report = benchmark.run_cell(config, input_idx, input, seed)?;
        cache.insert(input_idx, key, report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{ConfigSpace, FeatureDef, FeatureSample};

    struct Toy;

    impl Benchmark for Toy {
        type Input = f64;

        fn name(&self) -> &str {
            "toy"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder().switch("alg", 3).build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            assert!(input.is_finite(), "non-finite toy input");
            ExecutionReport::of_cost(input * (1.0 + cfg.choice(0) as f64))
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("x", 1)]
        }

        fn extract(&self, _p: usize, _l: usize, input: &Self::Input) -> FeatureSample {
            FeatureSample::new(*input, 1.0)
        }
    }

    fn configs() -> Vec<Configuration> {
        let space = Toy.space();
        (0..3)
            .map(|c| {
                let mut cfg = space.default_config();
                cfg.set(0, intune_core::ParamValue::Choice(c));
                cfg
            })
            .collect()
    }

    #[test]
    fn matrix_rows_match_direct_runs() {
        let b = Toy;
        let inputs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let configs = configs();
        let engine = Engine::new(4);
        let mut cache = CostCache::new();
        let rows = engine
            .measure_matrix(&b, &configs, &inputs, &mut cache)
            .unwrap();
        for (l, cfg) in configs.iter().enumerate() {
            for (i, input) in inputs.iter().enumerate() {
                assert_eq!(rows[l][i], b.run(cfg, input), "cell ({l}, {i})");
            }
        }
    }

    #[test]
    fn warm_cache_answers_without_rerunning() {
        let b = Toy;
        let inputs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let configs = configs();
        let engine = Engine::serial();
        let mut cache = CostCache::new();
        engine
            .measure_matrix(&b, &configs, &inputs, &mut cache)
            .unwrap();
        let cold = engine.stats();
        assert_eq!(cold.cells_measured, 30);
        assert_eq!(cold.cache_hits, 0);

        engine
            .measure_matrix(&b, &configs, &inputs, &mut cache)
            .unwrap();
        let warm = engine.stats().since(&cold);
        assert_eq!(warm.cells_measured, 0);
        assert_eq!(warm.cache_hits, 30);
        assert_eq!(warm.hit_rate(), 1.0);
    }

    #[test]
    fn measure_one_feeds_the_same_cache_as_plans() {
        let b = Toy;
        let inputs = vec![2.0, 4.0];
        let configs = configs();
        let engine = Engine::serial();
        let mut cache = CostCache::new();
        // An "autotuner" probes config 1 on input 0...
        engine
            .measure_one(&b, 0, &inputs[0], &configs[1], &mut cache)
            .unwrap();
        // ...so the matrix fill re-measures everything except that cell.
        engine
            .measure_matrix(&b, &configs, &inputs, &mut cache)
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cells_measured, 6);
    }

    #[test]
    fn duplicate_configs_share_measurements() {
        let b = Toy;
        let inputs: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let mut configs = configs();
        configs.push(configs[0].clone()); // duplicate landmark
        let engine = Engine::serial();
        let mut cache = CostCache::new();
        let rows = engine
            .measure_matrix(&b, &configs, &inputs, &mut cache)
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], rows[3]);
        assert_eq!(engine.stats().cells_measured, 15); // 3 distinct × 5
        assert_eq!(engine.stats().dedup_saved, 5);
    }

    #[test]
    fn panicking_cell_surfaces_as_typed_error() {
        let b = Toy;
        let inputs = vec![1.0, f64::NAN];
        let configs = configs();
        for threads in [1, 4] {
            let engine = Engine::new(threads);
            let mut cache = CostCache::new();
            let err = engine
                .measure_matrix(&b, &configs, &inputs, &mut cache)
                .unwrap_err();
            assert!(
                matches!(err, Error::Measurement { input: 1, .. }),
                "{threads} threads: {err:?}"
            );
        }
    }

    #[test]
    fn out_of_range_input_is_rejected_up_front() {
        let b = Toy;
        let mut plan = MeasurementPlan::new();
        plan.add(7, &configs()[0]);
        let engine = Engine::serial();
        let mut cache = CostCache::new();
        let err = engine
            .measure_plan(&b, &[1.0], &plan, &mut cache)
            .unwrap_err();
        assert!(matches!(err, Error::Measurement { input: 7, .. }));
    }

    #[test]
    fn from_env_honors_intune_threads_and_rejects_garbage() {
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Engine::from_env().threads(), 3);
        // Garbage no longer degrades silently: typed Error::Config.
        for bad in ["not-a-number", "0", " "] {
            std::env::set_var(THREADS_ENV, bad);
            let err = Engine::try_from_env().unwrap_err();
            assert!(
                matches!(&err, Error::Config { var, .. } if var == THREADS_ENV),
                "{bad:?}: {err:?}"
            );
        }
        std::env::remove_var(THREADS_ENV);
        assert!(
            Engine::try_from_env().unwrap().threads() >= 1,
            "unset = default"
        );
    }
}
