//! Memoized `(input, configuration) → ExecutionReport` cost cache.
//!
//! Every layer of the two-level pipeline re-measures the same cells: the
//! landmark autotuner evaluates configurations on a representative input,
//! the `PerfMatrix` then re-runs the winning configurations on *all*
//! inputs (including that representative), the oracle baselines re-use the
//! matrix, and deployment evaluation measures landmarks again on a test
//! corpus. [`CostCache`] makes the measurement a reusable budget: a cell
//! measured once is never run again within the same corpus.
//!
//! Keys are exact: [`ConfigKey`] canonicalizes a [`Configuration`] by value
//! (floats by bit pattern), so two configurations hash equal iff the
//! benchmark would be handed identical parameter values. A cache is scoped
//! to one input corpus — input indices from different corpora must not
//! share a cache (the engine's callers create one cache per corpus).

use intune_core::{codec, Configuration, Error, ExecutionReport, ParamValue, Result};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::HashMap;
use std::path::Path;

/// Envelope schema name of persisted cost caches.
pub const CACHE_SCHEMA: &str = "intune-cost-cache";
/// Current cost-cache schema version.
pub const CACHE_VERSION: u32 = 1;

/// The workspace's one hit-rate definition: hits over total requests,
/// zero when nothing was requested. Every surface that reports a rate
/// (cache stats, engine stats, training stats, the `BENCH_exec.json`
/// baseline) derives it from here so they can never disagree.
pub fn hit_rate(hits: u64, requested: u64) -> f64 {
    if requested == 0 {
        0.0
    } else {
        hits as f64 / requested as f64
    }
}

/// One canonicalized parameter value (floats by IEEE-754 bit pattern, so
/// the key is `Eq + Hash` while staying exact — and serializes without
/// rounding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum CanonValue {
    Choice(usize),
    Int(i64),
    FloatBits(u64),
}

/// An exact, hashable identity for a [`Configuration`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigKey(Vec<CanonValue>);

impl ConfigKey {
    /// Canonicalizes a configuration.
    pub fn of(cfg: &Configuration) -> Self {
        ConfigKey(
            cfg.values()
                .iter()
                .map(|v| match *v {
                    ParamValue::Choice(c) => CanonValue::Choice(c),
                    ParamValue::Int(i) => CanonValue::Int(i),
                    ParamValue::Float(f) => CanonValue::FloatBits(f.to_bits()),
                })
                .collect(),
        )
    }

    /// A stable 64-bit FNV-1a fingerprint of the key, used to derive
    /// per-cell RNG seeds (not for cache identity — the full key is).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for v in &self.0 {
            let (tag, bits) = match *v {
                CanonValue::Choice(c) => (1u8, c as u64),
                CanonValue::Int(i) => (2u8, i as u64),
                CanonValue::FloatBits(b) => (3u8, b),
            };
            eat(tag);
            for b in bits.to_le_bytes() {
                eat(b);
            }
        }
        h
    }
}

/// Hit/miss accounting of a [`CostCache`] (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh measurement.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        hit_rate(self.hits, self.hits + self.misses)
    }
}

/// Memoized measurement results for one input corpus.
///
/// Stored as per-input maps so lookups borrow the caller's [`ConfigKey`]
/// without cloning it — the warm-cache path is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct CostCache {
    map: HashMap<usize, HashMap<ConfigKey, ExecutionReport>>,
    entries: usize,
    stats: CacheStats,
}

impl CostCache {
    /// An empty cache.
    pub fn new() -> Self {
        CostCache::default()
    }

    /// Looks up a cell, counting a hit or a miss.
    pub fn lookup(&mut self, input_idx: usize, key: &ConfigKey) -> Option<ExecutionReport> {
        match self.map.get(&input_idx).and_then(|per| per.get(key)) {
            Some(&report) => {
                self.stats.hits += 1;
                Some(report)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at a cell without touching the hit/miss counters.
    pub fn peek(&self, input_idx: usize, key: &ConfigKey) -> Option<ExecutionReport> {
        self.map
            .get(&input_idx)
            .and_then(|per| per.get(key))
            .copied()
    }

    /// Stores a measured cell.
    pub fn insert(&mut self, input_idx: usize, key: ConfigKey, report: ExecutionReport) {
        if self
            .map
            .entry(input_idx)
            .or_default()
            .insert(key, report)
            .is_none()
        {
            self.entries += 1;
        }
    }

    /// Number of memoized cells.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether no cell has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Re-keys every memoized cell through an input-index mapping,
    /// dropping cells whose input maps to `None`. Caches are keyed by
    /// input *index* within one corpus; when a corpus evolves — the
    /// continuous-learning retrainer merges the base corpus with
    /// journaled production inputs, and reservoir eviction shifts
    /// positions — this is how yesterday's measurements stay valid:
    /// match inputs by identity fingerprint, build the old→new index
    /// map, and remap instead of re-measuring. The result starts with
    /// fresh (zeroed) hit/miss counters.
    pub fn remap_inputs(self, map: impl Fn(usize) -> Option<usize>) -> CostCache {
        let mut out = CostCache::new();
        for (old_idx, cells) in self.map {
            if let Some(new_idx) = map(old_idx) {
                for (key, report) in cells {
                    out.insert(new_idx, key, report);
                }
            }
        }
        out
    }

    /// Serializes the memoized cells (not the hit/miss counters) into a
    /// deterministic [`Value`]: inputs ascending, cells within an input
    /// ordered by canonical key text — saving the same cache twice yields
    /// byte-identical documents regardless of hash-map iteration order.
    pub fn to_value(&self) -> Value {
        let mut inputs: Vec<_> = self.map.iter().collect();
        inputs.sort_by_key(|(idx, _)| **idx);
        let inputs = inputs
            .into_iter()
            .map(|(idx, cells)| {
                let mut cells: Vec<(String, Value)> = cells
                    .iter()
                    .map(|(key, report)| {
                        let key_value = serde_json::to_value(key);
                        let order = serde_json::to_string(&key_value)
                            .expect("value printing is infallible");
                        let entry = Value::Object(vec![
                            ("key".to_string(), key_value),
                            ("report".to_string(), serde_json::to_value(report)),
                        ]);
                        (order, entry)
                    })
                    .collect();
                cells.sort_by(|(a, _), (b, _)| a.cmp(b));
                Value::Object(vec![
                    ("input".to_string(), Value::UInt(*idx as u64)),
                    (
                        "cells".to_string(),
                        Value::Array(cells.into_iter().map(|(_, v)| v).collect()),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![("inputs".to_string(), Value::Array(inputs))])
    }

    /// Reconstructs a cache from [`CostCache::to_value`] output. The
    /// result starts with fresh (zeroed) hit/miss counters.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the value's shape is wrong.
    pub fn from_value(value: &Value) -> Result<Self> {
        let bad = |what: &str| Error::artifact(format!("cost cache payload: {what}"));
        let mut cache = CostCache::new();
        let inputs = value
            .get("inputs")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing `inputs` array"))?;
        for entry in inputs {
            let idx = entry
                .get("input")
                .and_then(Value::as_u64)
                .ok_or_else(|| bad("missing `input` index"))? as usize;
            let cells = entry
                .get("cells")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("missing `cells` array"))?;
            for cell in cells {
                let key: ConfigKey = cell
                    .get("key")
                    .ok_or_else(|| bad("cell lacks `key`"))
                    .and_then(|v| {
                        serde_json::from_value(v).map_err(|e| bad(&format!("bad key: {e}")))
                    })?;
                let report: ExecutionReport = cell
                    .get("report")
                    .ok_or_else(|| bad("cell lacks `report`"))
                    .and_then(|v| {
                        serde_json::from_value(v).map_err(|e| bad(&format!("bad report: {e}")))
                    })?;
                cache.insert(idx, key, report);
            }
        }
        cache.stats = CacheStats::default();
        Ok(cache)
    }

    /// Persists the memoized cells to `path` as a checksummed, versioned
    /// document, so later runs over the *same corpus* can warm-start via
    /// [`CostCache::load`]. Deterministic: same cells, same bytes.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        codec::write_document(path, CACHE_SCHEMA, CACHE_VERSION, self.to_value())
    }

    /// Loads a cache persisted by [`CostCache::save`]. The caller is
    /// responsible for pairing the file with the corpus it was measured
    /// on — cells are keyed by input *index*.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure, checksum mismatch,
    /// schema/version mismatch, or a malformed payload.
    pub fn load(path: &Path) -> Result<Self> {
        let payload = codec::read_document(path, CACHE_SCHEMA, CACHE_VERSION)?;
        CostCache::from_value(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ConfigSpace;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .switch("alg", 3)
            .int("cutoff", 0, 100)
            .float("relax", 0.0, 2.0)
            .build()
    }

    #[test]
    fn config_key_is_exact() {
        use rand::SeedableRng;
        let space = space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = space.random(&mut rng);
        let b = a.clone();
        assert_eq!(ConfigKey::of(&a), ConfigKey::of(&b));
        let c = space.random(&mut rng);
        if c != a {
            assert_ne!(ConfigKey::of(&a), ConfigKey::of(&c));
        }
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let space = space();
        let a = space.default_config();
        assert_eq!(
            ConfigKey::of(&a).fingerprint(),
            ConfigKey::of(&a).fingerprint()
        );
        let mut b = a.clone();
        b.set(1, intune_core::ParamValue::Int(99));
        assert_ne!(
            ConfigKey::of(&a).fingerprint(),
            ConfigKey::of(&b).fingerprint()
        );
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let space = space();
        let cfg = space.default_config();
        let key = ConfigKey::of(&cfg);
        let mut cache = CostCache::new();

        assert!(cache.lookup(0, &key).is_none());
        cache.insert(0, key.clone(), ExecutionReport::of_cost(7.0));
        assert_eq!(cache.lookup(0, &key).unwrap().cost, 7.0);
        // Same configuration on a different input is a distinct cell.
        assert!(cache.lookup(1, &key).is_none());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let space = space();
        let key = ConfigKey::of(&space.default_config());
        let mut cache = CostCache::new();
        cache.insert(4, key.clone(), ExecutionReport::of_cost(1.0));
        assert!(cache.peek(4, &key).is_some());
        assert!(cache.peek(5, &key).is_none());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert!(CostCache::new().is_empty());
    }

    fn populated_cache() -> CostCache {
        use rand::SeedableRng;
        let space = space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut cache = CostCache::new();
        for input in 0..5usize {
            for c in 0..4 {
                let cfg = space.random(&mut rng);
                cache.insert(
                    input,
                    ConfigKey::of(&cfg),
                    ExecutionReport::with_accuracy((input * 10 + c) as f64 + 0.5, 0.25),
                );
            }
        }
        cache
    }

    #[test]
    fn save_load_round_trips_every_cell() {
        let dir = std::env::temp_dir().join(format!("intune-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.cache.json");

        let cache = populated_cache();
        cache.save(&path).unwrap();
        let loaded = CostCache::load(&path).unwrap();
        assert_eq!(loaded.len(), cache.len());
        assert_eq!(loaded.stats(), CacheStats::default(), "counters reset");
        for (input, per) in &cache.map {
            for (key, report) in per {
                assert_eq!(loaded.peek(*input, key), Some(*report));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serialization_is_deterministic() {
        // HashMap iteration order varies; the document must not.
        let a = serde_json::to_string(&populated_cache().to_value()).unwrap();
        let b = serde_json::to_string(&populated_cache().to_value()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn remap_inputs_rekeys_and_drops() {
        let cache = populated_cache();
        let expected: Vec<(usize, ConfigKey, ExecutionReport)> = cache
            .map
            .iter()
            .flat_map(|(i, per)| per.iter().map(move |(k, r)| (*i, k.clone(), *r)))
            .collect();
        // Shift inputs 1.. down by one, dropping input 0's cells.
        let remapped = cache.remap_inputs(|i| i.checked_sub(1));
        assert_eq!(remapped.len(), expected.len() - 4, "input 0's cells gone");
        assert_eq!(remapped.stats(), CacheStats::default(), "counters reset");
        for (i, key, report) in expected {
            match i.checked_sub(1) {
                Some(new_i) => assert_eq!(remapped.peek(new_i, &key), Some(report)),
                None => {
                    // Input 0's cells must not alias any surviving slot
                    // unless another input happened to share the key.
                }
            }
        }
    }

    #[test]
    fn tampered_cache_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("intune-cache-tamper-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.cache.json");
        populated_cache().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("0.5", "9.5", 1);
        assert_ne!(tampered, text);
        std::fs::write(&path, tampered).unwrap();
        let err = CostCache::load(&path).unwrap_err();
        assert!(
            matches!(err, intune_core::Error::Artifact { .. }),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn float_bit_patterns_survive_persistence() {
        let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
        let mut cfg = space.default_config();
        // A value whose decimal expansion exercises shortest-float printing.
        cfg.set(0, intune_core::ParamValue::Float(0.1 + 0.2));
        let key = ConfigKey::of(&cfg);
        let mut cache = CostCache::new();
        cache.insert(0, key.clone(), ExecutionReport::of_cost(1.0 / 3.0));
        let loaded = CostCache::from_value(&cache.to_value()).unwrap();
        let report = loaded.peek(0, &key).expect("exact key must match");
        assert_eq!(report.cost.to_bits(), (1.0f64 / 3.0).to_bits());
    }
}
