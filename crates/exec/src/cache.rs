//! Memoized `(input, configuration) → ExecutionReport` cost cache.
//!
//! Every layer of the two-level pipeline re-measures the same cells: the
//! landmark autotuner evaluates configurations on a representative input,
//! the `PerfMatrix` then re-runs the winning configurations on *all*
//! inputs (including that representative), the oracle baselines re-use the
//! matrix, and deployment evaluation measures landmarks again on a test
//! corpus. [`CostCache`] makes the measurement a reusable budget: a cell
//! measured once is never run again within the same corpus.
//!
//! Keys are exact: [`ConfigKey`] canonicalizes a [`Configuration`] by value
//! (floats by bit pattern), so two configurations hash equal iff the
//! benchmark would be handed identical parameter values. A cache is scoped
//! to one input corpus — input indices from different corpora must not
//! share a cache (the engine's callers create one cache per corpus).

use intune_core::{Configuration, ExecutionReport, ParamValue};
use std::collections::HashMap;

/// The workspace's one hit-rate definition: hits over total requests,
/// zero when nothing was requested. Every surface that reports a rate
/// (cache stats, engine stats, training stats, the `BENCH_exec.json`
/// baseline) derives it from here so they can never disagree.
pub fn hit_rate(hits: u64, requested: u64) -> f64 {
    if requested == 0 {
        0.0
    } else {
        hits as f64 / requested as f64
    }
}

/// One canonicalized parameter value (floats by IEEE-754 bit pattern, so
/// the key is `Eq + Hash` while staying exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CanonValue {
    Choice(usize),
    Int(i64),
    FloatBits(u64),
}

/// An exact, hashable identity for a [`Configuration`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigKey(Vec<CanonValue>);

impl ConfigKey {
    /// Canonicalizes a configuration.
    pub fn of(cfg: &Configuration) -> Self {
        ConfigKey(
            cfg.values()
                .iter()
                .map(|v| match *v {
                    ParamValue::Choice(c) => CanonValue::Choice(c),
                    ParamValue::Int(i) => CanonValue::Int(i),
                    ParamValue::Float(f) => CanonValue::FloatBits(f.to_bits()),
                })
                .collect(),
        )
    }

    /// A stable 64-bit FNV-1a fingerprint of the key, used to derive
    /// per-cell RNG seeds (not for cache identity — the full key is).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for v in &self.0 {
            let (tag, bits) = match *v {
                CanonValue::Choice(c) => (1u8, c as u64),
                CanonValue::Int(i) => (2u8, i as u64),
                CanonValue::FloatBits(b) => (3u8, b),
            };
            eat(tag);
            for b in bits.to_le_bytes() {
                eat(b);
            }
        }
        h
    }
}

/// Hit/miss accounting of a [`CostCache`] (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh measurement.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        hit_rate(self.hits, self.hits + self.misses)
    }
}

/// Memoized measurement results for one input corpus.
///
/// Stored as per-input maps so lookups borrow the caller's [`ConfigKey`]
/// without cloning it — the warm-cache path is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct CostCache {
    map: HashMap<usize, HashMap<ConfigKey, ExecutionReport>>,
    entries: usize,
    stats: CacheStats,
}

impl CostCache {
    /// An empty cache.
    pub fn new() -> Self {
        CostCache::default()
    }

    /// Looks up a cell, counting a hit or a miss.
    pub fn lookup(&mut self, input_idx: usize, key: &ConfigKey) -> Option<ExecutionReport> {
        match self.map.get(&input_idx).and_then(|per| per.get(key)) {
            Some(&report) => {
                self.stats.hits += 1;
                Some(report)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at a cell without touching the hit/miss counters.
    pub fn peek(&self, input_idx: usize, key: &ConfigKey) -> Option<ExecutionReport> {
        self.map
            .get(&input_idx)
            .and_then(|per| per.get(key))
            .copied()
    }

    /// Stores a measured cell.
    pub fn insert(&mut self, input_idx: usize, key: ConfigKey, report: ExecutionReport) {
        if self
            .map
            .entry(input_idx)
            .or_default()
            .insert(key, report)
            .is_none()
        {
            self.entries += 1;
        }
    }

    /// Number of memoized cells.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether no cell has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ConfigSpace;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .switch("alg", 3)
            .int("cutoff", 0, 100)
            .float("relax", 0.0, 2.0)
            .build()
    }

    #[test]
    fn config_key_is_exact() {
        use rand::SeedableRng;
        let space = space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = space.random(&mut rng);
        let b = a.clone();
        assert_eq!(ConfigKey::of(&a), ConfigKey::of(&b));
        let c = space.random(&mut rng);
        if c != a {
            assert_ne!(ConfigKey::of(&a), ConfigKey::of(&c));
        }
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let space = space();
        let a = space.default_config();
        assert_eq!(
            ConfigKey::of(&a).fingerprint(),
            ConfigKey::of(&a).fingerprint()
        );
        let mut b = a.clone();
        b.set(1, intune_core::ParamValue::Int(99));
        assert_ne!(
            ConfigKey::of(&a).fingerprint(),
            ConfigKey::of(&b).fingerprint()
        );
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let space = space();
        let cfg = space.default_config();
        let key = ConfigKey::of(&cfg);
        let mut cache = CostCache::new();

        assert!(cache.lookup(0, &key).is_none());
        cache.insert(0, key.clone(), ExecutionReport::of_cost(7.0));
        assert_eq!(cache.lookup(0, &key).unwrap().cost, 7.0);
        // Same configuration on a different input is a distinct cell.
        assert!(cache.lookup(1, &key).is_none());

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let space = space();
        let key = ConfigKey::of(&space.default_config());
        let mut cache = CostCache::new();
        cache.insert(4, key.clone(), ExecutionReport::of_cost(1.0));
        assert!(cache.peek(4, &key).is_some());
        assert!(cache.peek(5, &key).is_none());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert!(CostCache::new().is_empty());
    }
}
