//! Hardened runtime-environment knobs.
//!
//! The engine's worker count (`INTUNE_THREADS`) and the persistent
//! cost-cache directory (`INTUNE_CACHE_DIR`) are parsed here, once, with
//! garbage surfacing as a typed [`Error::Config`] instead of silently
//! degrading to a default — a daemon started with `INTUNE_THREADS=eight`
//! should refuse to start, not quietly run on one worker. *Unset*
//! variables are never an error: every `*_from_env` function returns
//! `Ok(None)` for them.

use intune_core::{Error, Result};
use std::path::PathBuf;

/// Environment variable overriding the engine's worker-thread count.
pub const THREADS_ENV: &str = "INTUNE_THREADS";

/// Environment variable naming the persistent per-corpus cost-cache
/// directory (used by `bench_exec` and the eval binaries' `--cache-dir`
/// default).
pub const CACHE_DIR_ENV: &str = "INTUNE_CACHE_DIR";

/// Parses a worker-thread count as `INTUNE_THREADS` would carry it:
/// a positive integer, surrounding whitespace tolerated.
///
/// # Errors
/// Returns [`Error::Config`] on a non-numeric value or zero (an engine
/// cannot run on zero workers; silently clamping would hide the typo).
pub fn parse_threads(raw: &str) -> Result<usize> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(Error::config(
            THREADS_ENV,
            "`0` workers cannot run anything; unset the variable for the default",
        )),
        Ok(t) => Ok(t),
        Err(_) => Err(Error::config(
            THREADS_ENV,
            format!("`{trimmed}` is not a positive integer"),
        )),
    }
}

/// Reads and parses [`THREADS_ENV`]. Unset → `Ok(None)`.
///
/// # Errors
/// Returns [`Error::Config`] when the variable is set to garbage
/// (non-UTF-8, non-numeric, or zero).
pub fn threads_from_env() -> Result<Option<usize>> {
    match std::env::var_os(THREADS_ENV) {
        None => Ok(None),
        Some(os) => {
            let raw = os
                .to_str()
                .ok_or_else(|| Error::config(THREADS_ENV, "value is not valid UTF-8"))?;
            parse_threads(raw).map(Some)
        }
    }
}

/// Parses a cache-directory value as `INTUNE_CACHE_DIR` would carry it.
///
/// # Errors
/// Returns [`Error::Config`] on an empty/whitespace-only value (almost
/// always a broken shell expansion — caching into `""` would resolve to
/// the current directory and scatter cache files silently).
pub fn parse_cache_dir(raw: &str) -> Result<PathBuf> {
    if raw.trim().is_empty() {
        return Err(Error::config(
            CACHE_DIR_ENV,
            "value is empty; unset the variable to disable cache persistence",
        ));
    }
    Ok(PathBuf::from(raw))
}

/// Reads and parses [`CACHE_DIR_ENV`]. Unset → `Ok(None)`.
///
/// # Errors
/// Returns [`Error::Config`] when the variable is set to garbage
/// (non-UTF-8 or empty).
pub fn cache_dir_from_env() -> Result<Option<PathBuf>> {
    match std::env::var_os(CACHE_DIR_ENV) {
        None => Ok(None),
        Some(os) => {
            let raw = os
                .to_str()
                .ok_or_else(|| Error::config(CACHE_DIR_ENV, "value is not valid UTF-8"))?;
            parse_cache_dir(raw).map(Some)
        }
    }
}

/// [`threads_from_env`] for binaries without error plumbing: prints the
/// typed error to stderr and exits with status 2 on garbage; `default`
/// when the variable is unset. One definition so every bin shares the
/// same exit convention.
pub fn threads_from_env_or_exit(default: usize) -> usize {
    threads_from_env()
        .unwrap_or_else(|e| exit_config(&e))
        .unwrap_or(default)
}

/// [`cache_dir_from_env`] for binaries: prints the typed error to stderr
/// and exits with status 2 on garbage; `None` when unset.
pub fn cache_dir_from_env_or_exit() -> Option<PathBuf> {
    cache_dir_from_env().unwrap_or_else(|e| exit_config(&e))
}

pub(crate) fn exit_config(e: &Error) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_parse_accepts_positive_integers() {
        assert_eq!(parse_threads("1").unwrap(), 1);
        assert_eq!(parse_threads("8").unwrap(), 8);
        assert_eq!(parse_threads("  3 \n").unwrap(), 3, "whitespace tolerated");
    }

    #[test]
    fn threads_parse_rejects_garbage_with_typed_errors() {
        for bad in ["", "eight", "-2", "1.5", "0x4", "4 workers"] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                matches!(&err, Error::Config { var, .. } if var == THREADS_ENV),
                "{bad:?}: {err:?}"
            );
        }
    }

    #[test]
    fn zero_threads_is_rejected_not_clamped() {
        let err = parse_threads("0").unwrap_err();
        assert!(matches!(err, Error::Config { .. }), "{err:?}");
        assert!(err.to_string().contains("0"), "{err}");
    }

    #[test]
    fn cache_dir_parse_rejects_empty_values() {
        for bad in ["", "   ", "\t"] {
            let err = parse_cache_dir(bad).unwrap_err();
            assert!(
                matches!(&err, Error::Config { var, .. } if var == CACHE_DIR_ENV),
                "{bad:?}: {err:?}"
            );
        }
        assert_eq!(parse_cache_dir("caches").unwrap(), PathBuf::from("caches"));
    }
}
