//! Deduplicated measurement plans.
//!
//! A [`MeasurementPlan`] is an ordered, duplicate-free set of measurement
//! *cells* — `(input index, configuration)` pairs. Callers build a plan for
//! whatever shape they need (a landmark × input matrix, a bag of oracle
//! probes, a single autotuner evaluation burst) and submit it to the
//! engine; adding a cell that is already in the plan returns the existing
//! cell id instead of scheduling a second run.

use crate::cache::ConfigKey;
use intune_core::Configuration;
use std::collections::HashMap;

/// One measurement cell: a configuration to run on one input.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Index of the input in the corpus the plan was built against.
    pub input: usize,
    /// The configuration to run.
    pub config: Configuration,
    /// Canonical cache key of `config` (computed once at insertion).
    pub key: ConfigKey,
    /// Seed derived from the cell's *identity* (input index + configuration
    /// fingerprint, never insertion order or scheduling), so a benchmark
    /// that wants per-cell randomness gets the same stream no matter how
    /// many workers execute the plan, in which order, or through which
    /// entry point (plan submission and `Engine::measure_one` derive the
    /// same seed for the same cell — which also keeps a shared
    /// [`crate::CostCache`], keyed without the seed, coherent).
    pub seed: u64,
}

/// An ordered, deduplicated set of measurement cells.
#[derive(Debug, Clone, Default)]
pub struct MeasurementPlan {
    cells: Vec<Cell>,
    index: HashMap<(usize, ConfigKey), usize>,
    dedup_saved: usize,
}

impl MeasurementPlan {
    /// An empty plan.
    pub fn new() -> Self {
        MeasurementPlan::default()
    }

    /// A plan measuring every configuration on every input of an
    /// `n_inputs`-sized corpus (the landmark × input matrix). Duplicate
    /// configurations collapse, so `k` landmarks of which two are identical
    /// schedule only `(k - 1) × n_inputs` cells.
    pub fn matrix(configs: &[Configuration], n_inputs: usize) -> Self {
        let mut plan = MeasurementPlan::new();
        for cfg in configs {
            for input in 0..n_inputs {
                plan.add(input, cfg);
            }
        }
        plan
    }

    /// Adds a cell, returning its id. Re-adding an existing
    /// `(input, configuration)` cell returns the original id and counts a
    /// deduplication instead of growing the plan.
    pub fn add(&mut self, input: usize, config: &Configuration) -> usize {
        let key = ConfigKey::of(config);
        if let Some(&id) = self.index.get(&(input, key.clone())) {
            self.dedup_saved += 1;
            return id;
        }
        let id = self.cells.len();
        let seed = derive_seed(input, key.fingerprint());
        self.cells.push(Cell {
            input,
            config: config.clone(),
            key: key.clone(),
            seed,
        });
        self.index.insert((input, key), id);
        id
    }

    /// The cells in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of distinct cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// How many duplicate submissions [`MeasurementPlan::add`] collapsed.
    pub fn dedup_saved(&self) -> usize {
        self.dedup_saved
    }
}

/// SplitMix64-style mix of the cell identity into a seed. Deliberately a
/// function of the identity alone: every entry point (plans,
/// `Engine::measure_one`) derives the same seed for the same cell, so
/// memoized reports are interchangeable wherever the cell is requested.
pub(crate) fn derive_seed(input: usize, config_fingerprint: u64) -> u64 {
    // Fixed basis: seeds differ per cell, never per call site.
    let mut z = 0x17d0_ee00_5eed_ba5eu64
        .wrapping_add((input as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(config_fingerprint);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ConfigSpace;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .switch("alg", 4)
            .int("k", 0, 9)
            .build()
    }

    #[test]
    fn add_dedups_identical_cells() {
        let space = space();
        let a = space.default_config();
        let mut plan = MeasurementPlan::new();
        let id0 = plan.add(0, &a);
        let id1 = plan.add(1, &a);
        let id2 = plan.add(0, &a.clone());
        assert_eq!(id0, id2);
        assert_ne!(id0, id1);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.dedup_saved(), 1);
    }

    #[test]
    fn matrix_collapses_duplicate_configs() {
        let space = space();
        let a = space.default_config();
        let mut b = a.clone();
        b.set(0, intune_core::ParamValue::Choice(2));
        let configs = vec![a.clone(), b, a];
        let plan = MeasurementPlan::matrix(&configs, 5);
        assert_eq!(plan.len(), 2 * 5);
        assert_eq!(plan.dedup_saved(), 5);
    }

    #[test]
    fn cell_seeds_depend_on_identity_not_order() {
        let space = space();
        let a = space.default_config();
        let mut b = a.clone();
        b.set(1, intune_core::ParamValue::Int(3));

        let mut forward = MeasurementPlan::new();
        forward.add(0, &a);
        forward.add(0, &b);
        let mut reverse = MeasurementPlan::new();
        reverse.add(0, &b);
        reverse.add(0, &a);

        let seed_of = |plan: &MeasurementPlan, cfg: &Configuration| {
            let key = ConfigKey::of(cfg);
            plan.cells()
                .iter()
                .find(|c| c.key == key)
                .map(|c| c.seed)
                .unwrap()
        };
        assert_eq!(seed_of(&forward, &a), seed_of(&reverse, &a));
        assert_eq!(seed_of(&forward, &b), seed_of(&reverse, &b));
        assert_ne!(seed_of(&forward, &a), seed_of(&forward, &b));
    }

    #[test]
    fn same_config_on_different_inputs_gets_different_seeds() {
        let space = space();
        let cfg = space.default_config();
        let mut plan = MeasurementPlan::new();
        let a = plan.add(0, &cfg);
        let b = plan.add(1, &cfg);
        assert_ne!(plan.cells()[a].seed, plan.cells()[b].seed);
    }
}
