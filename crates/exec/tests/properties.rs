//! Property tests for the measurement engine: worker-count invariance,
//! cache accounting, and plan deduplication.

use intune_core::{
    Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef, FeatureSample,
};
use intune_exec::{CostCache, Engine, Executor, MeasurementPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A benchmark with a mixed-kind space whose cost depends on every
/// parameter and on the input, so result mismatches cannot hide.
struct Mixed;

impl Benchmark for Mixed {
    type Input = (u64, f64);

    fn name(&self) -> &str {
        "mixed"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .switch("alg", 4)
            .int("cutoff", 0, 64)
            .float("relax", 0.5, 2.0)
            .build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let (kind, size) = *input;
        let alg = cfg.choice(0) as f64;
        let cutoff = cfg.int(1) as f64;
        let relax = cfg.float(2);
        // Deterministic per-cell "work" derived from the cell identity.
        let mut acc = size * (1.0 + alg) + cutoff * relax;
        let mut state = kind.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ cfg.choice(0) as u64;
        for _ in 0..(kind % 7) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc += (state % 1000) as f64 * 1e-3;
        }
        ExecutionReport::with_accuracy(acc, 1.0 / (1.0 + alg))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![FeatureDef::new("kind", 1)]
    }

    fn extract(&self, _p: usize, _l: usize, input: &Self::Input) -> FeatureSample {
        FeatureSample::new(input.0 as f64, 1.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The executor's indexed results are identical for 1, 2, and 8
    /// workers on the same seeded job list — the tentpole determinism
    /// guarantee.
    #[test]
    fn executor_results_identical_across_worker_counts(
        seed in 0u64..10_000, jobs in 1usize..400,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let work: Vec<u64> = (0..jobs).map(|_| rng.gen_range(0..1_000_000)).collect();
        let f = |i: usize, j: u64| -> u64 {
            // Uneven per-job cost: heavier jobs force steals at 8 workers.
            let rounds = (j % 97) * ((i as u64 % 5) + 1);
            let mut acc = j ^ (i as u64).rotate_left(17);
            for r in 0..rounds {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(r);
            }
            acc
        };
        let one = Executor::new(1).run(work.clone(), f);
        let two = Executor::new(2).run(work.clone(), f);
        let eight = Executor::new(8).run(work, f);
        prop_assert_eq!(&one.results, &two.results);
        prop_assert_eq!(&one.results, &eight.results);
    }

    /// End-to-end engine determinism: a full plan measured at 1, 2, and 8
    /// worker threads produces bit-identical reports and identical
    /// (deterministic) cache accounting.
    #[test]
    fn engine_reports_identical_across_worker_counts(
        seed in 0u64..10_000, n_inputs in 1usize..40, n_configs in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<(u64, f64)> = (0..n_inputs)
            .map(|_| (rng.gen_range(0..50), rng.gen_range(1.0..100.0)))
            .collect();
        let space = Mixed.space();
        let configs: Vec<Configuration> =
            (0..n_configs).map(|_| space.random(&mut rng)).collect();

        let mut baseline: Option<(Vec<Vec<ExecutionReport>>, u64, u64)> = None;
        for threads in [1usize, 2, 8] {
            let engine = Engine::new(threads);
            let mut cache = CostCache::new();
            let rows = engine
                .measure_matrix(&Mixed, &configs, &inputs, &mut cache)
                .unwrap();
            let stats = engine.stats();
            match &baseline {
                None => baseline = Some((rows, stats.cells_measured, stats.cache_hits)),
                Some((expect_rows, expect_measured, expect_hits)) => {
                    prop_assert_eq!(expect_rows, &rows, "threads = {}", threads);
                    prop_assert_eq!(*expect_measured, stats.cells_measured);
                    prop_assert_eq!(*expect_hits, stats.cache_hits);
                }
            }
        }
    }

    /// Cache accounting is exact: requested = hits + measured, and a warm
    /// resubmission of the same plan is all hits.
    #[test]
    fn cache_accounting_balances(
        seed in 0u64..10_000, n_inputs in 1usize..30, n_configs in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        let inputs: Vec<(u64, f64)> = (0..n_inputs)
            .map(|_| (rng.gen_range(0..50), rng.gen_range(1.0..100.0)))
            .collect();
        let space = Mixed.space();
        let configs: Vec<Configuration> =
            (0..n_configs).map(|_| space.random(&mut rng)).collect();

        let engine = Engine::new(2);
        let mut cache = CostCache::new();
        engine
            .measure_matrix(&Mixed, &configs, &inputs, &mut cache)
            .unwrap();
        let cold = engine.stats();
        prop_assert_eq!(cold.cells_requested, cold.cells_measured + cold.cache_hits);
        prop_assert_eq!(cache.len() as u64, cold.cells_measured);

        engine
            .measure_matrix(&Mixed, &configs, &inputs, &mut cache)
            .unwrap();
        let warm = engine.stats().since(&cold);
        prop_assert_eq!(warm.cells_measured, 0);
        prop_assert_eq!(warm.cache_hits, warm.cells_requested);
    }

    /// A benchmark with *internal randomness* (it overrides `run_seeded`
    /// and draws from the cell seed) is still bit-identical across worker
    /// counts: the seed comes from the cell's identity, not from which
    /// worker ran it or when.
    #[test]
    fn seeded_randomized_benchmark_is_worker_invariant(
        seed in 0u64..10_000, n_inputs in 1usize..30,
    ) {
        struct Sampled;
        impl Benchmark for Sampled {
            type Input = f64;
            fn name(&self) -> &str {
                "sampled"
            }
            fn space(&self) -> ConfigSpace {
                ConfigSpace::builder().switch("alg", 3).build()
            }
            fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
                ExecutionReport::of_cost(input * (1.0 + cfg.choice(0) as f64))
            }
            fn run_seeded(
                &self,
                cfg: &Configuration,
                input: &Self::Input,
                seed: u64,
            ) -> ExecutionReport {
                // A sampled accuracy metric: the draw depends on the seed.
                let mut rng = StdRng::seed_from_u64(seed);
                let accuracy: f64 = rng.gen_range(0.5..1.0);
                ExecutionReport::with_accuracy(self.run(cfg, input).cost, accuracy)
            }
            fn properties(&self) -> Vec<FeatureDef> {
                vec![FeatureDef::new("x", 1)]
            }
            fn extract(&self, _p: usize, _l: usize, input: &Self::Input) -> FeatureSample {
                FeatureSample::new(*input, 1.0)
            }
        }

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a17);
        let inputs: Vec<f64> = (0..n_inputs).map(|_| rng.gen_range(1.0..50.0)).collect();
        let space = Sampled.space();
        let configs: Vec<Configuration> = (0..3).map(|_| space.random(&mut rng)).collect();

        let mut baseline: Option<Vec<Vec<ExecutionReport>>> = None;
        for threads in [1usize, 2, 8] {
            let engine = Engine::new(threads);
            let mut cache = CostCache::new();
            let rows = engine
                .measure_matrix(&Sampled, &configs, &inputs, &mut cache)
                .unwrap();
            // The override really ran: accuracy is present on every report.
            prop_assert!(rows.iter().flatten().all(|r| r.accuracy.is_some()));
            match &baseline {
                None => baseline = Some(rows),
                Some(expect) => prop_assert_eq!(expect, &rows, "threads = {}", threads),
            }
        }
    }

    /// Plan deduplication: however many times a cell is submitted, the
    /// plan holds each distinct (input, configuration) exactly once.
    #[test]
    fn plan_dedup_is_exact(
        seed in 0u64..10_000, submissions in 1usize..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdedu64);
        let space = Mixed.space();
        let pool: Vec<Configuration> = (0..4).map(|_| space.random(&mut rng)).collect();
        let mut plan = MeasurementPlan::new();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..submissions {
            let input = rng.gen_range(0..6usize);
            let cfg = &pool[rng.gen_range(0..pool.len())];
            let id = plan.add(input, cfg);
            distinct.insert((input, intune_exec::ConfigKey::of(cfg)));
            prop_assert!(id < plan.len());
        }
        prop_assert_eq!(plan.len(), distinct.len());
        prop_assert_eq!(plan.dedup_saved(), submissions - distinct.len());
    }
}
