//! The five base sorting algorithms with deterministic cost accounting.
//!
//! Cost weights (units per operation) are calibrated so the relative costs
//! reflect the operations each algorithm performs: comparisons and element
//! moves charge 1.0; radix passes charge per byte-extraction+bucket-move;
//! bitonic compare-exchanges charge 0.25, modelling the network's
//! vectorizable/parallel-friendly structure (the reason PetaBricks includes
//! it as a choice on parallel hardware).

use intune_core::Cost;

/// Weight of one comparison or element move.
pub const W_CMP: f64 = 1.0;
/// Weight of one radix digit extraction + bucket move (per element, per
/// pass). Radix's scattered stores are cache-hostile, so a pass costs more
/// than a sequential comparison — it still wins on large inputs (8 passes ×
/// 3 ≈ 24n beats `2n·log n` beyond n ≈ 4096) without flattening the
/// comparison sorts' niches below that.
pub const W_RADIX: f64 = 3.0;
/// Fixed overhead per radix pass (bucket maintenance).
pub const W_RADIX_PASS: f64 = 256.0;
/// Discounted weight of a bitonic compare-exchange, modelling its
/// vectorizable structure; at 0.5 the network is competitive on small-to-mid
/// power-of-two sizes but loses to merge/quick as `log² n` grows.
pub const W_BITONIC: f64 = 0.5;

/// In-place insertion sort. Linear on sorted data, quadratic on random.
pub fn insertion_sort(a: &mut [f64], cost: &mut Cost) {
    for i in 1..a.len() {
        let key = a[i];
        let mut j = i;
        cost.charge(W_CMP);
        while j > 0 && a[j - 1] > key {
            a[j] = a[j - 1];
            cost.charge(2.0 * W_CMP); // one comparison + one move
            j -= 1;
        }
        a[j] = key;
        cost.charge(W_CMP);
    }
}

/// Lomuto partition with the *first* element as pivot (swapped to the end).
/// Returns the pivot's final index. Degenerates to `O(n²)` on sorted inputs
/// (pivot is the minimum) and on heavily duplicated inputs (all elements land
/// on one side) — the paper's "QuickSort has pathological input cases".
pub fn lomuto_partition_first(a: &mut [f64], cost: &mut Cost) -> usize {
    let n = a.len();
    debug_assert!(n >= 2);
    a.swap(0, n - 1);
    let pivot = a[n - 1];
    let mut store = 0usize;
    for i in 0..n - 1 {
        cost.charge(W_CMP);
        if a[i] <= pivot {
            a.swap(i, store);
            cost.charge(W_CMP);
            store += 1;
        }
    }
    a.swap(store, n - 1);
    cost.charge(W_CMP);
    store
}

/// Splits `a` into `ways` nearly equal contiguous chunks (for k-way merge).
pub fn chunk_bounds(n: usize, ways: usize) -> Vec<(usize, usize)> {
    let ways = ways.max(2).min(n.max(1));
    let base = n / ways;
    let extra = n % ways;
    let mut bounds = Vec::with_capacity(ways);
    let mut start = 0;
    for w in 0..ways {
        let len = base + usize::from(w < extra);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// K-way merge of sorted runs (given by `bounds` into `src`) into `dst`,
/// using a linear scan over the run heads — cheap for small `k`, which makes
/// the number of ways a genuine tunable trade-off.
///
/// # Panics
/// Panics if `dst.len() != src.len()`.
pub fn kway_merge(src: &[f64], bounds: &[(usize, usize)], dst: &mut [f64], cost: &mut Cost) {
    assert_eq!(src.len(), dst.len(), "merge buffers must match");
    let mut heads: Vec<usize> = bounds.iter().map(|b| b.0).collect();
    for out in dst.iter_mut() {
        let mut best: Option<(usize, f64)> = None;
        for (w, &(_, end)) in bounds.iter().enumerate() {
            let h = heads[w];
            if h < end {
                cost.charge(W_CMP);
                match best {
                    Some((_, v)) if src[h] >= v => {}
                    _ => best = Some((w, src[h])),
                }
            }
        }
        let (w, v) = best.expect("merge ran out of elements");
        heads[w] += 1;
        *out = v;
        cost.charge(W_CMP); // the move
    }
}

/// Maps an `f64` to a `u64` whose unsigned order matches the float's total
/// order (standard sign-flip trick); NaNs sort after everything.
pub fn f64_to_ordered_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        bits | 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

/// LSD radix sort on 8-bit digits of the order-preserving bit key. Linear in
/// `n` with a per-pass overhead; completely insensitive to input order or
/// duplication.
pub fn radix_sort(a: &mut [f64], cost: &mut Cost) {
    let n = a.len();
    if n <= 1 {
        return;
    }
    let mut keys: Vec<(u64, f64)> = a.iter().map(|&x| (f64_to_ordered_bits(x), x)).collect();
    let mut buf: Vec<(u64, f64)> = vec![(0, 0.0); n];
    cost.charge(n as f64); // key extraction
    for pass in 0..8 {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &(k, _) in &keys {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for (o, c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        for &(k, v) in &keys {
            let d = ((k >> shift) & 0xff) as usize;
            buf[offsets[d]] = (k, v);
            offsets[d] += 1;
        }
        std::mem::swap(&mut keys, &mut buf);
        cost.charge(W_RADIX * n as f64 + W_RADIX_PASS);
    }
    for (slot, (_, v)) in a.iter_mut().zip(&keys) {
        *slot = *v;
    }
    cost.charge(n as f64);
}

/// Bitonic sort as a compare-exchange network (padding to a power of two
/// with +∞ sentinels). `O(n log² n)` operations at the discounted
/// [`W_BITONIC`] weight.
pub fn bitonic_sort(a: &mut [f64], cost: &mut Cost) {
    let n = a.len();
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();
    let mut work: Vec<f64> = Vec::with_capacity(padded);
    work.extend_from_slice(a);
    work.resize(padded, f64::INFINITY);
    cost.charge(padded as f64);

    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    cost.charge(W_BITONIC);
                    if (work[i] > work[partner]) == ascending {
                        work.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    a.copy_from_slice(&work[..n]);
    cost.charge(n as f64);
}

/// Whether a slice is non-decreasing (test helper, also used by property
/// tests across the workspace).
pub fn is_sorted(a: &[f64]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> Vec<Vec<f64>> {
        vec![
            vec![],
            vec![1.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0, 2.0],
            (0..100).map(|i| i as f64).collect(),       // sorted
            (0..100).rev().map(|i| i as f64).collect(), // reversed
            (0..100).map(|i| ((i * 37) % 19) as f64).collect(), // duplicates
            (0..128)
                .map(|i| ((i * 7919) % 1009) as f64 - 500.0)
                .collect(), // scrambled with negatives
            vec![0.0, -0.5, 3.25, -0.5, 1e9, -1e9, 0.125],
        ]
    }

    fn check_sorts(f: fn(&mut [f64], &mut Cost)) {
        for mut v in fixtures() {
            let mut expect = v.clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut cost = Cost::new();
            f(&mut v, &mut cost);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn insertion_sorts() {
        check_sorts(insertion_sort);
    }

    #[test]
    fn radix_sorts() {
        check_sorts(radix_sort);
    }

    #[test]
    fn bitonic_sorts() {
        check_sorts(bitonic_sort);
    }

    #[test]
    fn insertion_linear_on_sorted_quadratic_on_reversed() {
        let mut sorted: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut reversed: Vec<f64> = (0..1000).rev().map(|i| i as f64).collect();
        let mut c1 = Cost::new();
        insertion_sort(&mut sorted, &mut c1);
        let mut c2 = Cost::new();
        insertion_sort(&mut reversed, &mut c2);
        assert!(c1.total() < 5_000.0, "sorted cost {}", c1.total());
        assert!(c2.total() > 500_000.0, "reversed cost {}", c2.total());
    }

    #[test]
    fn lomuto_partition_correct() {
        let mut v = vec![5.0, 2.0, 8.0, 1.0, 9.0, 5.0, 3.0];
        let mut cost = Cost::new();
        let p = lomuto_partition_first(&mut v, &mut cost);
        let pivot = v[p];
        assert_eq!(pivot, 5.0);
        for (i, x) in v.iter().enumerate() {
            if i < p {
                assert!(*x <= pivot);
            } else if i > p {
                assert!(*x > pivot);
            }
        }
    }

    #[test]
    fn lomuto_degenerate_on_sorted() {
        let mut v: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut cost = Cost::new();
        let p = lomuto_partition_first(&mut v, &mut cost);
        assert_eq!(p, 0, "first-element pivot on sorted data splits 0 / n-1");
    }

    #[test]
    fn kway_merge_merges() {
        // Three sorted runs.
        let src = vec![1.0, 4.0, 7.0, 2.0, 5.0, 8.0, 0.0, 3.0, 6.0];
        let bounds = vec![(0, 3), (3, 6), (6, 9)];
        let mut dst = vec![0.0; 9];
        let mut cost = Cost::new();
        kway_merge(&src, &bounds, &mut dst, &mut cost);
        assert_eq!(dst, (0..9).map(|i| i as f64).collect::<Vec<_>>());
        assert!(cost.total() > 0.0);
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for ways in [2usize, 3, 8] {
                let b = chunk_bounds(n, ways);
                assert_eq!(b.first().map(|x| x.0).unwrap_or(0), 0);
                assert_eq!(b.last().map(|x| x.1).unwrap_or(0), n);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                }
            }
        }
    }

    #[test]
    fn ordered_bits_preserve_order() {
        let vals = [-1e30, -2.5, -0.0, 0.0, 1e-300, 3.25, 7.0, 1e30];
        for w in vals.windows(2) {
            assert!(
                f64_to_ordered_bits(w[0]) <= f64_to_ordered_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn radix_cost_linear_in_n() {
        let mut small: Vec<f64> = (0..1000).map(|i| ((i * 37) % 997) as f64).collect();
        let mut large: Vec<f64> = (0..4000).map(|i| ((i * 37) % 997) as f64).collect();
        let mut c1 = Cost::new();
        radix_sort(&mut small, &mut c1);
        let mut c2 = Cost::new();
        radix_sort(&mut large, &mut c2);
        let ratio = c2.total() / c1.total();
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }
}
