//! Input feature extractors for the Sort benchmark.
//!
//! Four properties at three sampling levels each (the paper's
//! `input_feature Sortedness, Duplication, …` with a `level` tunable):
//!
//! | property    | value                                            | cost profile |
//! |-------------|--------------------------------------------------|--------------|
//! | sortedness  | fraction of correctly ordered sampled pairs      | linear in sample |
//! | duplication | 1 − distinct/sampled                             | sample sort  |
//! | deviation   | standard deviation of sampled values             | linear in sample |
//! | test_sort   | insertion-sort ops per element on a subsequence  | up to quadratic in probe |
//!
//! Level 0 samples cheaply and coarsely; level 2 examines (almost) the whole
//! input. All sampling is deterministic (fixed strides), keeping the entire
//! pipeline reproducible.

use intune_core::{Cost, FeatureSample};

/// Property indices (order matches `PolySort::properties`).
pub mod prop {
    /// Sampled sortedness.
    pub const SORTEDNESS: usize = 0;
    /// Sampled duplication ratio.
    pub const DUPLICATION: usize = 1;
    /// Sampled standard deviation.
    pub const DEVIATION: usize = 2;
    /// Test-sort probe (insertion ops per element on a prefix subsequence).
    pub const TEST_SORT: usize = 3;
}

fn sample_size(level: usize, n: usize) -> usize {
    match level {
        0 => n.min(64),
        1 => n.min(512),
        _ => n,
    }
    .max(2)
    .min(n.max(2))
}

/// Evenly strided sample of `m` elements.
fn strided(input: &[f64], m: usize) -> Vec<f64> {
    let n = input.len();
    if n == 0 {
        return vec![0.0, 0.0];
    }
    let m = m.min(n).max(1);
    (0..m).map(|i| input[i * n / m]).collect()
}

/// Extracts property `property` at sampling `level`.
///
/// # Panics
/// Panics if `property` is out of range (the Sort benchmark declares 4).
pub fn extract(property: usize, level: usize, input: &[f64]) -> FeatureSample {
    match property {
        prop::SORTEDNESS => sortedness(level, input),
        prop::DUPLICATION => duplication(level, input),
        prop::DEVIATION => deviation(level, input),
        prop::TEST_SORT => test_sort(level, input),
        other => panic!("sort benchmark has 4 properties, got {other}"),
    }
}

/// Fraction of adjacent sampled pairs in non-decreasing order — the paper's
/// Figure 1 `Sortedness` extractor with `step` controlled by the level.
fn sortedness(level: usize, input: &[f64]) -> FeatureSample {
    let n = input.len();
    if n < 2 {
        return FeatureSample::new(1.0, 1.0);
    }
    let m = sample_size(level, n);
    sortedness_from(&strided(input, m), m)
}

fn sortedness_from(sample: &[f64], m: usize) -> FeatureSample {
    let mut ordered = 0usize;
    let mut count = 0usize;
    for w in sample.windows(2) {
        if w[0] <= w[1] {
            ordered += 1;
        }
        count += 1;
    }
    let value = if count > 0 {
        ordered as f64 / count as f64
    } else {
        0.0
    };
    FeatureSample::new(value, m as f64)
}

/// `1 − distinct/sampled`: 0 for all-unique, approaching 1 for heavy
/// duplication. Costs a sample sort.
fn duplication(level: usize, input: &[f64]) -> FeatureSample {
    let n = input.len();
    if n == 0 {
        return FeatureSample::new(0.0, 1.0);
    }
    let m = sample_size(level, n);
    duplication_from(strided(input, m), m)
}

fn duplication_from(mut sample: Vec<f64>, m: usize) -> FeatureSample {
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut distinct = 1usize;
    for w in sample.windows(2) {
        if w[0] != w[1] {
            distinct += 1;
        }
    }
    let value = 1.0 - distinct as f64 / m as f64;
    let cost = m as f64 * (m as f64).log2().max(1.0);
    FeatureSample::new(value, cost)
}

/// Standard deviation of the sample.
fn deviation(level: usize, input: &[f64]) -> FeatureSample {
    let n = input.len();
    if n == 0 {
        return FeatureSample::new(0.0, 1.0);
    }
    let m = sample_size(level, n);
    deviation_from(&strided(input, m), m)
}

fn deviation_from(sample: &[f64], m: usize) -> FeatureSample {
    let mean = sample.iter().sum::<f64>() / m as f64;
    let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m as f64;
    FeatureSample::new(var.sqrt(), 2.0 * m as f64)
}

/// Extracts all four properties at one sampling level, computing the
/// strided sample **once** instead of once per property — the fused pass
/// behind `PolySort::extract_all` on the serving hot path. Returns samples
/// in property order; every value and cost is bit-identical to calling
/// [`extract`] per property (the shared helpers above are the single copy
/// of each computation, and degenerate-input early returns mirror the
/// per-property paths).
pub fn extract_level(level: usize, input: &[f64]) -> [FeatureSample; 4] {
    let n = input.len();
    let m = sample_size(level, n);
    let sample = strided(input, m);
    [
        if n < 2 {
            FeatureSample::new(1.0, 1.0)
        } else {
            sortedness_from(&sample, m)
        },
        if n == 0 {
            FeatureSample::new(0.0, 1.0)
        } else {
            duplication_from(sample.clone(), m)
        },
        if n == 0 {
            FeatureSample::new(0.0, 1.0)
        } else {
            deviation_from(&sample, m)
        },
        test_sort(level, input),
    ]
}

/// Runs an insertion sort over a prefix subsequence and reports measured ops
/// per element — an *executed probe*, the most expensive and most faithful
/// feature ("the performance of a test sort on a subsequence of the list").
fn test_sort(level: usize, input: &[f64]) -> FeatureSample {
    let probe_len = match level {
        0 => 32,
        1 => 128,
        _ => 512,
    }
    .min(input.len().max(2));
    let mut probe = strided(input, probe_len);
    let mut cost = Cost::new();
    crate::algorithms::insertion_sort(&mut probe, &mut cost);
    let value = cost.total() / probe_len as f64;
    FeatureSample::new(value, cost.total())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sortedness_detects_order() {
        let sorted: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let reversed: Vec<f64> = (0..1000).rev().map(|i| i as f64).collect();
        assert_eq!(extract(prop::SORTEDNESS, 2, &sorted).value, 1.0);
        assert_eq!(extract(prop::SORTEDNESS, 2, &reversed).value, 0.0);
    }

    #[test]
    fn duplication_scales_with_distincts() {
        let unique: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let dupes: Vec<f64> = (0..500).map(|i| (i % 5) as f64).collect();
        let u = extract(prop::DUPLICATION, 2, &unique).value;
        let d = extract(prop::DUPLICATION, 2, &dupes).value;
        assert!(u < 0.01, "unique dup {u}");
        assert!(d > 0.95, "dupes dup {d}");
    }

    #[test]
    fn deviation_measures_spread() {
        let tight: Vec<f64> = (0..300).map(|_| 5.0).collect();
        let wide: Vec<f64> = (0..300).map(|i| (i as f64) * 100.0).collect();
        assert_eq!(extract(prop::DEVIATION, 1, &tight).value, 0.0);
        assert!(extract(prop::DEVIATION, 1, &wide).value > 1000.0);
    }

    #[test]
    fn test_sort_probe_reflects_disorder() {
        let sorted: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let scrambled: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 2003) as f64).collect();
        let s = extract(prop::TEST_SORT, 1, &sorted).value;
        let r = extract(prop::TEST_SORT, 1, &scrambled).value;
        assert!(r > 3.0 * s, "scrambled probe {r} vs sorted probe {s}");
    }

    #[test]
    fn higher_levels_cost_more() {
        let input: Vec<f64> = (0..4000).map(|i| ((i * 31) % 997) as f64).collect();
        for p in 0..4 {
            let c0 = extract(p, 0, &input).cost;
            let c2 = extract(p, 2, &input).cost;
            assert!(
                c2 > c0,
                "property {p}: level2 cost {c2} <= level0 cost {c0}"
            );
        }
    }

    #[test]
    fn fused_level_extraction_is_bit_identical() {
        let inputs: Vec<Vec<f64>> = vec![
            vec![],
            vec![3.0],
            vec![2.0, 1.0],
            (0..700).map(|i| ((i * 31) % 113) as f64).collect(),
            (0..4000).map(|i| (i % 9) as f64).collect(),
        ];
        for input in &inputs {
            for level in 0..3 {
                let fused = extract_level(level, input);
                for (p, sample) in fused.iter().enumerate() {
                    let single = extract(p, level, input);
                    assert!(
                        sample.value.to_bits() == single.value.to_bits()
                            && sample.cost.to_bits() == single.cost.to_bits(),
                        "p{p} l{level} n{}: fused {sample:?} != single {single:?}",
                        input.len()
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        for input in [vec![], vec![1.0], vec![2.0, 1.0]] {
            for p in 0..4 {
                for level in 0..3 {
                    let s = extract(p, level, &input);
                    assert!(s.value.is_finite());
                    assert!(s.cost >= 0.0);
                }
            }
        }
    }

    #[test]
    fn levels_converge_to_full_scan_value() {
        // On a half-sorted input the level-2 sortedness is exact; level-0 is
        // an approximation but must be within a coarse band.
        let mut input: Vec<f64> = (0..2048).map(|i| i as f64).collect();
        for i in (1..2048).step_by(4) {
            input.swap(i - 1, i);
        }
        let exact = extract(prop::SORTEDNESS, 2, &input).value;
        let approx = extract(prop::SORTEDNESS, 0, &input).value;
        assert!(
            (exact - approx).abs() < 0.35,
            "exact {exact} approx {approx}"
        );
    }
}
