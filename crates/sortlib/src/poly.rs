//! The Sort polyalgorithm: a recursive selector over the five base sorts.
//!
//! Mirrors the paper's Figure 1: every (recursive) invocation consults the
//! decoded [`Selector`] with the current sub-problem size and runs the chosen
//! algorithm. QuickSort and MergeSort decompose and re-enter the selector on
//! their sub-problems, so one configuration denotes a full *polyalgorithm*
//! (Figure 2). Execution is abortable via a cost cap so that degenerate
//! configurations explored by the autotuner cannot stall training — the
//! analogue of the PetaBricks autotuner's execution timeouts.

use crate::algorithms::{
    bitonic_sort, chunk_bounds, kway_merge, lomuto_partition_first, radix_sort,
};
use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, Cost, ExecutionReport, FeatureDef,
    FeatureId, FeatureSample, FeatureVector, Selector, SelectorSpec,
};

/// Algorithm indices used in the selector genes.
pub mod alg {
    /// InsertionSort.
    pub const INSERTION: usize = 0;
    /// QuickSort (Lomuto, first-element pivot).
    pub const QUICK: usize = 1;
    /// k-way MergeSort.
    pub const MERGE: usize = 2;
    /// LSD RadixSort.
    pub const RADIX: usize = 3;
    /// BitonicSort.
    pub const BITONIC: usize = 4;
    /// Number of algorithm choices.
    pub const COUNT: usize = 5;
}

/// Error used internally to unwind when the cost cap is exceeded.
struct Aborted;

/// The Sort benchmark (fixed accuracy): configuration space = a recursive
/// selector over the five algorithms plus the number of merge ways.
#[derive(Debug, Clone)]
pub struct PolySort {
    max_n: usize,
    selector_levels: usize,
    /// Cost multiplier for the abort cap (see [`PolySort::run`]).
    cap_factor: f64,
}

impl PolySort {
    /// Creates a Sort benchmark for inputs up to `max_n` elements.
    pub fn new(max_n: usize) -> Self {
        PolySort {
            max_n: max_n.max(16),
            selector_levels: 3,
            cap_factor: 500.0,
        }
    }

    /// Overrides the number of selector cutoff levels (default 3).
    pub fn with_selector_levels(mut self, levels: usize) -> Self {
        self.selector_levels = levels.max(1);
        self
    }

    fn selector_spec(&self) -> SelectorSpec {
        SelectorSpec::new("sort", self.selector_levels, self.max_n as i64, alg::COUNT)
    }

    /// Sorts `data` under `cfg`, returning the sorted vector and the
    /// deterministic cost. Never aborts (no cap) — used for correctness
    /// tests and deployment.
    ///
    /// # Panics
    /// Panics if `cfg` does not match this benchmark's space.
    pub fn sort(&self, cfg: &Configuration, data: &[f64]) -> (Vec<f64>, f64) {
        let space = self.space();
        let selector = self
            .selector_spec()
            .decode(&space, cfg)
            .expect("selector genes present");
        let ways = cfg.int(space.require("sort.merge_ways").expect("gene")) as usize;
        let mut out = data.to_vec();
        let mut cost = Cost::new();
        let _ = Self::dispatch(&selector, ways, &mut out, &mut cost, f64::INFINITY);
        (out, cost.total())
    }

    fn dispatch(
        selector: &Selector,
        ways: usize,
        a: &mut [f64],
        cost: &mut Cost,
        cap: f64,
    ) -> Result<(), Aborted> {
        if cost.total() > cap {
            return Err(Aborted);
        }
        let n = a.len();
        if n <= 1 {
            return Ok(());
        }
        match selector.decide(n) {
            alg::INSERTION => {
                // Charge-per-outer-iteration abort checks keep degenerate
                // configurations from running the full quadratic course.
                let chunk = 1024.min(n);
                let mut done = 1;
                while done < n {
                    let upper = (done + chunk).min(n);
                    // Insertion-sort the prefix [0, upper) incrementally.
                    for i in done..upper {
                        let key = a[i];
                        let mut j = i;
                        cost.charge(1.0);
                        while j > 0 && a[j - 1] > key {
                            a[j] = a[j - 1];
                            cost.charge(2.0);
                            j -= 1;
                        }
                        a[j] = key;
                        cost.charge(1.0);
                    }
                    done = upper;
                    if cost.total() > cap {
                        return Err(Aborted);
                    }
                }
                Ok(())
            }
            alg::QUICK => {
                // Iterate on the larger side so stack depth stays O(log n)
                // even on degenerate partitions.
                let mut lo = 0usize;
                let mut hi = n;
                while hi - lo >= 2 {
                    if cost.total() > cap {
                        return Err(Aborted);
                    }
                    let p = lo + lomuto_partition_first(&mut a[lo..hi], cost);
                    let left = p - lo;
                    let right = hi - (p + 1);
                    if left <= right {
                        Self::recurse(selector, ways, a, lo, p, cost, cap)?;
                        lo = p + 1;
                    } else {
                        Self::recurse(selector, ways, a, p + 1, hi, cost, cap)?;
                        hi = p;
                    }
                }
                Ok(())
            }
            alg::MERGE => {
                let ways = ways.clamp(2, 16);
                let bounds = chunk_bounds(n, ways);
                for &(s, e) in &bounds {
                    Self::recurse_same(selector, ways, &mut a[s..e], cost, cap)?;
                }
                let src = a.to_vec();
                cost.charge(n as f64); // copy to scratch
                kway_merge(&src, &bounds, a, cost);
                Ok(())
            }
            alg::RADIX => {
                radix_sort(a, cost);
                Ok(())
            }
            _ => {
                bitonic_sort(a, cost);
                Ok(())
            }
        }
    }

    fn recurse(
        selector: &Selector,
        ways: usize,
        a: &mut [f64],
        lo: usize,
        hi: usize,
        cost: &mut Cost,
        cap: f64,
    ) -> Result<(), Aborted> {
        Self::dispatch(selector, ways, &mut a[lo..hi], cost, cap)
    }

    fn recurse_same(
        selector: &Selector,
        ways: usize,
        a: &mut [f64],
        cost: &mut Cost,
        cap: f64,
    ) -> Result<(), Aborted> {
        // A merge chunk of the same size as its parent (ways clamp) must
        // still terminate: fall back to recursion guard by size check inside
        // dispatch (chunks are strictly smaller whenever n >= ways >= 2).
        Self::dispatch(selector, ways, a, cost, cap)
    }
}

impl Benchmark for PolySort {
    type Input = Vec<f64>;

    fn name(&self) -> &str {
        "sort"
    }

    fn space(&self) -> ConfigSpace {
        let builder = self.selector_spec().add_to(ConfigSpace::builder());
        builder.int("sort.merge_ways", 2, 16).build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let space = self.space();
        let selector = self
            .selector_spec()
            .decode(&space, cfg)
            .expect("selector genes present");
        let ways = cfg.int(space.require("sort.merge_ways").expect("gene")) as usize;
        let n = input.len().max(2) as f64;
        let cap = self.cap_factor * n * n.log2().max(1.0);
        let mut out = input.clone();
        let mut cost = Cost::new();
        let _ = Self::dispatch(&selector, ways, &mut out, &mut cost, cap);
        ExecutionReport::of_cost(cost.total())
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        None // Sort is the paper's one fixed-accuracy benchmark.
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("sortedness", 3),
            FeatureDef::new("duplication", 3),
            FeatureDef::new("deviation", 3),
            FeatureDef::new("test_sort", 3),
        ]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        crate::features::extract(property, level, input)
    }

    // Fused full extraction: one strided sample per level shared by the
    // sample-statistics properties (bit-identical to the default per-
    // property path; see `features::extract_level`). This is the serving
    // runtimes' drift-probe workhorse, so the shared pass pays off on
    // every probed request.
    fn extract_all(&self, input: &Self::Input) -> FeatureVector {
        let defs = self.properties();
        let mut fv = FeatureVector::empty(&defs);
        for level in 0..3 {
            for (p, sample) in crate::features::extract_level(level, input)
                .into_iter()
                .enumerate()
            {
                fv.insert(FeatureId { property: p, level }, sample)
                    .expect("in-range feature id");
            }
        }
        fv
    }

    // Sort inputs are plain float arrays: they journal losslessly (the
    // JSON backend round-trips every f64 bit pattern), so sort cases can
    // feed the continuous-learning retraining corpus.
    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        Some(serde::Serialize::to_value(input))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        serde_json::from_value(payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench() -> PolySort {
        PolySort::new(4096)
    }

    fn reference_sorted(v: &[f64]) -> Vec<f64> {
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s
    }

    #[test]
    fn every_random_config_sorts_correctly() {
        let b = bench();
        let space = b.space();
        let mut rng = StdRng::seed_from_u64(17);
        let input: Vec<f64> = (0..1500).map(|i| ((i * 7919) % 1009) as f64).collect();
        let expect = reference_sorted(&input);
        for _ in 0..25 {
            let cfg = space.random(&mut rng);
            let (sorted, cost) = b.sort(&cfg, &input);
            assert_eq!(sorted, expect);
            assert!(cost > 0.0);
        }
    }

    #[test]
    fn selector_cutoffs_change_cost() {
        let b = bench();
        let space = b.space();
        // All-insertion config vs merge-at-top config on random data.
        let mut all_insertion = space.default_config();
        for i in 0..3 {
            all_insertion.set(
                space.index_of(&format!("sort.cutoff{i}")).unwrap(),
                intune_core::ParamValue::Int(4096),
            );
            all_insertion.set(
                space.index_of(&format!("sort.alg{i}")).unwrap(),
                intune_core::ParamValue::Choice(alg::INSERTION),
            );
        }
        all_insertion.set(
            space.index_of("sort.top").unwrap(),
            intune_core::ParamValue::Choice(alg::INSERTION),
        );

        let mut merge_top = all_insertion.clone();
        merge_top.set(
            space.index_of("sort.cutoff0").unwrap(),
            intune_core::ParamValue::Int(32),
        );
        merge_top.set(
            space.index_of("sort.alg0").unwrap(),
            intune_core::ParamValue::Choice(alg::INSERTION),
        );
        for i in 1..3 {
            merge_top.set(
                space.index_of(&format!("sort.cutoff{i}")).unwrap(),
                intune_core::ParamValue::Int(33),
            );
        }
        merge_top.set(
            space.index_of("sort.top").unwrap(),
            intune_core::ParamValue::Choice(alg::MERGE),
        );

        let input: Vec<f64> = (0..2000)
            .map(|i| ((i * 2654435761_u64) % 4093) as f64)
            .collect();
        let slow = b.run(&all_insertion, &input).cost;
        let fast = b.run(&merge_top, &input).cost;
        assert!(
            fast < slow / 5.0,
            "merge-with-insertion-leaves {fast} should trounce pure insertion {slow}"
        );
    }

    #[test]
    fn quick_on_sorted_is_pathological_radix_is_not() {
        let b = bench();
        let space = b.space();
        let sorted: Vec<f64> = (0..3000).map(|i| i as f64).collect();

        let mk = |top: usize| {
            let mut cfg = space.default_config();
            for i in 0..3 {
                cfg.set(
                    space.index_of(&format!("sort.cutoff{i}")).unwrap(),
                    intune_core::ParamValue::Int(1),
                );
            }
            cfg.set(
                space.index_of("sort.top").unwrap(),
                intune_core::ParamValue::Choice(top),
            );
            cfg
        };
        let quick_cost = b.run(&mk(alg::QUICK), &sorted).cost;
        let radix_cost = b.run(&mk(alg::RADIX), &sorted).cost;
        let insertion_cost = b.run(&mk(alg::INSERTION), &sorted).cost;
        assert!(
            quick_cost > 10.0 * radix_cost,
            "quick {quick_cost} vs radix {radix_cost}"
        );
        assert!(
            insertion_cost < radix_cost,
            "insertion on sorted {insertion_cost} should beat radix {radix_cost}"
        );
    }

    #[test]
    fn run_report_matches_sort_cost_when_no_abort() {
        let b = bench();
        let space = b.space();
        let cfg = space.default_config();
        let input: Vec<f64> = (0..500).map(|i| ((i * 31) % 101) as f64).collect();
        let (_, cost) = b.sort(&cfg, &input);
        let report = b.run(&cfg, &input);
        assert_eq!(report.cost, cost);
        assert!(report.accuracy.is_none());
    }

    #[test]
    fn cap_aborts_degenerate_configs() {
        // Pure insertion at the top of a large reversed input exceeds the
        // cap; the report must carry cost >= cap rather than running the
        // full quadratic course.
        let b = PolySort {
            cap_factor: 1.0, // aggressive cap for the test
            ..PolySort::new(4096)
        };
        let space = b.space();
        let mut cfg = space.default_config();
        for i in 0..3 {
            cfg.set(
                space.index_of(&format!("sort.cutoff{i}")).unwrap(),
                intune_core::ParamValue::Int(1),
            );
        }
        cfg.set(
            space.index_of("sort.top").unwrap(),
            intune_core::ParamValue::Choice(alg::INSERTION),
        );
        let reversed: Vec<f64> = (0..4000).rev().map(|i| i as f64).collect();
        let n = 4000.0_f64;
        let cap = 1.0 * n * n.log2();
        let report = b.run(&cfg, &reversed);
        assert!(report.cost >= cap, "cost {} below cap {cap}", report.cost);
        assert!(
            report.cost < n * n, // did NOT run to quadratic completion
            "cost {} suggests no abort",
            report.cost
        );
    }

    #[test]
    fn features_declared_and_extractable() {
        let b = bench();
        let input: Vec<f64> = (0..256).map(|i| (i % 17) as f64).collect();
        let fv = b.extract_all(&input);
        assert_eq!(fv.len(), 12); // 4 properties x 3 levels
        assert!(fv.dense().iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn space_size_is_large() {
        let b = PolySort::new(1 << 20).with_selector_levels(8);
        assert!(b.space().log10_size() > 30.0);
    }
}
