//! Input generators for the Sort benchmark.
//!
//! `sort2` in the paper uses "synthetic inputs generated from a collection
//! of input generators meant to span the space of features" —
//! [`SortInputClass::all`] is that collection. `sort1` uses the real-world
//! CCR FOIA contractor extract; [`SortInputClass::CcrLike`] simulates its
//! relevant characteristics (heavy duplication from categorical columns,
//! long nearly-sorted runs from registry ordering, magnitude clusters from
//! dollar amounts) since the raw dataset is not redistributable — see
//! DESIGN.md §4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Families of sorting inputs spanning the feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortInputClass {
    /// Uniform random doubles.
    Random,
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending.
    Reversed,
    /// Sorted with a fraction of random adjacent swaps.
    AlmostSorted,
    /// Few distinct values (heavy duplication).
    FewDistinct,
    /// Gaussian-distributed values.
    Gaussian,
    /// Exponentially distributed values (heavy right tail).
    Exponential,
    /// Ascending then descending (organ pipe).
    OrganPipe,
    /// Concatenation of short sorted runs.
    Runs,
    /// Simulated CCR-FOIA-style registry extract (the `sort1` stand-in).
    CcrLike,
}

impl SortInputClass {
    /// All generator classes (the `sort2` collection).
    pub fn all() -> &'static [SortInputClass] {
        use SortInputClass::*;
        &[
            Random,
            Sorted,
            Reversed,
            AlmostSorted,
            FewDistinct,
            Gaussian,
            Exponential,
            OrganPipe,
            Runs,
            CcrLike,
        ]
    }

    /// Generates one input of `n` elements.
    pub fn generate(self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        use SortInputClass::*;
        match self {
            Random => (0..n).map(|_| rng.gen_range(0.0..1e6)).collect(),
            Sorted => {
                let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e6)).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            }
            Reversed => {
                let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1e6)).collect();
                v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                v
            }
            AlmostSorted => {
                let mut v: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let swaps = (n / 20).max(1);
                for _ in 0..swaps {
                    let i = rng.gen_range(0..n.saturating_sub(1).max(1));
                    v.swap(i, (i + 1).min(n - 1));
                }
                v
            }
            FewDistinct => {
                let k = rng.gen_range(2usize..16);
                let values: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..1e4)).collect();
                (0..n).map(|_| values[rng.gen_range(0..k)]).collect()
            }
            Gaussian => (0..n)
                .map(|_| {
                    // Box-Muller.
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * 100.0
                })
                .collect(),
            Exponential => (0..n)
                .map(|_| {
                    let u: f64 = rng.gen_range(1e-12..1.0);
                    -u.ln() * 1000.0
                })
                .collect(),
            OrganPipe => {
                let half = n / 2;
                let mut v: Vec<f64> = (0..half).map(|i| i as f64).collect();
                v.extend((0..(n - half)).rev().map(|i| i as f64));
                v
            }
            Runs => {
                let run_len = rng.gen_range(4usize..64).min(n.max(1));
                let mut v = Vec::with_capacity(n);
                while v.len() < n {
                    let base: f64 = rng.gen_range(0.0..1e6);
                    let take = run_len.min(n - v.len());
                    for i in 0..take {
                        v.push(base + i as f64);
                    }
                }
                v
            }
            CcrLike => ccr_like(n, rng),
        }
    }
}

/// Simulates a CCR-FOIA-style registry extract: a mixture of
/// * categorical code columns (drawn from a small code book → heavy
///   duplication),
/// * registry-ordered identifiers (nearly sorted ascending with occasional
///   out-of-order late registrations),
/// * dollar-amount-like values (log-normal-ish magnitude clusters).
///
/// Real extracts vary by which columns a query slices: some pulls are
/// mostly codes, others mostly identifiers or amounts. The per-input
/// mixture proportions are therefore randomized, which is exactly the
/// input diversity that makes `sort1` benefit from input adaptation.
fn ccr_like(n: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    let codes: Vec<f64> = (0..rng.gen_range(8..40)).map(|c| (c * 97) as f64).collect();
    // Random mixture proportions per input (a query slice of the registry).
    // Half the extracts are *pure* single-column pulls — just the code
    // column, just the registry ids, or just the amounts — which is where
    // adaptation pays the most; the rest are mixed multi-column extracts.
    let (w_dup, w_seq, w_amt): (f64, f64, f64) = if rng.gen_bool(0.5) {
        match rng.gen_range(0..3) {
            0 => (1.0, 0.0, 0.0),
            1 => (0.0, 1.0, 0.0),
            _ => (0.0, 0.0, 1.0),
        }
    } else {
        (
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
        )
    };
    let total = (w_dup + w_seq + w_amt).max(1e-9);
    let dup_end = ((w_dup / total) * n as f64) as usize;
    let seq_end = dup_end + ((w_seq / total) * n as f64) as usize;
    let seq_end = seq_end.min(n);
    // Duplicated categorical codes.
    for _ in 0..dup_end {
        v.push(codes[rng.gen_range(0..codes.len())]);
    }
    // Nearly sorted registration identifiers; the rate of out-of-order
    // late registrations varies by extract (0 = a perfectly ordered pull).
    let outlier_rate = if rng.gen_bool(0.3) {
        0.0
    } else {
        rng.gen_range(0.0..0.08)
    };
    let mut id = 1_000_000.0_f64;
    for _ in dup_end..seq_end {
        id += rng.gen_range(1.0..50.0);
        if outlier_rate > 0.0 && rng.gen_bool(outlier_rate) {
            // Late registration filed out of order.
            v.push(id - rng.gen_range(100.0..5000.0));
        } else {
            v.push(id);
        }
    }
    // Contract dollar amounts: magnitude clusters.
    for _ in seq_end..n {
        let magnitude = 10f64.powi(rng.gen_range(2..8));
        v.push((rng.gen_range(1.0..10.0) * magnitude).round());
    }
    v
}

/// A corpus of sorting inputs with per-input class labels.
#[derive(Debug, Clone)]
pub struct SortCorpus {
    /// The inputs.
    pub inputs: Vec<Vec<f64>>,
    /// The class each input was drawn from (diagnostics only; the learner
    /// never sees these).
    pub classes: Vec<SortInputClass>,
}

impl SortCorpus {
    /// The `sort2` corpus: `count` inputs cycling through every generator
    /// class, sizes drawn log-uniformly from `[min_n, max_n]`.
    pub fn synthetic(count: usize, min_n: usize, max_n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = SortInputClass::all();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = classes[i % classes.len()];
            let n = log_uniform_size(min_n, max_n, &mut rng);
            inputs.push(class.generate(n, &mut rng));
            labels.push(class);
        }
        SortCorpus {
            inputs,
            classes: labels,
        }
    }

    /// The `sort1` stand-in corpus: all CCR-like inputs.
    pub fn ccr(count: usize, min_n: usize, max_n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(count);
        for _ in 0..count {
            let n = log_uniform_size(min_n, max_n, &mut rng);
            inputs.push(SortInputClass::CcrLike.generate(n, &mut rng));
        }
        SortCorpus {
            classes: vec![SortInputClass::CcrLike; inputs.len()],
            inputs,
        }
    }
}

fn log_uniform_size(min_n: usize, max_n: usize, rng: &mut StdRng) -> usize {
    let lo = (min_n.max(2) as f64).ln();
    let hi = (max_n.max(min_n + 1) as f64).ln();
    rng.gen_range(lo..=hi).exp().round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{extract, prop};

    #[test]
    fn all_classes_generate_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in SortInputClass::all() {
            let v = class.generate(333, &mut rng);
            assert_eq!(v.len(), 333, "{class:?}");
            assert!(v.iter().all(|x| x.is_finite()), "{class:?}");
        }
    }

    #[test]
    fn classes_span_the_feature_space() {
        let mut rng = StdRng::seed_from_u64(2);
        let sorted = SortInputClass::Sorted.generate(1000, &mut rng);
        let random = SortInputClass::Random.generate(1000, &mut rng);
        let few = SortInputClass::FewDistinct.generate(1000, &mut rng);
        assert!(extract(prop::SORTEDNESS, 2, &sorted).value > 0.99);
        assert!(extract(prop::SORTEDNESS, 2, &random).value < 0.7);
        assert!(extract(prop::DUPLICATION, 2, &few).value > 0.9);
        assert!(extract(prop::DUPLICATION, 2, &random).value < 0.1);
    }

    #[test]
    fn ccr_like_extracts_are_diverse() {
        // Registry pulls vary by which columns dominate: across a corpus we
        // must see duplication-heavy, nearly-sorted, and mixed extracts.
        let mut rng = StdRng::seed_from_u64(3);
        let mut max_dup: f64 = 0.0;
        let mut max_sortedness: f64 = 0.0;
        let mut min_sortedness: f64 = 1.0;
        for _ in 0..40 {
            let v = SortInputClass::CcrLike.generate(3000, &mut rng);
            max_dup = max_dup.max(extract(prop::DUPLICATION, 2, &v).value);
            let s = extract(prop::SORTEDNESS, 2, &v).value;
            max_sortedness = max_sortedness.max(s);
            min_sortedness = min_sortedness.min(s);
        }
        assert!(max_dup > 0.5, "no duplication-heavy extract: {max_dup}");
        assert!(
            max_sortedness > 0.95,
            "no nearly-sorted extract: {max_sortedness}"
        );
        assert!(
            min_sortedness < 0.8,
            "no disordered extract: {min_sortedness}"
        );
    }

    #[test]
    fn corpus_deterministic_and_sized() {
        let a = SortCorpus::synthetic(30, 100, 1000, 7);
        let b = SortCorpus::synthetic(30, 100, 1000, 7);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.inputs.len(), 30);
        assert!(a.inputs.iter().all(|v| v.len() >= 100 && v.len() <= 1001));
    }

    #[test]
    fn corpus_cycles_all_classes() {
        let c = SortCorpus::synthetic(SortInputClass::all().len(), 64, 128, 0);
        let distinct: std::collections::HashSet<_> = c.classes.iter().collect();
        assert_eq!(distinct.len(), SortInputClass::all().len());
    }
}
