//! # intune-sortlib
//!
//! The paper's **Sort** benchmark: a polyalgorithm over InsertionSort,
//! QuickSort, MergeSort, RadixSort and BitonicSort, where a recursive
//! [`intune_core::Selector`] decides per sub-problem size which algorithm to
//! apply (Figure 1/2 of the paper). Input sensitivity arises because each
//! algorithm has pathological and favorable inputs:
//!
//! * InsertionSort — linear on (almost-)sorted data, quadratic on random;
//! * QuickSort — Lomuto partition with first-element pivot: quadratic on
//!   sorted *and* on heavily duplicated inputs;
//! * MergeSort — robust `k`-way merge with a tunable number of ways;
//! * RadixSort — linear passes over bit-keys, insensitive to order, with a
//!   fixed per-pass overhead that loses on small inputs;
//! * BitonicSort — `O(n log² n)` compare-exchange network with a discounted
//!   per-op weight modelling its vector/parallel friendliness.
//!
//! Input features ([`features`]) mirror the paper: *sortedness*,
//! *duplication*, *deviation* and a *test-sort probe*, each at three
//! sampling levels of increasing cost. Generators ([`generators`]) span the
//! feature space and include a CCR-FOIA-like simulator standing in for the
//! paper's real-world `sort1` dataset (see DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod features;
pub mod generators;
pub mod poly;

pub use generators::{SortCorpus, SortInputClass};
pub use poly::PolySort;
