//! Property-based tests for the sort benchmark.

use intune_core::{Benchmark, Cost};
use intune_sortlib::algorithms::{
    bitonic_sort, f64_to_ordered_bits, insertion_sort, is_sorted, radix_sort,
};
use intune_sortlib::{PolySort, SortInputClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each base algorithm sorts and preserves the multiset of elements.
    #[test]
    fn base_algorithms_sort_and_permute(
        data in prop::collection::vec(-1e9f64..1e9, 0..200),
        which in 0usize..3,
    ) {
        let mut v = data.clone();
        let mut cost = Cost::new();
        match which {
            0 => insertion_sort(&mut v, &mut cost),
            1 => radix_sort(&mut v, &mut cost),
            _ => bitonic_sort(&mut v, &mut cost),
        }
        prop_assert!(is_sorted(&v));
        let mut expect = data;
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(v, expect);
    }

    /// The ordered-bits key is a strict monotone embedding of f64 order.
    #[test]
    fn ordered_bits_monotone(a in -1e300f64..1e300, b in -1e300f64..1e300) {
        let (ka, kb) = (f64_to_ordered_bits(a), f64_to_ordered_bits(b));
        match a.partial_cmp(&b).unwrap() {
            std::cmp::Ordering::Less => prop_assert!(ka < kb),
            std::cmp::Ordering::Greater => prop_assert!(ka > kb),
            std::cmp::Ordering::Equal => prop_assert_eq!(ka, kb),
        }
    }

    /// The polyalgorithm's reported cost is deterministic and positive for
    /// nonempty inputs, for any configuration.
    #[test]
    fn poly_cost_deterministic(seed in 0u64..5_000, class_idx in 0usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let class = SortInputClass::all()[class_idx];
        let input = class.generate(300, &mut rng);
        let program = PolySort::new(512);
        let mut cfg_rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        let cfg = program.space().random(&mut cfg_rng);
        let a = program.run(&cfg, &input);
        let b = program.run(&cfg, &input);
        prop_assert_eq!(a, b);
        prop_assert!(a.cost > 0.0);
    }

    /// Feature values live in their documented ranges.
    #[test]
    fn feature_ranges(seed in 0u64..5_000, class_idx in 0usize..10, level in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let class = SortInputClass::all()[class_idx];
        let input = class.generate(200, &mut rng);
        let program = PolySort::new(512);
        let sortedness = program.extract(0, level, &input).value;
        let duplication = program.extract(1, level, &input).value;
        prop_assert!((0.0..=1.0).contains(&sortedness), "sortedness {}", sortedness);
        prop_assert!((0.0..=1.0).contains(&duplication), "duplication {}", duplication);
        prop_assert!(program.extract(2, level, &input).value >= 0.0);
        prop_assert!(program.extract(3, level, &input).value >= 0.0);
    }
}
