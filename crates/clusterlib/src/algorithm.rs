//! The tunable k-means variant with three initialization strategies.
//!
//! Determinism: "random" initialization derives its seed from the input
//! itself (length + first coordinates), so the same configuration on the
//! same input always produces the same outcome — a requirement of the
//! `Benchmark` contract.

/// A 2-D point.
pub type Point = [f64; 2];

/// Initialization strategies (the benchmark's `either…or` choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Deterministically pseudo-random sample of k points.
    Random,
    /// The first k points of the input (cheapest, order-sensitive).
    Prefix,
    /// Greedy farthest-point seeding (k-means++-flavored "centerplus";
    /// costs an extra pass per center).
    CenterPlus,
}

impl InitStrategy {
    /// Decodes a switch gene value.
    ///
    /// # Panics
    /// Panics if `idx > 2`.
    pub fn from_index(idx: usize) -> Self {
        match idx {
            0 => InitStrategy::Random,
            1 => InitStrategy::Prefix,
            2 => InitStrategy::CenterPlus,
            other => panic!("init strategy index {other} out of range"),
        }
    }
}

/// Result of one configured k-means run.
#[derive(Debug, Clone)]
pub struct KmeansOutcome {
    /// Final cluster centers.
    pub centers: Vec<Point>,
    /// Sum of point-to-assigned-center distances (the paper's Σdᵢ).
    pub total_dist: f64,
    /// Deterministic abstract cost (distance evaluations).
    pub cost: f64,
}

fn dist(a: Point, b: Point) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

/// A tiny deterministic LCG used for the Random init (seeded from data).
fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn input_seed(points: &[Point]) -> u64 {
    let mut h = points.len() as u64;
    for p in points.iter().take(8) {
        h = h
            .wrapping_mul(0x100000001b3)
            .wrapping_add(p[0].to_bits() ^ p[1].to_bits().rotate_left(17));
    }
    h
}

fn init_centers(points: &[Point], k: usize, strategy: InitStrategy, cost: &mut f64) -> Vec<Point> {
    let n = points.len();
    let k = k.min(n).max(1);
    match strategy {
        InitStrategy::Random => {
            let mut state = input_seed(points);
            let mut centers = Vec::with_capacity(k);
            for _ in 0..k {
                let idx = (lcg_next(&mut state) as usize) % n;
                centers.push(points[idx]);
            }
            *cost += k as f64;
            centers
        }
        InitStrategy::Prefix => {
            *cost += k as f64;
            points.iter().take(k).copied().collect()
        }
        InitStrategy::CenterPlus => {
            // Farthest-point ("center plus") greedy seeding: one pass over
            // the data per center.
            let mut centers = vec![points[0]];
            let mut min_d: Vec<f64> = points.iter().map(|&p| dist(p, centers[0])).collect();
            *cost += n as f64;
            while centers.len() < k {
                let (best, _) = min_d
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("nonempty");
                centers.push(points[best]);
                for (i, &p) in points.iter().enumerate() {
                    min_d[i] = min_d[i].min(dist(p, *centers.last().unwrap()));
                }
                *cost += n as f64;
            }
            centers
        }
    }
}

/// Runs k-means with the given init, `k`, and iteration budget, charging one
/// cost unit per distance evaluation.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans_run(points: &[Point], k: usize, iters: usize, init: InitStrategy) -> KmeansOutcome {
    assert!(!points.is_empty(), "kmeans needs points");
    assert!(k > 0, "kmeans needs k > 0");
    let k = k.min(points.len());
    let mut cost = 0.0;
    let mut centers = init_centers(points, k, init, &mut cost);
    let mut labels = vec![0usize; points.len()];

    for _ in 0..iters.max(1) {
        // Assign.
        for (i, &p) in points.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, &center) in centers.iter().enumerate() {
                let d = dist(p, center);
                if d < best.1 {
                    best = (c, d);
                }
            }
            labels[i] = best.0;
        }
        cost += (points.len() * centers.len()) as f64;
        // Update.
        let mut sums = vec![[0.0f64; 2]; k];
        let mut counts = vec![0usize; k];
        for (&l, &p) in labels.iter().zip(points) {
            sums[l][0] += p[0];
            sums[l][1] += p[1];
            counts[l] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centers[c] = [sums[c][0] / counts[c] as f64, sums[c][1] / counts[c] as f64];
            }
        }
        cost += points.len() as f64;
    }

    // Final assignment distance sum.
    let mut total = 0.0;
    for &p in points {
        let mut best = f64::INFINITY;
        for &c in &centers {
            best = best.min(dist(p, c));
        }
        total += best;
    }
    cost += (points.len() * centers.len()) as f64;

    KmeansOutcome {
        centers,
        total_dist: total,
        cost,
    }
}

/// A thorough reference clustering: center-plus seeding, generous iteration
/// budget. Generators call this once per input to precompute the canonical
/// distance sum `Σd̂ᵢ` used by the accuracy metric.
pub fn canonical_dist(points: &[Point], true_k: usize) -> f64 {
    kmeans_run(points, true_k.max(1), 40, InitStrategy::CenterPlus).total_dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_blobs() -> Vec<Point> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)] {
            for i in 0..25 {
                pts.push([
                    cx + ((i * 13) % 5) as f64 * 0.1,
                    cy + ((i * 7) % 5) as f64 * 0.1,
                ]);
            }
        }
        pts
    }

    #[test]
    fn centerplus_recovers_four_blobs() {
        let pts = square_blobs();
        let out = kmeans_run(&pts, 4, 15, InitStrategy::CenterPlus);
        // Tight blobs: total distance should be tiny relative to spread.
        assert!(out.total_dist < 60.0, "total {}", out.total_dist);
        assert_eq!(out.centers.len(), 4);
    }

    #[test]
    fn prefix_init_is_cheapest_centerplus_most_expensive() {
        let pts = square_blobs();
        let p = kmeans_run(&pts, 4, 5, InitStrategy::Prefix);
        let c = kmeans_run(&pts, 4, 5, InitStrategy::CenterPlus);
        assert!(p.cost < c.cost);
    }

    #[test]
    fn prefix_init_underperforms_on_ordered_blobs() {
        // Prefix takes all seeds from the first blob; with 1 iteration it
        // cannot recover.
        let pts = square_blobs();
        let p = kmeans_run(&pts, 4, 1, InitStrategy::Prefix);
        let c = kmeans_run(&pts, 4, 1, InitStrategy::CenterPlus);
        assert!(
            p.total_dist > 2.0 * c.total_dist,
            "prefix {} vs centerplus {}",
            p.total_dist,
            c.total_dist
        );
    }

    #[test]
    fn more_iterations_never_hurt_much() {
        let pts = square_blobs();
        let few = kmeans_run(&pts, 4, 1, InitStrategy::Random);
        let many = kmeans_run(&pts, 4, 20, InitStrategy::Random);
        assert!(many.total_dist <= few.total_dist + 1e-9);
        assert!(many.cost > few.cost);
    }

    #[test]
    fn deterministic_per_input() {
        let pts = square_blobs();
        let a = kmeans_run(&pts, 3, 5, InitStrategy::Random);
        let b = kmeans_run(&pts, 3, 5, InitStrategy::Random);
        assert_eq!(a.total_dist, b.total_dist);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn k_clamped_to_points() {
        let pts: Vec<Point> = vec![[0.0, 0.0], [1.0, 1.0]];
        let out = kmeans_run(&pts, 10, 3, InitStrategy::CenterPlus);
        assert!(out.centers.len() <= 2);
        assert!(out.total_dist < 1e-9);
    }

    #[test]
    fn canonical_is_tight() {
        let pts = square_blobs();
        let canon = canonical_dist(&pts, 4);
        let sloppy = kmeans_run(&pts, 2, 2, InitStrategy::Prefix);
        assert!(canon < sloppy.total_dist);
    }
}
