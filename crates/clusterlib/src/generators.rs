//! Input generators for the Clustering benchmark.
//!
//! `clustering2` uses synthetic generators spanning the feature space;
//! `clustering1` in the paper clusters the UCI Poker Hand dataset —
//! [`ClusterInputClass::PokerLike`] simulates its relevant structure
//! (discrete low-cardinality rank/suit axes with heavy coordinate
//! repetition) since the learner only ever sees 2-D geometry (DESIGN.md §4).

use crate::algorithm::{canonical_dist, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One clustering input: the points plus the precomputed canonical distance
/// sum `Σd̂ᵢ` that anchors the accuracy metric.
#[derive(Debug, Clone)]
pub struct ClusterInput {
    /// The 2-D points to cluster.
    pub points: Vec<Point>,
    /// Σ point-to-center distance under the canonical (thorough) clustering.
    pub canonical_dist: f64,
    /// The cluster count the canonical run used (diagnostics).
    pub canonical_k: usize,
}

/// Families of clustering inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterInputClass {
    /// `k` Gaussian blobs with varied spreads.
    Blobs {
        /// Number of blobs.
        k: usize,
    },
    /// Uniform noise over a square (no real clusters).
    Uniform,
    /// Two concentric rings (k-means-hostile geometry).
    Rings,
    /// A regular grid of tight clumps.
    Grid,
    /// Elongated diagonal stripes (anisotropic).
    Stripes,
    /// Poker-Hand-like discrete lattice with repeated coordinates
    /// (the `clustering1` stand-in).
    PokerLike,
}

impl ClusterInputClass {
    /// The synthetic (`clustering2`) class mix.
    pub fn all() -> Vec<ClusterInputClass> {
        vec![
            ClusterInputClass::Blobs { k: 3 },
            ClusterInputClass::Blobs { k: 8 },
            ClusterInputClass::Blobs { k: 16 },
            ClusterInputClass::Uniform,
            ClusterInputClass::Rings,
            ClusterInputClass::Grid,
            ClusterInputClass::Stripes,
            ClusterInputClass::PokerLike,
        ]
    }

    /// The cluster count a canonical run should use for this class.
    fn true_k(self) -> usize {
        match self {
            ClusterInputClass::Blobs { k } => k,
            ClusterInputClass::Uniform => 8,
            ClusterInputClass::Rings => 8,
            ClusterInputClass::Grid => 9,
            ClusterInputClass::Stripes => 6,
            ClusterInputClass::PokerLike => 13,
        }
    }

    /// Generates one input with `n` points and precomputes its canonical
    /// clustering distance.
    pub fn generate(self, n: usize, rng: &mut StdRng) -> ClusterInput {
        let points = self.points(n, rng);
        let k = self.true_k();
        ClusterInput {
            canonical_dist: canonical_dist(&points, k),
            canonical_k: k,
            points,
        }
    }

    fn points(self, n: usize, rng: &mut StdRng) -> Vec<Point> {
        use ClusterInputClass::*;
        match self {
            Blobs { k } => {
                let centers: Vec<Point> = (0..k)
                    .map(|_| [rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)])
                    .collect();
                (0..n)
                    .map(|i| {
                        let c = centers[i % k];
                        let spread = 2.0 + (i % k) as f64;
                        [c[0] + gaussian(rng) * spread, c[1] + gaussian(rng) * spread]
                    })
                    .collect()
            }
            Uniform => (0..n)
                .map(|_| [rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)])
                .collect(),
            Rings => (0..n)
                .map(|i| {
                    let r = if i % 2 == 0 { 30.0 } else { 80.0 };
                    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                    [
                        r * theta.cos() + gaussian(rng) * 2.0,
                        r * theta.sin() + gaussian(rng) * 2.0,
                    ]
                })
                .collect(),
            Grid => (0..n)
                .map(|i| {
                    let cell = i % 9;
                    let cx = ((cell % 3) as f64 - 1.0) * 60.0;
                    let cy = ((cell / 3) as f64 - 1.0) * 60.0;
                    [cx + gaussian(rng) * 1.5, cy + gaussian(rng) * 1.5]
                })
                .collect(),
            Stripes => (0..n)
                .map(|i| {
                    let stripe = (i % 6) as f64;
                    let t = rng.gen_range(-50.0..50.0);
                    [
                        t + stripe * 30.0 + gaussian(rng),
                        t - stripe * 30.0 + gaussian(rng),
                    ]
                })
                .collect(),
            PokerLike => {
                // Rank (1..13) x suit (1..4) lattice, scaled; hands cluster
                // around a handful of popular rank/suit combinations.
                let popular: Vec<Point> = (0..13)
                    .map(|r| [(r + 1) as f64 * 10.0, ((r % 4) + 1) as f64 * 10.0])
                    .collect();
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(0.7) {
                            let p = popular[rng.gen_range(0..popular.len())];
                            // Exact duplicates are common in discrete data.
                            p
                        } else {
                            [
                                rng.gen_range(1..=13) as f64 * 10.0,
                                rng.gen_range(1..=4) as f64 * 10.0,
                            ]
                        }
                    })
                    .collect()
            }
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A corpus of clustering inputs.
#[derive(Debug, Clone)]
pub struct ClusterCorpus {
    /// The inputs (with canonical distances precomputed).
    pub inputs: Vec<ClusterInput>,
    /// Generator class per input (diagnostics only).
    pub classes: Vec<ClusterInputClass>,
}

impl ClusterCorpus {
    /// The `clustering2` corpus: cycles through all synthetic classes.
    pub fn synthetic(count: usize, min_n: usize, max_n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = ClusterInputClass::all();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = classes[i % classes.len()];
            let n = rng.gen_range(min_n..=max_n.max(min_n));
            inputs.push(class.generate(n, &mut rng));
            labels.push(class);
        }
        ClusterCorpus {
            inputs,
            classes: labels,
        }
    }

    /// The `clustering1` stand-in corpus: all Poker-like inputs.
    pub fn poker(count: usize, min_n: usize, max_n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = Vec::with_capacity(count);
        for _ in 0..count {
            let n = rng.gen_range(min_n..=max_n.max(min_n));
            inputs.push(ClusterInputClass::PokerLike.generate(n, &mut rng));
        }
        ClusterCorpus {
            classes: vec![ClusterInputClass::PokerLike; inputs.len()],
            inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_generate_sized_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in ClusterInputClass::all() {
            let input = class.generate(150, &mut rng);
            assert_eq!(input.points.len(), 150, "{class:?}");
            assert!(input.canonical_dist.is_finite(), "{class:?}");
            assert!(input.canonical_dist >= 0.0, "{class:?}");
        }
    }

    #[test]
    fn blobs_have_smaller_canonical_dist_than_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let blobs = ClusterInputClass::Blobs { k: 4 }.generate(300, &mut rng);
        let uniform = ClusterInputClass::Uniform.generate(300, &mut rng);
        assert!(blobs.canonical_dist < uniform.canonical_dist);
    }

    #[test]
    fn poker_like_has_exact_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        let input = ClusterInputClass::PokerLike.generate(500, &mut rng);
        let distinct: std::collections::HashSet<_> = input
            .points
            .iter()
            .map(|p| (p[0].to_bits(), p[1].to_bits()))
            .collect();
        assert!(
            distinct.len() < 100,
            "poker-like data should be heavily duplicated, got {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn corpus_deterministic() {
        let a = ClusterCorpus::synthetic(10, 100, 200, 4);
        let b = ClusterCorpus::synthetic(10, 100, 200, 4);
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.points, y.points);
            assert_eq!(x.canonical_dist, y.canonical_dist);
        }
    }
}
