//! Input feature extractors for the Clustering benchmark: radius, centers,
//! density and range at three sampling levels.
//!
//! The *centers* extractor (grid-density peak counting) is deliberately the
//! most expensive relative to execution time — the paper observes exactly
//! this on `clustering2`, where paying for the centers feature lowers the
//! effective speedup from 1.45× to 1.18×.

use crate::algorithm::Point;
use intune_core::FeatureSample;

/// Property indices (order matches `Clustering::properties`).
pub mod prop {
    /// Max distance from the sample mean.
    pub const RADIUS: usize = 0;
    /// Estimated number of cluster centers (grid-density peaks).
    pub const CENTERS: usize = 1;
    /// Points per occupied grid cell.
    pub const DENSITY: usize = 2;
    /// Bounding-box diagonal.
    pub const RANGE: usize = 3;
}

fn sample(points: &[Point], level: usize) -> (Vec<Point>, f64) {
    let n = points.len();
    if n == 0 {
        return (vec![[0.0, 0.0]], 1.0);
    }
    let m = match level {
        0 => n.min(64),
        1 => n.min(512),
        _ => n,
    }
    .max(1);
    let out: Vec<Point> = (0..m).map(|i| points[i * n / m]).collect();
    (out, m as f64)
}

fn bbox(points: &[Point]) -> (Point, Point) {
    let mut lo = [f64::INFINITY, f64::INFINITY];
    let mut hi = [f64::NEG_INFINITY, f64::NEG_INFINITY];
    for p in points {
        for d in 0..2 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    (lo, hi)
}

/// Extracts property `property` at sampling `level`.
///
/// # Panics
/// Panics if `property` is out of range (Clustering declares 4).
pub fn extract(property: usize, level: usize, points: &[Point]) -> FeatureSample {
    let (s, m) = sample(points, level);
    extract_sampled(property, level, &s, m)
}

/// Extracts all four properties at one sampling level, subsampling the
/// point cloud **once** instead of once per property — the fused pass
/// behind `Clustering::extract_all` on the serving hot path. Bit-identical
/// to calling [`extract`] per property: both paths share
/// `extract_sampled`, and the sample is deterministic for a given
/// (points, level).
pub fn extract_level(level: usize, points: &[Point]) -> [FeatureSample; 4] {
    let (s, m) = sample(points, level);
    [
        extract_sampled(prop::RADIUS, level, &s, m),
        extract_sampled(prop::CENTERS, level, &s, m),
        extract_sampled(prop::DENSITY, level, &s, m),
        extract_sampled(prop::RANGE, level, &s, m),
    ]
}

fn extract_sampled(property: usize, level: usize, s: &[Point], m: f64) -> FeatureSample {
    match property {
        prop::RADIUS => {
            let cx = s.iter().map(|p| p[0]).sum::<f64>() / s.len() as f64;
            let cy = s.iter().map(|p| p[1]).sum::<f64>() / s.len() as f64;
            let r = s
                .iter()
                .map(|p| ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt())
                .fold(0.0, f64::max);
            FeatureSample::new(r, 2.0 * m)
        }
        prop::CENTERS => centers_estimate(s, level, m),
        prop::DENSITY => {
            // Points per occupied cell of a g × g grid.
            let g = 8usize;
            let (lo, hi) = bbox(s);
            let w = (hi[0] - lo[0]).max(1e-12);
            let h = (hi[1] - lo[1]).max(1e-12);
            let mut occupied = std::collections::HashSet::new();
            for p in s {
                let gx = (((p[0] - lo[0]) / w) * (g as f64 - 1.0)) as usize;
                let gy = (((p[1] - lo[1]) / h) * (g as f64 - 1.0)) as usize;
                occupied.insert((gx, gy));
            }
            FeatureSample::new(s.len() as f64 / occupied.len().max(1) as f64, 2.0 * m)
        }
        prop::RANGE => {
            let (lo, hi) = bbox(s);
            let dx = (hi[0] - lo[0]).max(0.0);
            let dy = (hi[1] - lo[1]).max(0.0);
            FeatureSample::new((dx * dx + dy * dy).sqrt(), m)
        }
        other => panic!("clustering has 4 properties, got {other}"),
    }
}

/// Estimates the number of clusters by counting local maxima of a smoothed
/// grid histogram. Grid resolution grows with the level, and the smoothing
/// pass makes this the costliest extractor (≈ m + g² · 9 work).
fn centers_estimate(s: &[Point], level: usize, m: f64) -> FeatureSample {
    let g = match level {
        0 => 6,
        1 => 12,
        _ => 24,
    };
    let (lo, hi) = bbox(s);
    let w = (hi[0] - lo[0]).max(1e-12);
    let h = (hi[1] - lo[1]).max(1e-12);
    let mut grid = vec![vec![0.0f64; g]; g];
    for p in s {
        let gx = (((p[0] - lo[0]) / w) * (g as f64 - 1.0)) as usize;
        let gy = (((p[1] - lo[1]) / h) * (g as f64 - 1.0)) as usize;
        grid[gx][gy] += 1.0;
    }
    // 3x3 box smoothing. Indexed loops: the stencil reads (x±1, y±1).
    let mut smooth = vec![vec![0.0f64; g]; g];
    #[allow(clippy::needless_range_loop)]
    for x in 0..g {
        for y in 0..g {
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < g && (ny as usize) < g {
                        acc += grid[nx as usize][ny as usize];
                        cnt += 1.0;
                    }
                }
            }
            smooth[x][y] = acc / cnt;
        }
    }
    // Count strict local maxima above the mean density.
    let mean = s.len() as f64 / (g * g) as f64;
    let mut peaks = 0usize;
    for x in 0..g {
        for y in 0..g {
            if smooth[x][y] <= mean {
                continue;
            }
            let mut is_peak = true;
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx >= 0
                        && ny >= 0
                        && (nx as usize) < g
                        && (ny as usize) < g
                        && smooth[nx as usize][ny as usize] > smooth[x][y]
                    {
                        is_peak = false;
                    }
                }
            }
            if is_peak {
                peaks += 1;
            }
        }
    }
    let cost = m + (g * g * 18) as f64;
    FeatureSample::new(peaks as f64, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ClusterInputClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(k: usize, n: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(5);
        ClusterInputClass::Blobs { k }.generate(n, &mut rng).points
    }

    #[test]
    fn radius_and_range_scale_with_spread() {
        let tight: Vec<Point> = (0..100)
            .map(|i| [((i % 10) as f64) * 0.01, ((i / 10) as f64) * 0.01])
            .collect();
        let wide: Vec<Point> = tight.iter().map(|p| [p[0] * 100.0, p[1] * 100.0]).collect();
        assert!(
            extract(prop::RADIUS, 2, &wide).value > 50.0 * extract(prop::RADIUS, 2, &tight).value
        );
        assert!(
            extract(prop::RANGE, 2, &wide).value > 50.0 * extract(prop::RANGE, 2, &tight).value
        );
    }

    #[test]
    fn centers_tracks_cluster_count() {
        let few = blobs(2, 600);
        let many = blobs(9, 600);
        let few_est = extract(prop::CENTERS, 2, &few).value;
        let many_est = extract(prop::CENTERS, 2, &many).value;
        assert!(
            many_est > few_est,
            "9-blob estimate {many_est} should exceed 2-blob estimate {few_est}"
        );
    }

    #[test]
    fn centers_is_most_expensive_at_low_levels() {
        let pts = blobs(4, 64);
        let centers_cost = extract(prop::CENTERS, 0, &pts).cost;
        for p in [prop::RADIUS, prop::DENSITY, prop::RANGE] {
            assert!(
                centers_cost > extract(p, 0, &pts).cost,
                "centers should cost more than property {p}"
            );
        }
    }

    #[test]
    fn density_high_for_duplicated_lattice() {
        let lattice: Vec<Point> = (0..400)
            .map(|i| [(i % 4) as f64, ((i / 4) % 2) as f64])
            .collect();
        let spread = blobs(8, 400);
        assert!(
            extract(prop::DENSITY, 2, &lattice).value > extract(prop::DENSITY, 2, &spread).value
        );
    }

    #[test]
    fn fused_level_extraction_is_bit_identical() {
        for pts in [vec![], vec![[1.0, 2.0]], blobs(3, 90), blobs(7, 1500)] {
            for level in 0..3 {
                let fused = extract_level(level, &pts);
                for (p, sample) in fused.iter().enumerate() {
                    let single = extract(p, level, &pts);
                    assert!(
                        sample.value.to_bits() == single.value.to_bits()
                            && sample.cost.to_bits() == single.cost.to_bits(),
                        "p{p} l{level} n{}: fused {sample:?} != single {single:?}",
                        pts.len()
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs_safe() {
        for pts in [vec![], vec![[1.0, 1.0]]] {
            for p in 0..4 {
                for level in 0..3 {
                    let s = extract(p, level, &pts);
                    assert!(s.value.is_finite());
                }
            }
        }
    }
}
