//! # intune-clusterlib
//!
//! The paper's **Clustering** benchmark: assign 2-D points to clusters with
//! a k-means variant whose *initialization strategy* (random, prefix, or
//! center-plus), *cluster count* `k` and *iteration budget* are all set by
//! the autotuner.
//!
//! The accuracy metric is the paper's `Σd̂ᵢ / Σdᵢ`, where `d̂ᵢ` is the
//! point-to-center distance under a canonical clustering (a thorough
//! k-means++ run computed once per input at generation time) and `dᵢ` the
//! distance under the configured run; the threshold is 0.8. Cheap
//! configurations (few iterations, naive init) are fast but may fall below
//! the bar on hard geometries — the benchmark's input sensitivity.
//!
//! Input features: *radius*, *centers* (a grid-density peak count — the
//! expensive feature the paper calls out), *density*, and *range*, each at
//! three sampling levels ([`features`]). Generators include a Poker-Hand-like
//! discrete lattice simulator standing in for the paper's `clustering1`
//! real-world dataset (DESIGN.md §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod features;
pub mod generators;

pub use algorithm::{kmeans_run, InitStrategy, KmeansOutcome};
pub use generators::{ClusterCorpus, ClusterInput, ClusterInputClass};

use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef, FeatureId,
    FeatureSample, FeatureVector,
};

/// The Clustering benchmark.
#[derive(Debug, Clone)]
pub struct Clustering;

impl Clustering {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Clustering
    }
}

impl Default for Clustering {
    fn default() -> Self {
        Clustering::new()
    }
}

impl Benchmark for Clustering {
    type Input = ClusterInput;

    fn name(&self) -> &str {
        "clustering"
    }

    fn space(&self) -> ConfigSpace {
        ConfigSpace::builder()
            .switch("cluster.init", 3)
            .int("cluster.k", 2, 32)
            .int("cluster.iters", 1, 25)
            .build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let space = self.space();
        let init = InitStrategy::from_index(cfg.choice(space.require("cluster.init").unwrap()));
        let k = cfg.int(space.require("cluster.k").unwrap()) as usize;
        let iters = cfg.int(space.require("cluster.iters").unwrap()) as usize;
        let outcome = kmeans_run(&input.points, k, iters, init);
        // Accuracy = Σ canonical distances / Σ our distances, epsilon-floored
        // so exact-duplicate (lattice) inputs cannot divide by zero.
        let eps = 1e-9;
        let accuracy = ((input.canonical_dist + eps) / (outcome.total_dist + eps)).min(10.0);
        ExecutionReport::with_accuracy(outcome.cost, accuracy)
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        Some(AccuracySpec::new(0.8))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("radius", 3),
            FeatureDef::new("centers", 3),
            FeatureDef::new("density", 3),
            FeatureDef::new("range", 3),
        ]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        features::extract(property, level, &input.points)
    }

    // Fused full extraction: one subsample per level shared by all four
    // properties (bit-identical to the default per-property path; see
    // `features::extract_level`). Serving-side drift probes call this per
    // probed request, so the shared pass matters there.
    fn extract_all(&self, input: &Self::Input) -> FeatureVector {
        let defs = self.properties();
        let mut fv = FeatureVector::empty(&defs);
        for level in 0..3 {
            for (p, sample) in features::extract_level(level, &input.points)
                .into_iter()
                .enumerate()
            {
                fv.insert(FeatureId { property: p, level }, sample)
                    .expect("in-range feature id");
            }
        }
        fv
    }

    // Cluster inputs journal as an explicit document — `Point` is a
    // fixed-size array the serde shim has no blanket impls for, so the
    // codec is hand-rolled:
    //
    // ```json
    // {"points": [[x, y], ...], "canonical_dist": d, "canonical_k": k}
    // ```
    //
    // `canonical_dist` rides along because it anchors the accuracy
    // metric: recomputing it after decode would re-run the thorough
    // canonical clustering and could drift from the value the features
    // were served under. Floats round-trip bit-exactly (non-finite
    // values journal as their conventional string names), so clustering
    // can feed the continuous-learning retraining corpus.
    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        use serde::Serialize as _;
        let points = input
            .points
            .iter()
            .map(|p| serde_json::Value::Array(vec![p[0].to_value(), p[1].to_value()]))
            .collect();
        Some(serde_json::Value::Object(vec![
            ("points".to_string(), serde_json::Value::Array(points)),
            (
                "canonical_dist".to_string(),
                input.canonical_dist.to_value(),
            ),
            (
                "canonical_k".to_string(),
                serde_json::Value::UInt(input.canonical_k as u64),
            ),
        ]))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        use serde::Deserialize as _;
        let points = payload
            .get("points")?
            .as_array()?
            .iter()
            .map(|pair| {
                let xy = pair.as_array()?;
                if xy.len() != 2 {
                    return None;
                }
                Some([f64::from_value(&xy[0]).ok()?, f64::from_value(&xy[1]).ok()?])
            })
            .collect::<Option<Vec<algorithm::Point>>>()?;
        Some(ClusterInput {
            points,
            canonical_dist: f64::from_value(payload.get("canonical_dist")?).ok()?,
            canonical_k: usize::try_from(payload.get("canonical_k")?.as_u64()?).ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob_input() -> ClusterInput {
        let mut rng = StdRng::seed_from_u64(3);
        ClusterInputClass::Blobs { k: 4 }.generate(400, &mut rng)
    }

    #[test]
    fn thorough_config_is_accurate() {
        let b = Clustering::new();
        let space = b.space();
        let mut cfg = space.default_config();
        cfg.set(
            space.index_of("cluster.init").unwrap(),
            ParamValue::Choice(2),
        ); // centerplus
        cfg.set(space.index_of("cluster.k").unwrap(), ParamValue::Int(4));
        cfg.set(
            space.index_of("cluster.iters").unwrap(),
            ParamValue::Int(20),
        );
        let report = b.run(&cfg, &blob_input());
        assert!(
            report.accuracy.unwrap() > 0.8,
            "accuracy {}",
            report.accuracy.unwrap()
        );
    }

    #[test]
    fn starved_config_is_fast_but_inaccurate() {
        let b = Clustering::new();
        let space = b.space();
        let input = blob_input();

        let mut starved = space.default_config();
        starved.set(
            space.index_of("cluster.init").unwrap(),
            ParamValue::Choice(1),
        ); // prefix
        starved.set(space.index_of("cluster.k").unwrap(), ParamValue::Int(2));
        starved.set(space.index_of("cluster.iters").unwrap(), ParamValue::Int(1));

        let mut thorough = space.default_config();
        thorough.set(
            space.index_of("cluster.init").unwrap(),
            ParamValue::Choice(2),
        );
        thorough.set(space.index_of("cluster.k").unwrap(), ParamValue::Int(4));
        thorough.set(
            space.index_of("cluster.iters").unwrap(),
            ParamValue::Int(20),
        );

        let r_starved = b.run(&starved, &input);
        let r_thorough = b.run(&thorough, &input);
        assert!(r_starved.cost < r_thorough.cost);
        assert!(r_starved.accuracy.unwrap() < r_thorough.accuracy.unwrap());
    }

    #[test]
    fn features_extractable() {
        let b = Clustering::new();
        let fv = b.extract_all(&blob_input());
        assert_eq!(fv.len(), 12);
        assert!(fv.dense().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_threshold_is_papers() {
        assert_eq!(Clustering::new().accuracy().unwrap().threshold, 0.8);
    }

    #[test]
    fn inputs_round_trip_through_journal_codec_bit_exactly() {
        let b = Clustering::new();
        let mut input = blob_input();
        // Adversarial float bit patterns: negative zero, subnormals, and
        // values whose shortest decimal form exercises the printer.
        input.points.push([-0.0, f64::MIN_POSITIVE / 2.0]);
        input.points.push([0.1 + 0.2, f64::MAX]);
        let encoded = b.encode_input(&input).expect("clustering journals");
        // Through the actual wire representation, not just the Value tree.
        let text = serde_json::to_string(&encoded).unwrap();
        let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let decoded = b.decode_input(&reparsed).expect("codec round-trips");
        assert_eq!(decoded.points.len(), input.points.len());
        for (a, c) in input.points.iter().zip(&decoded.points) {
            assert_eq!(a[0].to_bits(), c[0].to_bits());
            assert_eq!(a[1].to_bits(), c[1].to_bits());
        }
        assert_eq!(
            decoded.canonical_dist.to_bits(),
            input.canonical_dist.to_bits()
        );
        assert_eq!(decoded.canonical_k, input.canonical_k);
        // Identical treatment: same features, bit for bit.
        assert_eq!(
            b.extract_all(&input).dense(),
            b.extract_all(&decoded).dense()
        );
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        let b = Clustering::new();
        for text in [
            "null",
            "{}",
            r#"{"points": [[1.0]], "canonical_dist": 1.0, "canonical_k": 3}"#,
            r#"{"points": [[1.0, 2.0, 3.0]], "canonical_dist": 1.0, "canonical_k": 3}"#,
            r#"{"points": [[1.0, 2.0]], "canonical_k": 3}"#,
            r#"{"points": [[1.0, "x"]], "canonical_dist": 1.0, "canonical_k": 3}"#,
        ] {
            let payload: serde_json::Value = serde_json::from_str(text).unwrap();
            assert!(b.decode_input(&payload).is_none(), "accepted {text}");
        }
    }
}
