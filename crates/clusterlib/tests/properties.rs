//! Property-based tests for the clustering benchmark.

use intune_clusterlib::algorithm::{kmeans_run, InitStrategy};
use intune_clusterlib::{ClusterInputClass, Clustering};
use intune_core::Benchmark;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// k-means runs are deterministic, cost-positive, and the distance sum
    /// never increases when iterations grow.
    #[test]
    fn kmeans_run_invariants(
        pts in prop::collection::vec(
            (prop::num::f64::NORMAL, prop::num::f64::NORMAL)
                .prop_map(|(a, b)| [a % 100.0, b % 100.0]),
            3..80),
        k in 1usize..8,
        init_idx in 0usize..3,
    ) {
        let init = InitStrategy::from_index(init_idx);
        let short = kmeans_run(&pts, k, 2, init);
        let long = kmeans_run(&pts, k, 12, init);
        prop_assert!(short.cost > 0.0);
        prop_assert!(long.cost > short.cost);
        // Lloyd iterations monotonically decrease Σd² — the paper's Σd
        // metric may wiggle slightly, so allow a small relative band.
        prop_assert!(
            long.total_dist <= short.total_dist * 1.05 + 1e-9,
            "12 iters ({}) much worse than 2 ({})",
            long.total_dist,
            short.total_dist
        );
        let again = kmeans_run(&pts, k, 2, init);
        prop_assert_eq!(short.total_dist, again.total_dist);
    }

    /// The benchmark's accuracy is positive, capped, and improves (or holds)
    /// as the iteration budget grows.
    #[test]
    fn accuracy_monotone_in_iterations(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = ClusterInputClass::Blobs { k: 4 }.generate(120, &mut rng);
        let b = Clustering::new();
        let space = b.space();
        let mut starved = space.default_config();
        starved.set(space.index_of("cluster.iters").unwrap(), intune_core::ParamValue::Int(1));
        starved.set(space.index_of("cluster.k").unwrap(), intune_core::ParamValue::Int(4));
        starved.set(space.index_of("cluster.init").unwrap(), intune_core::ParamValue::Choice(2));
        let mut generous = starved.clone();
        generous.set(space.index_of("cluster.iters").unwrap(), intune_core::ParamValue::Int(20));
        let r1 = b.run(&starved, &input);
        let r2 = b.run(&generous, &input);
        let (a1, a2) = (r1.accuracy.unwrap(), r2.accuracy.unwrap());
        prop_assert!(a1 > 0.0 && a1 <= 10.0);
        // Same Σd-vs-Σd² caveat as above: a generous band, not strict
        // monotonicity.
        prop_assert!(
            a2 >= a1 * 0.95 - 1e-9,
            "more iterations substantially lowered accuracy: {} -> {}", a1, a2
        );
    }

    /// Generated inputs carry consistent canonical metadata.
    #[test]
    fn generated_inputs_consistent(seed in 0u64..500, class_idx in 0usize..8, n in 10usize..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = ClusterInputClass::all();
        let input = classes[class_idx % classes.len()].generate(n, &mut rng);
        prop_assert_eq!(input.points.len(), n);
        prop_assert!(input.canonical_dist.is_finite() && input.canonical_dist >= 0.0);
        prop_assert!(input.canonical_k >= 1);
    }
}
