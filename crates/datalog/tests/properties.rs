//! Property tests for recording durability: a segment truncated at any
//! byte offset recovers every complete frame and types the torn tail —
//! the datalog mirror of the journal's truncation property.

use intune_core::{FeatureDef, FeatureId, FeatureSample, FeatureVector};
use intune_datalog::recording::{
    read_segment, segment_path, FrameBody, RecordedFrame, RecordingOptions, RecordingWriter,
};
use proptest::prelude::*;

fn vector(x: f64) -> FeatureVector {
    let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
    let mut fv = FeatureVector::empty(&defs);
    for (property, def) in defs.iter().enumerate() {
        for level in 0..def.levels {
            fv.insert(
                FeatureId { property, level },
                FeatureSample::new(x + (property * 10 + level) as f64, 1.0),
            )
            .unwrap();
        }
    }
    fv
}

fn frame(i: usize) -> RecordedFrame {
    RecordedFrame {
        seq: 0, // assigned by the writer
        delta_micros: (i * 13) as u64,
        tenant: "prop".to_string(),
        conn: (i % 3) as u64,
        body: if i % 4 == 3 {
            FrameBody::Control {
                kind: "Stats".to_string(),
            }
        } else {
            FrameBody::Select {
                features: vec![vector(i as f64), vector(-(i as f64))],
                payloads: if i.is_multiple_of(2) {
                    vec![
                        serde_json::Value::Float(0.1 + i as f64),
                        serde_json::Value::Null,
                    ]
                } else {
                    vec![]
                },
                trace: (i.is_multiple_of(3))
                    .then(|| intune_core::TraceContext::root(i as u64 * 31 + 1)),
            }
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recording crash tolerance: a segment truncated at **any** byte
    /// offset reloads every complete frame and reports the torn tail as
    /// a typed error — never a panic, and never a phantom frame.
    #[test]
    fn truncated_recording_segments_recover_every_complete_frame(
        frames in 1usize..12, cut_sel in 0usize..100_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "intune-datalog-prop-{}-{frames}-{cut_sel}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        {
            // One segment holds everything: rotation is covered by unit
            // tests; truncation semantics are per-file.
            let mut w = RecordingWriter::open(&dir, RecordingOptions {
                segment_max_frames: frames + 1,
                ..RecordingOptions::default()
            }).unwrap();
            for i in 0..frames {
                w.append(frame(i)).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();

        // Record the clean read and every frame's end offset.
        let clean = read_segment(&path).unwrap();
        prop_assert!(clean.torn.is_none());
        prop_assert_eq!(clean.frames.len(), frames);
        let mut boundaries = vec![0usize];
        {
            let mut at = 0usize;
            while at < bytes.len() {
                let len = u32::from_be_bytes([
                    bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3],
                ]) as usize;
                at += 4 + len;
                boundaries.push(at);
            }
        }

        let cut = cut_sel % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let scan = read_segment(&path).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(
            scan.frames.len(), complete,
            "cut at {} must keep exactly the complete prefix", cut
        );
        for (a, b) in scan.frames.iter().zip(&clean.frames) {
            prop_assert_eq!(a, b, "recovered frames are bit-faithful");
        }
        let on_boundary = boundaries.contains(&cut);
        prop_assert_eq!(
            scan.torn.is_none(), on_boundary,
            "torn tail iff the cut splits a frame (cut at {})", cut
        );
        if let Some(torn) = scan.torn {
            prop_assert!(
                matches!(torn, intune_core::Error::Artifact { .. }),
                "torn tail must be the typed artifact error, got {:?}", torn
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
