//! The recording side of the datalog: a segmented, crash-tolerant
//! append-only capture of a daemon's inbound request traffic.
//!
//! Every frame captures one decoded wire request — which tenant it was
//! addressed to, which client connection carried it, how long after the
//! previous recorded frame it arrived (a monotonic delta, so recordings
//! have no wall-clock in them), and the request body itself. Frames are
//! framed with the workspace's checksummed record codec
//! ([`intune_core::codec::encode_record`]): a 4-byte big-endian length
//! prefix followed by a compact checksummed JSON envelope
//! (`schema: "intune-datalog"`, version 1).
//!
//! ## Segments
//!
//! A recording directory holds numbered segment files
//! (`datalog-00000000.seg`, `datalog-00000001.seg`, …). The writer
//! appends to the highest-numbered segment and rotates to a fresh one
//! every `segment_max_frames` frames, sealing (`fdatasync`) each segment
//! it rotates away from.
//!
//! ## Crash tolerance
//!
//! Appends are not atomic: a crash can leave a torn frame at the end of
//! the active segment. [`read_segment`] recovers every complete,
//! checksum-verified frame and reports the torn tail as a **typed
//! error** (never a panic, whatever the truncation offset — a property
//! test pins this). On reopen, a writer never appends after a torn
//! tail: it seals the damaged segment and starts a fresh one.
//!
//! The on-disk format specification lives in `crates/datalog/README.md`.

use intune_core::{codec, Error, FeatureVector, Result};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Envelope schema name of recorded frames.
pub const DATALOG_SCHEMA: &str = "intune-datalog";
/// Current datalog frame schema version.
pub const DATALOG_VERSION: u32 = 1;
/// Segment file name prefix.
pub const SEGMENT_PREFIX: &str = "datalog-";
/// Segment file name suffix.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// The decoded body of one recorded request frame.
///
/// The daemon records requests *after* decoding them, so a recording is
/// replayable without the wire parser: selection traffic carries the
/// exact feature vectors and payloads the daemon answered, and
/// everything else collapses to a named control marker (recorded so a
/// playback can account for the full session shape, skipped during
/// replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrameBody {
    /// One selection request: fully-extracted feature vectors plus the
    /// optional raw-input payloads that rode along (empty when the
    /// client sent an untraced batch).
    Select {
        /// The served feature vectors, in request order.
        features: Vec<FeatureVector>,
        /// Parallel raw-input payloads (`Null` = none), or empty.
        payloads: Vec<Value>,
        /// The sampled trace context the request carried, when it was
        /// traced (absent = untraced; the field is elided on disk, so
        /// recordings without tracing are byte-identical to version 1
        /// captures and old recordings load with `None`).
        trace: Option<intune_core::TraceContext>,
    },
    /// A non-selection request (handshake, stats, artifact lifecycle),
    /// identified by its wire message name.
    Control {
        /// The request's wire message name (e.g. `"Hello"`, `"Promote"`).
        kind: String,
    },
}

impl FrameBody {
    /// The selection parts of this body, or `None` for control frames.
    pub fn select_parts(&self) -> Option<(&[FeatureVector], &[Value])> {
        match self {
            FrameBody::Select {
                features, payloads, ..
            } => Some((features, payloads)),
            FrameBody::Control { .. } => None,
        }
    }

    /// The sampled trace context this frame carried, if any.
    pub fn trace(&self) -> Option<&intune_core::TraceContext> {
        match self {
            FrameBody::Select { trace, .. } => trace.as_ref(),
            FrameBody::Control { .. } => None,
        }
    }
}

/// One inbound request, as persisted in the recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedFrame {
    /// Monotone sequence number, unique across all segments of one
    /// recording directory (assigned by the writer).
    pub seq: u64,
    /// Microseconds elapsed since the previous recorded frame (0 for
    /// the first frame after open) — a monotonic delta, so replay can
    /// reproduce the original pacing without trusting any wall clock.
    pub delta_micros: u64,
    /// Name of the tenant the request was addressed to.
    pub tenant: String,
    /// Daemon-assigned connection id (unique per accepted connection
    /// for the daemon's lifetime; never reused, unlike slab slots).
    pub conn: u64,
    /// The decoded request body.
    pub body: FrameBody,
}

/// Recording writer tunables.
#[derive(Debug, Clone)]
pub struct RecordingOptions {
    /// Frames per segment before the writer rotates to a fresh file.
    pub segment_max_frames: usize,
    /// Call `fdatasync` after every flush, not only at segment seal.
    ///
    /// Off by default for the same reason as the journal: a recording
    /// feeds regression replay, where losing the last frames to a power
    /// cut costs a little captured traffic, not correctness.
    pub sync_every_flush: bool,
}

impl Default for RecordingOptions {
    fn default() -> Self {
        RecordingOptions {
            segment_max_frames: 1024,
            sync_every_flush: false,
        }
    }
}

/// What [`read_segment`] recovered from one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Every complete, checksum-verified frame, in append order.
    pub frames: Vec<RecordedFrame>,
    /// The typed error describing a torn or corrupt tail, if the file
    /// does not end exactly on a frame boundary.
    pub torn: Option<Error>,
}

/// Lists a recording directory's segment files, ascending by index.
///
/// # Errors
/// Returns [`Error::Artifact`] when the directory cannot be read.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>> {
    let entries = std::fs::read_dir(dir).map_err(|e| {
        Error::artifact(format!("cannot read recording dir {}: {e}", dir.display()))
    })?;
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| Error::artifact(format!("cannot list {}: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|rest| rest.strip_suffix(SEGMENT_SUFFIX))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_by_key(|(index, _)| *index);
    Ok(segments.into_iter().map(|(_, path)| path).collect())
}

/// Path of segment `index` inside `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}"))
}

/// Index parsed back out of a segment path (None for foreign files).
pub fn segment_index(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Reads one segment, recovering every complete frame and typing the
/// torn tail (see the module docs). IO failure is the only hard error —
/// truncation and corruption are reported in [`SegmentScan::torn`].
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be read at all.
pub fn read_segment(path: &Path) -> Result<SegmentScan> {
    let bytes = std::fs::read(path)
        .map_err(|e| Error::artifact(format!("cannot read segment {}: {e}", path.display())))?;
    let scan = codec::scan_records(&bytes, DATALOG_SCHEMA, DATALOG_VERSION);
    let mut frames = Vec::with_capacity(scan.records.len());
    let mut torn = scan.torn;
    for (i, value) in scan.records.into_iter().enumerate() {
        match serde_json::from_value::<RecordedFrame>(&value) {
            Ok(frame) => frames.push(frame),
            Err(e) => {
                // A checksum-valid frame with an alien shape: everything
                // from here on is untrusted, exactly like a torn tail.
                torn = Some(Error::artifact(format!(
                    "segment {} frame {i} has an unexpected shape: {e}",
                    path.display()
                )));
                break;
            }
        }
    }
    Ok(SegmentScan { frames, torn })
}

/// A whole recording, loaded back into memory.
#[derive(Debug)]
pub struct Recording {
    /// Every complete frame across all segments, in capture order.
    pub frames: Vec<RecordedFrame>,
    /// Segment files scanned.
    pub segments: u64,
    /// Segments whose tail was torn or corrupt (their complete prefix
    /// still contributes to `frames`).
    pub torn_segments: u64,
}

/// Loads every complete frame of the recording in `dir`, in capture
/// order. Torn tails are tolerated (counted, complete prefixes kept) —
/// a recording cut short by a crash still replays up to the tear.
///
/// # Errors
/// Returns [`Error::Artifact`] when the directory or a segment cannot
/// be read at all.
pub fn load_recording(dir: &Path) -> Result<Recording> {
    let mut frames = Vec::new();
    let mut segments = 0u64;
    let mut torn_segments = 0u64;
    for path in list_segments(dir)? {
        let scan = read_segment(&path)?;
        segments += 1;
        if scan.torn.is_some() {
            torn_segments += 1;
        }
        frames.extend(scan.frames);
    }
    Ok(Recording {
        frames,
        segments,
        torn_segments,
    })
}

/// The append side of the recording. Not thread-safe by itself — the
/// daemon integration wraps it in a [`RecorderSink`].
///
/// Appends are **staged**: [`RecordingWriter::stage`] encodes frames
/// into an in-memory buffer and [`RecordingWriter::flush`] writes the
/// buffer in one syscall. [`RecordingWriter::append`] is the
/// stage+flush convenience for single frames.
#[derive(Debug)]
pub struct RecordingWriter {
    dir: PathBuf,
    opts: RecordingOptions,
    file: File,
    segment: u64,
    frames_in_segment: usize,
    next_seq: u64,
    /// Encoded-but-unwritten frames (cleared by [`RecordingWriter::flush`]).
    pending: Vec<u8>,
    /// Frames inside `pending`.
    pending_frames: u64,
    /// Frames durably written since open — the ground truth the sink's
    /// `appended` counter is derived from, exact even when an
    /// intra-batch rotation flush fails.
    durable: u64,
}

impl RecordingWriter {
    /// Opens (or resumes) the recording in `dir`, creating the directory
    /// if needed. Resuming scans existing segments for the next sequence
    /// number; a segment with a torn tail is sealed as-is (appending
    /// after garbage would bury every later frame) and writing continues
    /// in a fresh segment.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure.
    pub fn open(dir: &Path, opts: RecordingOptions) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| {
            Error::artifact(format!(
                "cannot create recording dir {}: {e}",
                dir.display()
            ))
        })?;
        let segments = list_segments(dir)?;
        // One backwards pass serves both resume questions: the newest
        // segment's scan decides whether it can be appended to, and the
        // newest segment holding any complete frame fixes the next
        // sequence number.
        let mut next_seq = 0u64;
        let mut active: Option<(u64, usize, bool)> = None;
        for (i, path) in segments.iter().enumerate().rev() {
            let scan = read_segment(path)?;
            if i == segments.len() - 1 {
                let index = segment_index(path).expect("listed segments parse");
                let reusable =
                    scan.torn.is_none() && scan.frames.len() < opts.segment_max_frames.max(1);
                active = Some(if reusable {
                    (index, scan.frames.len(), true)
                } else {
                    (index + 1, 0, false)
                });
            }
            if let Some(last) = scan.frames.last() {
                next_seq = last.seq + 1;
                break;
            }
        }
        let (segment, frames_in_segment, reuse) = active.unwrap_or((0, 0, false));
        let path = segment_path(dir, segment);
        let file = if reuse {
            OpenOptions::new().append(true).open(&path)
        } else {
            File::create(&path)
        }
        .map_err(|e| Error::artifact(format!("cannot open segment {}: {e}", path.display())))?;
        Ok(RecordingWriter {
            dir: dir.to_path_buf(),
            opts,
            file,
            segment,
            frames_in_segment,
            next_seq,
            pending: Vec::new(),
            pending_frames: 0,
            durable: 0,
        })
    }

    /// The sequence number the next append will be stamped with.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Index of the segment currently being appended to.
    pub fn active_segment(&self) -> u64 {
        self.segment
    }

    /// Encodes one frame into the pending buffer (its `seq` field is
    /// overwritten with the recording's next sequence number, which is
    /// returned), rotating to a fresh segment — flushing first — when
    /// the active one is full. Nothing reaches disk until
    /// [`RecordingWriter::flush`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on an unencodable (oversized) frame
    /// or a rotation failure; the sequence number is not consumed on
    /// failure.
    pub fn stage(&mut self, mut frame: RecordedFrame) -> Result<u64> {
        if self.frames_in_segment >= self.opts.segment_max_frames.max(1) {
            self.flush()?;
            // Seal the full segment durably before rotating away from
            // it: downstream consumers (replay, compaction) treat sealed
            // segments as crash-stable, and this is the last moment this
            // writer holds the file.
            self.file
                .sync_data()
                .map_err(|e| Error::artifact(format!("cannot sync sealed segment: {e}")))?;
            self.segment += 1;
            let path = segment_path(&self.dir, self.segment);
            self.file = File::create(&path).map_err(|e| {
                Error::artifact(format!("cannot rotate to segment {}: {e}", path.display()))
            })?;
            self.frames_in_segment = 0;
        }
        frame.seq = self.next_seq;
        let encoded = codec::encode_record(
            DATALOG_SCHEMA,
            DATALOG_VERSION,
            serde_json::to_value(&frame),
        )?;
        self.pending.extend_from_slice(&encoded);
        self.pending_frames += 1;
        self.frames_in_segment += 1;
        self.next_seq += 1;
        Ok(frame.seq)
    }

    /// Writes every pending frame in one syscall. On failure the pending
    /// frames are lost (their sequence numbers stay consumed — gaps are
    /// legal, resumption only needs the maximum).
    ///
    /// ## Durability
    ///
    /// By default a flushed frame has reached the kernel, not the
    /// platter. Sealed (rotated-away) segments are always
    /// `fdatasync`ed; the active segment is only synced when
    /// [`RecordingOptions::sync_every_flush`] is set.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let outcome = self
            .file
            .write_all(&self.pending)
            .and_then(|()| self.file.flush())
            .and_then(|()| {
                if self.opts.sync_every_flush {
                    self.file.sync_data()
                } else {
                    Ok(())
                }
            })
            .map_err(|e| Error::artifact(format!("cannot append recorded frames: {e}")));
        if outcome.is_ok() {
            self.durable += self.pending_frames;
        }
        self.pending.clear();
        self.pending_frames = 0;
        outcome
    }

    /// Frames durably written since this writer opened.
    pub fn durable(&self) -> u64 {
        self.durable
    }

    /// Stages and flushes one frame — see [`RecordingWriter::stage`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on encoding or IO failure.
    pub fn append(&mut self, frame: RecordedFrame) -> Result<u64> {
        let seq = self.stage(frame)?;
        self.flush()?;
        Ok(seq)
    }
}

/// The recorder as the daemon sees it: a shared tap on the request path.
/// Appends happen on the serving thread under a mutex, one buffered
/// write per request frame; a recorder that cannot write — oversized
/// frame, disk failure — **never fails the serving path**: it counts the
/// dropped frames and keeps the last error for the operator.
#[derive(Debug)]
pub struct RecorderSink {
    /// The writer plus the monotonic instant of the last recorded frame
    /// (the source of `delta_micros`), advanced under one lock so deltas
    /// are assigned in the same order as sequence numbers.
    inner: Mutex<(RecordingWriter, Instant)>,
    appended: AtomicU64,
    dropped: AtomicU64,
    last_error: Mutex<Option<Error>>,
}

impl RecorderSink {
    /// Opens (or resumes) the recording in `dir` — see
    /// [`RecordingWriter::open`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure.
    pub fn open(dir: &Path, opts: RecordingOptions) -> Result<Self> {
        Ok(RecorderSink {
            inner: Mutex::new((RecordingWriter::open(dir, opts)?, Instant::now())),
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            last_error: Mutex::new(None),
        })
    }

    /// Records one inbound request frame, stamping its sequence number
    /// and monotonic delta. Never fails the caller: an unrecordable
    /// frame is counted in [`RecorderSink::dropped`] and its error kept
    /// for [`RecorderSink::last_error`].
    pub fn record(&self, tenant: &str, conn: u64, body: FrameBody) {
        // Recover from poisoning: a panic on one serving thread must not
        // wedge recording behind a `PoisonError`.
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        let delta_micros = now
            .duration_since(inner.1)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let frame = RecordedFrame {
            seq: 0, // assigned by the writer
            delta_micros,
            tenant: tenant.to_string(),
            conn,
            body,
        };
        let outcome = inner.0.append(frame);
        // The delta clock advances even for dropped frames, so the
        // pacing of later frames stays truthful.
        inner.1 = now;
        drop(inner);
        match outcome {
            Ok(_) => {
                self.appended.fetch_add(1, Ordering::AcqRel);
            }
            Err(e) => {
                self.dropped.fetch_add(1, Ordering::AcqRel);
                *self
                    .last_error
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e);
            }
        }
    }

    /// Frames durably recorded since this sink opened.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// Frames dropped because the recording could not be written.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// The most recent append failure, if any.
    pub fn last_error(&self) -> Option<Error> {
        self.last_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{FeatureDef, FeatureId, FeatureSample};

    fn fv(x: f64) -> FeatureVector {
        let defs = [FeatureDef::new("k", 1)];
        let mut fv = FeatureVector::empty(&defs);
        fv.insert(
            FeatureId {
                property: 0,
                level: 0,
            },
            FeatureSample::new(x, 1.0),
        )
        .unwrap();
        fv
    }

    fn select_frame(x: f64) -> RecordedFrame {
        RecordedFrame {
            seq: 999, // overwritten by the writer
            delta_micros: 7,
            tenant: "sort".to_string(),
            conn: (x as u64) % 3,
            body: FrameBody::Select {
                features: vec![fv(x)],
                payloads: vec![Value::Array(vec![Value::Float(x)])],
                trace: None,
            },
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "intune-datalog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_rotate_and_read_back_across_segments() {
        let dir = tmp("rotate");
        let mut w = RecordingWriter::open(
            &dir,
            RecordingOptions {
                segment_max_frames: 4,
                ..RecordingOptions::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            assert_eq!(w.append(select_frame(i as f64)).unwrap(), i);
        }
        assert_eq!(w.active_segment(), 2, "10 frames at 4/segment");
        let recording = load_recording(&dir).unwrap();
        assert_eq!(recording.segments, 3);
        assert_eq!(recording.torn_segments, 0);
        assert_eq!(recording.frames.len(), 10);
        for (i, frame) in recording.frames.iter().enumerate() {
            assert_eq!(frame.seq, i as u64, "writer stamps sequence numbers");
            assert_eq!(frame.delta_micros, 7);
            assert_eq!(frame.tenant, "sort");
            let (features, payloads) = frame.body.select_parts().expect("select frame");
            assert_eq!(features.len(), 1);
            assert_eq!(payloads.len(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn control_frames_round_trip() {
        let dir = tmp("control");
        let mut w = RecordingWriter::open(&dir, RecordingOptions::default()).unwrap();
        w.append(RecordedFrame {
            seq: 0,
            delta_micros: 0,
            tenant: "sort".to_string(),
            conn: 4,
            body: FrameBody::Control {
                kind: "Hello".to_string(),
            },
        })
        .unwrap();
        let recording = load_recording(&dir).unwrap();
        assert_eq!(recording.frames.len(), 1);
        assert!(recording.frames[0].body.select_parts().is_none());
        assert_eq!(
            recording.frames[0].body,
            FrameBody::Control {
                kind: "Hello".to_string()
            }
        );
        assert_eq!(recording.frames[0].conn, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_sequence_and_appends_to_the_active_segment() {
        let dir = tmp("resume");
        let opts = || RecordingOptions {
            segment_max_frames: 4,
            ..RecordingOptions::default()
        };
        {
            let mut w = RecordingWriter::open(&dir, opts()).unwrap();
            for i in 0..6 {
                w.append(select_frame(i as f64)).unwrap();
            }
        }
        let mut w = RecordingWriter::open(&dir, opts()).unwrap();
        assert_eq!(w.next_seq(), 6, "sequence resumes after the last frame");
        assert_eq!(w.active_segment(), 1, "half-full segment is reused");
        w.append(select_frame(9.0)).unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_sealed_and_writing_continues_in_a_fresh_segment() {
        let dir = tmp("torn");
        {
            let mut w = RecordingWriter::open(&dir, RecordingOptions::default()).unwrap();
            for i in 0..3 {
                w.append(select_frame(i as f64)).unwrap();
            }
        }
        // Crash simulation: cut the active segment mid-frame.
        let path = segment_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let scan = read_segment(&path).unwrap();
        assert_eq!(scan.frames.len(), 2, "complete frames survive");
        let torn = scan.torn.expect("torn tail typed");
        assert!(matches!(torn, Error::Artifact { .. }), "{torn:?}");

        let mut w = RecordingWriter::open(&dir, RecordingOptions::default()).unwrap();
        assert_eq!(w.next_seq(), 2, "the torn frame's seq is reissued");
        assert_eq!(w.active_segment(), 1, "damaged segment is sealed");
        w.append(select_frame(8.0)).unwrap();

        // A torn recording still loads its complete prefix.
        let recording = load_recording(&dir).unwrap();
        assert_eq!(recording.frames.len(), 3);
        assert_eq!(recording.torn_segments, 1);
        assert_eq!(recording.frames[2].seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_stamps_order_and_counts_appends() {
        let dir = tmp("sink");
        let sink = RecorderSink::open(&dir, RecordingOptions::default()).unwrap();
        sink.record(
            "sort",
            11,
            FrameBody::Control {
                kind: "Hello".to_string(),
            },
        );
        sink.record(
            "sort",
            11,
            FrameBody::Select {
                features: vec![fv(1.0)],
                payloads: vec![],
                trace: None,
            },
        );
        sink.record(
            "cluster",
            12,
            FrameBody::Select {
                features: vec![fv(2.0), fv(3.0)],
                payloads: vec![Value::Null, Value::Int(4)],
                trace: Some(intune_core::TraceContext::root(0xfeed)),
            },
        );
        assert_eq!(sink.appended(), 3);
        assert_eq!(sink.dropped(), 0);
        assert!(sink.last_error().is_none());

        let recording = load_recording(&dir).unwrap();
        assert_eq!(recording.frames.len(), 3);
        let seqs: Vec<u64> = recording.frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "capture order is sequence order");
        assert_eq!(recording.frames[2].tenant, "cluster");
        assert_eq!(recording.frames[2].conn, 12);
        let (features, payloads) = recording.frames[2].body.select_parts().unwrap();
        assert_eq!(features.len(), 2);
        assert_eq!(payloads, [Value::Null, Value::Int(4)]);
        assert!(recording.frames[1].body.trace().is_none());
        assert_eq!(
            recording.frames[2].body.trace().map(|t| t.trace_id),
            Some(0xfeed),
            "a traced frame's context round-trips through the recording"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_frames_are_dropped_typed_and_never_poison_the_sink() {
        let dir = tmp("oversize");
        let sink = RecorderSink::open(&dir, RecordingOptions::default()).unwrap();
        // A payload whose encoded frame exceeds the 16 MiB record cap —
        // wire clients can ship these (the wire frame cap is 64 MiB), so
        // the recorder must drop the frame, not fail the serving path.
        let huge = Value::String("x".repeat(intune_core::codec::MAX_RECORD_BYTES + 1024));
        sink.record(
            "sort",
            1,
            FrameBody::Select {
                features: vec![fv(1.0)],
                payloads: vec![huge],
                trace: None,
            },
        );
        assert_eq!(sink.dropped(), 1, "the oversized frame is lost");
        assert_eq!(sink.appended(), 0);
        let err = sink.last_error().expect("typed drop reason");
        assert!(err.to_string().contains("frame cap"), "{err}");

        // The sink (and its mutex) survive: later frames still record.
        sink.record(
            "sort",
            1,
            FrameBody::Select {
                features: vec![fv(2.0)],
                payloads: vec![],
                trace: None,
            },
        );
        assert_eq!(sink.appended(), 1);
        let recording = load_recording(&dir).unwrap();
        assert_eq!(recording.frames.len(), 1);
        assert_eq!(recording.torn_segments, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_in_the_recording_dir_are_ignored() {
        let dir = tmp("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "not a segment").unwrap();
        std::fs::write(dir.join("datalog-xx.seg"), "bad index").unwrap();
        let mut w = RecordingWriter::open(&dir, RecordingOptions::default()).unwrap();
        w.append(select_frame(1.0)).unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
