//! # intune-datalog
//!
//! Wire-traffic **record/replay** for the selection daemon: the
//! regression-testing half of the continuous-learning loop.
//!
//! The paper's input-sensitive selectors are only trustworthy if a
//! retrained revision can be checked against *real* traffic, not
//! synthetic generators. This crate makes captured live sessions a
//! first-class artifact:
//!
//! * **[`recording`]** — a segmented, checksummed, crash-tolerant
//!   append-only log of inbound daemon requests (`intune-datalog/1`,
//!   same record codec and torn-tail discipline as the request
//!   journal). The daemon taps its event loop into a [`RecorderSink`]
//!   when started with `--record DIR`.
//! * **[`playback`]** — deterministic replay of a recording against any
//!   [`ReplayTarget`] (an in-process [`intune_serve::VectorService`], or
//!   a live daemon via the `intune_replay` binary) at adjustable speed,
//!   preserving capture order (and with it per-connection ordering).
//! * **divergence** — [`playback::divergence`] byte-compares the
//!   selections two targets gave the same recording and reduces them to
//!   a typed [`DivergenceReport`]: "does revision N+1 change any answer
//!   on yesterday's traffic" as one comparison.
//!
//! The on-disk format specification lives in `crates/datalog/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod playback;
pub mod recording;

pub use playback::{
    divergence, replay, Divergence, DivergenceReport, FrameResult, ReplayOptions, ReplayOutcome,
    ReplayTarget,
};
pub use recording::{
    list_segments, load_recording, read_segment, segment_index, segment_path, FrameBody,
    RecordedFrame, RecorderSink, Recording, RecordingOptions, RecordingWriter, SegmentScan,
    DATALOG_SCHEMA, DATALOG_VERSION, SEGMENT_PREFIX, SEGMENT_SUFFIX,
};
