//! The playback side of the datalog: stream a recording against a
//! selection target, collect the answers, and compare transcripts.
//!
//! Playback is **deterministic**: frames replay in capture order (which
//! trivially preserves per-connection ordering — a recording interleaves
//! connections exactly as the daemon's single event loop decoded them),
//! control frames are skipped and counted, and the resulting
//! [`ReplayOutcome`] renders to a canonical byte transcript
//! ([`ReplayOutcome::transcript`]) so "same answers" is a byte
//! comparison. [`divergence`] reduces two outcomes of the same recording
//! to a typed [`DivergenceReport`] — the "does revision N+1 change any
//! answer on yesterday's traffic" check.

use crate::recording::RecordedFrame;
use intune_core::{Error, FeatureVector, Result, TraceContext};
use intune_serve::{Selection, VectorService};
use serde_json::Value;
use std::time::Duration;

/// Anything a recording can be replayed against: an in-process
/// [`VectorService`], a live daemon behind a client (implemented by the
/// `intune_replay` binary), or a test double.
pub trait ReplayTarget {
    /// Answers one recorded selection frame.
    ///
    /// # Errors
    /// Returns the target's own error when the batch cannot be served.
    fn select(
        &self,
        tenant: &str,
        features: &[FeatureVector],
        payloads: &[Value],
    ) -> Result<Vec<Selection>>;

    /// [`ReplayTarget::select`] plus the trace context the frame was
    /// recorded with, so replay reproduces the original traces. The
    /// default ignores the context; trace-aware targets (the in-process
    /// service, wire clients) override it to re-attach the id.
    ///
    /// # Errors
    /// Returns the target's own error when the batch cannot be served.
    fn select_traced(
        &self,
        tenant: &str,
        features: &[FeatureVector],
        payloads: &[Value],
        trace: Option<&TraceContext>,
    ) -> Result<Vec<Selection>> {
        let _ = trace;
        self.select(tenant, features, payloads)
    }

    /// Answers a run of consecutive selection frames. The default
    /// serves them one at a time; wire-backed targets override this to
    /// pipeline the run (several frames in flight on one connection).
    /// Implementations must return answers in frame order.
    ///
    /// # Errors
    /// Returns the target's own error when any batch cannot be served.
    fn select_run(&self, frames: &[&RecordedFrame]) -> Result<Vec<Vec<Selection>>> {
        frames
            .iter()
            .map(|frame| {
                let (features, payloads) = frame
                    .body
                    .select_parts()
                    .ok_or_else(|| Error::artifact("control frame in a selection run"))?;
                self.select_traced(&frame.tenant, features, payloads, frame.body.trace())
            })
            .collect()
    }
}

impl ReplayTarget for VectorService {
    /// Serves the frame in-process. The frame's tenant must match the
    /// served artifact's benchmark — replaying a multi-tenant recording
    /// against a single service would silently answer the wrong model.
    fn select(
        &self,
        tenant: &str,
        features: &[FeatureVector],
        payloads: &[Value],
    ) -> Result<Vec<Selection>> {
        let benchmark = &self.artifact().benchmark;
        if tenant != benchmark {
            return Err(Error::artifact(format!(
                "recorded frame is for tenant `{tenant}` but this service \
                 serves `{benchmark}`"
            )));
        }
        self.select_vector_batch_traced(features, payloads)
    }

    /// Serves the frame in-process with its recorded trace context
    /// re-attached, so a replay regenerates the original trace's
    /// selection spans (when a span log is wired to the service).
    fn select_traced(
        &self,
        tenant: &str,
        features: &[FeatureVector],
        payloads: &[Value],
        trace: Option<&TraceContext>,
    ) -> Result<Vec<Selection>> {
        let benchmark = &self.artifact().benchmark;
        if tenant != benchmark {
            return Err(Error::artifact(format!(
                "recorded frame is for tenant `{tenant}` but this service \
                 serves `{benchmark}`"
            )));
        }
        self.select_vector_batch_observed(features, payloads, trace)
    }
}

/// Playback tunables.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Pacing: `0.0` replays as fast as possible (consecutive selection
    /// frames are grouped into pipelined runs); any positive value
    /// replays the recorded inter-frame deltas scaled by `1/speed`
    /// (`1.0` = original timing, `2.0` = twice as fast).
    pub speed: f64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { speed: 0.0 }
    }
}

/// One replayed frame's answers.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResult {
    /// The recorded frame's sequence number.
    pub seq: u64,
    /// Tenant the frame was recorded against.
    pub tenant: String,
    /// Recorded connection id.
    pub conn: u64,
    /// The target's selections, one per recorded vector.
    pub selections: Vec<Selection>,
}

/// Everything one replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Answers for every selection frame, in capture order.
    pub results: Vec<FrameResult>,
    /// Control frames skipped (handshakes, stats, lifecycle requests).
    pub control_skipped: u64,
}

impl ReplayOutcome {
    /// Selections answered across all frames.
    pub fn selections(&self) -> u64 {
        self.results.iter().map(|r| r.selections.len() as u64).sum()
    }

    /// The canonical byte transcript of this replay: one line per
    /// selection frame — `seq`, connection id, tenant, then the
    /// selections as compact JSON, tab-separated. Two replays answered
    /// identically render byte-identical transcripts, so determinism
    /// checks are a plain byte comparison.
    pub fn transcript(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.results {
            let selections = serde_json::to_string(&serde_json::to_value(&r.selections))
                .expect("selections serialize");
            writeln!(out, "{}\t{}\t{}\t{}", r.seq, r.conn, r.tenant, selections)
                .expect("string write");
        }
        out
    }
}

/// Replays `frames` (in capture order) against `target`.
///
/// # Errors
/// Returns the target's error as soon as any frame cannot be served —
/// a divergence check over a half-answered replay would under-report.
pub fn replay<T: ReplayTarget + ?Sized>(
    frames: &[RecordedFrame],
    target: &T,
    opts: &ReplayOptions,
) -> Result<ReplayOutcome> {
    let mut results = Vec::new();
    let mut control_skipped = 0u64;
    if opts.speed > 0.0 {
        // Paced: honor every frame's recorded delta (control frames
        // took time too), scaled by 1/speed.
        for frame in frames {
            let pause = Duration::from_micros((frame.delta_micros as f64 / opts.speed) as u64);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            match frame.body.select_parts() {
                Some((features, payloads)) => {
                    let selections = target.select_traced(
                        &frame.tenant,
                        features,
                        payloads,
                        frame.body.trace(),
                    )?;
                    results.push(FrameResult {
                        seq: frame.seq,
                        tenant: frame.tenant.clone(),
                        conn: frame.conn,
                        selections,
                    });
                }
                None => control_skipped += 1,
            }
        }
    } else {
        // As fast as possible: group consecutive selection frames into
        // runs so pipelining targets keep several frames in flight.
        let mut i = 0;
        while i < frames.len() {
            if frames[i].body.select_parts().is_none() {
                control_skipped += 1;
                i += 1;
                continue;
            }
            let mut j = i;
            while j < frames.len() && frames[j].body.select_parts().is_some() {
                j += 1;
            }
            let run: Vec<&RecordedFrame> = frames[i..j].iter().collect();
            let answers = target.select_run(&run)?;
            if answers.len() != run.len() {
                return Err(Error::artifact(format!(
                    "replay target answered {} of {} frames in a run",
                    answers.len(),
                    run.len()
                )));
            }
            for (frame, selections) in run.iter().zip(answers) {
                results.push(FrameResult {
                    seq: frame.seq,
                    tenant: frame.tenant.clone(),
                    conn: frame.conn,
                    selections,
                });
            }
            i = j;
        }
    }
    Ok(ReplayOutcome {
        results,
        control_skipped,
    })
}

/// The first differing answer between two replays.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Sequence number of the diverging frame.
    pub seq: u64,
    /// Tenant of the diverging frame.
    pub tenant: String,
    /// Recorded connection id of the diverging frame.
    pub conn: u64,
    /// Index of the diverging selection inside the frame.
    pub index: usize,
    /// Side A's answer, compact JSON.
    pub a: String,
    /// Side B's answer, compact JSON.
    pub b: String,
}

/// A typed summary of replaying one recording against two targets.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Selection frames compared.
    pub frames: u64,
    /// Selections compared.
    pub selections: u64,
    /// Selections whose canonical encodings differ.
    pub diverged: u64,
    /// Frames containing at least one diverged selection.
    pub diverged_frames: u64,
    /// Fallback-served selections on side A.
    pub fallbacks_a: u64,
    /// Fallback-served selections on side B.
    pub fallbacks_b: u64,
    /// Whether the two outcomes disagree on shape (frame count, per
    /// frame selection count, or frame identity) — counted as total
    /// divergence of the unpaired remainder.
    pub shape_mismatch: bool,
    /// The first divergence, in detail.
    pub first: Option<Divergence>,
}

impl DivergenceReport {
    /// True when the two replays answered byte-identically.
    pub fn clean(&self) -> bool {
        self.diverged == 0 && !self.shape_mismatch
    }
}

fn canonical(selection: &Selection) -> String {
    serde_json::to_string(&serde_json::to_value(selection)).expect("selection serializes")
}

/// Byte-compares two replays of the same recording, selection by
/// selection, and reduces them to a [`DivergenceReport`].
pub fn divergence(a: &ReplayOutcome, b: &ReplayOutcome) -> DivergenceReport {
    let mut report = DivergenceReport {
        frames: a.results.len().max(b.results.len()) as u64,
        selections: 0,
        diverged: 0,
        diverged_frames: 0,
        fallbacks_a: a
            .results
            .iter()
            .flat_map(|r| &r.selections)
            .filter(|s| s.fell_back)
            .count() as u64,
        fallbacks_b: b
            .results
            .iter()
            .flat_map(|r| &r.selections)
            .filter(|s| s.fell_back)
            .count() as u64,
        shape_mismatch: a.results.len() != b.results.len(),
        first: None,
    };
    for (ra, rb) in a.results.iter().zip(&b.results) {
        if ra.seq != rb.seq || ra.selections.len() != rb.selections.len() {
            report.shape_mismatch = true;
        }
        let mut frame_diverged = false;
        for (index, (sa, sb)) in ra.selections.iter().zip(&rb.selections).enumerate() {
            report.selections += 1;
            let (ca, cb) = (canonical(sa), canonical(sb));
            if ca != cb {
                report.diverged += 1;
                frame_diverged = true;
                if report.first.is_none() {
                    report.first = Some(Divergence {
                        seq: ra.seq,
                        tenant: ra.tenant.clone(),
                        conn: ra.conn,
                        index,
                        a: ca,
                        b: cb,
                    });
                }
            }
        }
        if frame_diverged {
            report.diverged_frames += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::FrameBody;
    use intune_core::{ConfigSpace, FeatureDef, FeatureId, FeatureSample};
    use intune_learning::classifiers::Classifier;
    use intune_ml::{DecisionTree, TreeOptions, ZScore};
    use intune_serve::{ModelArtifact, ServeOptions};

    /// A small hand-built artifact (no training pipeline needed): a
    /// 2-landmark tree model routing feature `a@1 < 3.5` to landmark 0,
    /// else 1 — `flipped` inverts the routing, modeling a retrained
    /// revision that changes answers.
    fn artifact(flipped: bool) -> ModelArtifact {
        let space = ConfigSpace::builder().switch("alg", 2).build();
        let defs = vec![FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64, (i * 2) as f64, 1.0])
            .collect();
        let tree_rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..8).map(|i| usize::from((i >= 4) != flipped)).collect();
        let landmarks: Vec<_> = (0..2)
            .map(|c| {
                let mut cfg = space.default_config();
                cfg.set(0, intune_core::ParamValue::Choice(c));
                cfg
            })
            .collect();
        ModelArtifact {
            benchmark: "datalog-test".to_string(),
            feature_defs: defs,
            normalizer: ZScore::fit(&rows),
            landmarks,
            classifier: Classifier::Tree {
                set: intune_core::FeatureSet::from_choices(vec![Some(1), None]),
                tree: DecisionTree::fit_plain(&tree_rows, &labels, 2, TreeOptions::default()),
            },
            centroids: vec![vec![0.0; 3], vec![1.0; 3]],
            dispersion: vec![2.0, 2.0],
            fallback: 0,
            accuracy_threshold: None,
            revision: 1,
            trained_inputs: 8,
        }
    }

    fn vector(x: f64) -> FeatureVector {
        let defs = [FeatureDef::new("a", 2), FeatureDef::new("b", 1)];
        let mut fv = FeatureVector::empty(&defs);
        fv.insert(
            FeatureId {
                property: 0,
                level: 0,
            },
            FeatureSample::new(x / 2.0, 0.5),
        )
        .unwrap();
        fv.insert(
            FeatureId {
                property: 0,
                level: 1,
            },
            FeatureSample::new(x, 1.0),
        )
        .unwrap();
        fv.insert(
            FeatureId {
                property: 1,
                level: 0,
            },
            FeatureSample::new(1.0, 0.25),
        )
        .unwrap();
        fv
    }

    fn service(threads: usize, flipped: bool) -> VectorService {
        VectorService::new(
            artifact(flipped),
            ServeOptions {
                threads,
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    /// A session shape worth replaying: two interleaved connections, a
    /// handshake, mixed batch sizes, a trailing stats poll.
    fn frames() -> Vec<RecordedFrame> {
        let select = |seq: u64, conn: u64, xs: &[f64]| RecordedFrame {
            seq,
            delta_micros: 3,
            tenant: "datalog-test".to_string(),
            conn,
            body: FrameBody::Select {
                features: xs.iter().map(|&x| vector(x)).collect(),
                payloads: vec![],
                trace: None,
            },
        };
        let control = |seq: u64, conn: u64, kind: &str| RecordedFrame {
            seq,
            delta_micros: 3,
            tenant: "datalog-test".to_string(),
            conn,
            body: FrameBody::Control {
                kind: kind.to_string(),
            },
        };
        vec![
            control(0, 0, "Hello"),
            select(1, 0, &[0.0, 5.0]),
            control(2, 1, "Hello"),
            select(3, 1, &[2.0]),
            select(4, 0, &[7.0, 1.0, 4.0]),
            select(5, 1, &[3.0]),
            control(6, 0, "Stats"),
        ]
    }

    #[test]
    fn replay_answers_selection_frames_in_capture_order_and_skips_controls() {
        let svc = service(1, false);
        let outcome = replay(&frames(), &svc, &ReplayOptions::default()).unwrap();
        assert_eq!(outcome.control_skipped, 3);
        assert_eq!(outcome.results.len(), 4);
        assert_eq!(outcome.selections(), 7);
        let seqs: Vec<u64> = outcome.results.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs,
            vec![1, 3, 4, 5],
            "capture order (and with it per-connection order) is preserved"
        );
        assert_eq!(outcome.results[0].conn, 0);
        assert_eq!(outcome.results[1].conn, 1);
        // The routing is the artifact's: a@1 < 3.5 -> landmark 0.
        let landmarks: Vec<usize> = outcome.results[2]
            .selections
            .iter()
            .map(|s| s.landmark)
            .collect();
        assert_eq!(landmarks, vec![1, 0, 1], "x = 7, 1, 4");
    }

    #[test]
    fn replay_is_deterministic_across_runs_and_worker_counts() {
        let baseline = replay(&frames(), &service(1, false), &ReplayOptions::default())
            .unwrap()
            .transcript();
        assert!(!baseline.is_empty());
        for threads in [1, 4] {
            let again = replay(
                &frames(),
                &service(threads, false),
                &ReplayOptions::default(),
            )
            .unwrap()
            .transcript();
            assert_eq!(again, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn paced_replay_answers_exactly_like_fast_replay() {
        // Speed only changes pacing, never answers: a very fast paced
        // replay (deltas of a few µs scaled down further) must produce
        // the same transcript as the as-fast-as-possible path.
        let fast = replay(&frames(), &service(1, false), &ReplayOptions::default()).unwrap();
        let paced = replay(
            &frames(),
            &service(1, false),
            &ReplayOptions { speed: 1000.0 },
        )
        .unwrap();
        assert_eq!(paced.transcript(), fast.transcript());
        assert_eq!(paced.control_skipped, fast.control_skipped);
    }

    #[test]
    fn same_revision_replays_report_zero_divergence() {
        let a = replay(&frames(), &service(1, false), &ReplayOptions::default()).unwrap();
        let b = replay(&frames(), &service(4, false), &ReplayOptions::default()).unwrap();
        let report = divergence(&a, &b);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.frames, 4);
        assert_eq!(report.selections, 7);
        assert_eq!(report.diverged, 0);
        assert_eq!(report.diverged_frames, 0);
        assert!(report.first.is_none());
    }

    #[test]
    fn changed_answers_are_reported_with_first_divergence_detail() {
        let a = replay(&frames(), &service(1, false), &ReplayOptions::default()).unwrap();
        let b = replay(&frames(), &service(1, true), &ReplayOptions::default()).unwrap();
        let report = divergence(&a, &b);
        assert!(!report.clean());
        assert_eq!(
            report.diverged, 7,
            "the flipped tree changes every routing decision"
        );
        assert_eq!(report.diverged_frames, 4);
        assert!(!report.shape_mismatch, "same shape, different answers");
        let first = report.first.expect("first divergence detail");
        assert_eq!(first.seq, 1);
        assert_eq!(first.conn, 0);
        assert_eq!(first.tenant, "datalog-test");
        assert_eq!(first.index, 0);
        assert_ne!(first.a, first.b);
    }

    #[test]
    fn tenant_mismatch_is_a_typed_error_not_a_wrong_answer() {
        let mut fs = frames();
        fs[1].tenant = "someone-else".to_string();
        let err = replay(&fs, &service(1, false), &ReplayOptions::default()).unwrap_err();
        assert!(err.to_string().contains("someone-else"), "{err}");
    }
}
