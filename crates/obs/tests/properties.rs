//! Event-log durability property: a log truncated at **any** byte
//! offset recovers every complete event with a typed torn tail — the
//! obs mirror of the journal and recording truncation properties.

use intune_obs::{scan_events, EventKind, EventLog, Histogram, HistogramSnapshot, LatencySummary};
use proptest::prelude::*;

/// Builds a histogram from `(value, trace_id)` samples: zero trace id
/// records plain, nonzero records with an exemplar.
fn hist(samples: &[(u64, u64)]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &(v, trace_id) in samples {
        if trace_id == 0 {
            h.record(v);
        } else {
            h.record_exemplar(v, trace_id);
        }
    }
    h.snapshot()
}

/// Field-by-field snapshot equality (the type is intentionally not
/// `PartialEq`; readout accessors are the comparison surface).
fn assert_snap_eq(
    a: &HistogramSnapshot,
    b: &HistogramSnapshot,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.count, b.count);
    prop_assert_eq!(a.sum, b.sum);
    prop_assert_eq!(a.max, b.max);
    prop_assert_eq!(
        a.ranges().collect::<Vec<_>>(),
        b.ranges().collect::<Vec<_>>()
    );
    prop_assert_eq!(
        a.exemplars().collect::<Vec<_>>(),
        b.exemplars().collect::<Vec<_>>()
    );
    for q in [0.5, 0.9, 0.99, 0.999] {
        prop_assert_eq!(a.quantile(q), b.quantile(q));
    }
    Ok(())
}

/// A deterministic spread over every event kind.
fn kind(i: usize) -> EventKind {
    match i % 7 {
        0 => EventKind::TenantBound { conn: i as u64 },
        1 => EventKind::ShadowStaged {
            trained_inputs: (i * 10) as u64,
        },
        2 => EventKind::Promoted {
            mirrored: 100 + i as u64,
            agreed: 90 + i as u64,
            agreement_rate: (90 + i) as f64 / (100 + i) as f64,
        },
        3 => EventKind::PromoteRejected {
            reason: format!("gate unsatisfied at step {i}"),
        },
        4 => EventKind::DriftTripped {
            probed: 64,
            ood: i as u64 % 64,
            trip_rate: (i % 64) as f64 / 64.0,
        },
        5 => EventKind::RetrainCycle {
            outcome: "idle".to_string(),
            detail: format!("cycle {i}"),
            new_inputs: i as u64,
            trace_ids: vec![i as u64 + 1],
        },
        _ => EventKind::LatencySnapshot {
            latency: LatencySummary {
                count: i as u64,
                sum_ns: (i * 30) as u64,
                p50_ns: 30,
                p90_ns: 40,
                p99_ns: 50,
                p999_ns: 50,
                max_ns: 50,
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot merge is associative — `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` on
    /// every readout surface (counts, sum, max, bucket ranges, bucket
    /// exemplars, quantiles) — so a fleet of per-tenant histograms can
    /// be folded into a global view in any grouping. Exemplar right
    /// bias is what makes this hold: both groupings land on the
    /// rightmost operand's exemplar per bucket.
    #[test]
    fn snapshot_merge_is_associative(
        a in prop::collection::vec((0u64..2_000_000, 0u64..4), 0..24),
        b in prop::collection::vec((0u64..2_000_000, 0u64..4), 0..24),
        c in prop::collection::vec((0u64..2_000_000, 0u64..4), 0..24),
    ) {
        let (a, b, c) = (hist(&a), hist(&b), hist(&c));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_snap_eq(&left, &right)?;
        // Merging the empty snapshot on either side is the identity.
        let empty = Histogram::new().snapshot();
        assert_snap_eq(&a.merge(&empty), &a)?;
        assert_snap_eq(&empty.merge(&a), &a)?;
    }

    /// Event-log crash tolerance: truncation at **any** byte offset
    /// recovers exactly the complete-event prefix, bit-faithful, and
    /// types the torn tail — never a panic, never a phantom event.
    #[test]
    fn truncated_event_log_recovers_every_complete_event(
        events in 1usize..10, cut_sel in 0usize..100_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "intune-obs-prop-{}-{events}-{cut_sel}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");

        // Write, recording every frame's end offset as a boundary.
        let mut boundaries = vec![0usize];
        {
            let log = EventLog::open(&path).unwrap();
            for i in 0..events {
                log.record(&format!("tenant-{}", i % 2), i as u64, kind(i));
                boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
            }
            prop_assert_eq!(log.appended(), events as u64);
            prop_assert_eq!(log.dropped(), 0);
        }
        let bytes = std::fs::read(&path).unwrap();
        let clean = scan_events(&bytes);
        prop_assert!(clean.torn.is_none());
        prop_assert_eq!(clean.events.len(), events);

        let cut = cut_sel % (bytes.len() + 1);
        let scan = scan_events(&bytes[..cut]);
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(
            scan.events.len(), complete,
            "cut at {} must keep exactly the complete prefix", cut
        );
        for (a, b) in scan.events.iter().zip(&clean.events) {
            prop_assert_eq!(a, b, "recovered events are bit-faithful");
        }
        let on_boundary = boundaries.contains(&cut);
        prop_assert_eq!(
            scan.torn.is_none(), on_boundary,
            "torn tail iff the cut splits a frame (cut at {})", cut
        );
        prop_assert_eq!(scan.consumed, *boundaries[..=complete].last().unwrap());
        if let Some(torn) = scan.torn {
            prop_assert!(
                matches!(torn, intune_core::Error::Artifact { .. }),
                "torn tail must be the typed artifact error, got {:?}", torn
            );
        }

        // Reopening the truncated log recovers: the torn tail is
        // dropped and the sequence resumes after the last survivor.
        std::fs::write(&path, &bytes[..cut]).unwrap();
        {
            let log = EventLog::open(&path).unwrap();
            log.record("post-crash", 0, EventKind::TenantBound { conn: 0 });
        }
        let reopened = scan_events(&std::fs::read(&path).unwrap());
        prop_assert!(reopened.torn.is_none(), "recovery must leave a clean log");
        prop_assert_eq!(reopened.events.len(), complete + 1);
        prop_assert_eq!(reopened.events.last().unwrap().seq, complete as u64);
        std::fs::remove_dir_all(&dir).ok();
    }
}
