//! Metrics under concurrency: readout stays consistent while 4 threads
//! record and a promote swaps the primary service pointer mid-stream —
//! the exact shape of the daemon's hot path, where per-tenant metrics
//! live *beside* the `ArcSwap`'d service and must survive the swap.

use arc_swap::ArcSwap;
use intune_obs::{Counter, Histogram, LatencySummary};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

/// Stand-in for a serving revision behind the tenant's `ArcSwap`.
struct Revision {
    id: u64,
}

/// Stand-in for a tenant: metrics sit beside the swappable primary,
/// not inside it, so recording never races the promote.
struct TenantLike {
    primary: ArcSwap<Revision>,
    requests: Counter,
    latency: Histogram,
}

#[test]
fn readout_consistent_while_four_threads_record_across_a_promote() {
    const PER_THREAD: u64 = 25_000;
    let tenant = Arc::new(TenantLike {
        primary: ArcSwap::from_pointee(Revision { id: 1 }),
        requests: Counter::new(),
        latency: Histogram::new(),
    });
    let start = Barrier::new(6);
    let start = Arc::new(start);
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // 4 recorder threads: load the primary (as the select path
        // does), then record one request + one latency sample.
        for t in 0..4u64 {
            let tenant = Arc::clone(&tenant);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                for i in 0..PER_THREAD {
                    let rev = tenant.primary.load();
                    assert!(rev.id == 1 || rev.id == 2, "torn revision pointer");
                    tenant.requests.incr();
                    // Deterministic value spread: 1..=1000 ns.
                    tenant.latency.record(1 + (t * PER_THREAD + i) % 1000);
                }
            });
        }
        // Promoter: swap the primary mid-stream, repeatedly.
        {
            let tenant = Arc::clone(&tenant);
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                start.wait();
                let mut id = 2;
                while !done.load(Ordering::Relaxed) {
                    tenant.primary.store(Arc::new(Revision { id }));
                    id = 3 - id; // alternate 1 <-> 2
                    std::thread::yield_now();
                }
            });
        }
        // Reader: concurrent snapshots must be internally consistent
        // (monotone count, quantiles ordered, p999 <= max) at every
        // instant, not only at quiescence.
        start.wait();
        let mut last_count = 0u64;
        loop {
            let count = tenant.requests.get();
            assert!(count >= last_count, "counter went backwards");
            last_count = count;
            let snap = tenant.latency.snapshot();
            let s = LatencySummary::of(&snap);
            assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
            assert!(s.p99_ns <= s.p999_ns && s.p999_ns <= s.max_ns);
            assert!(snap.count <= 4 * PER_THREAD);
            if count == 4 * PER_THREAD {
                break;
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    // Quiescent readout is exact: every recorded value landed.
    assert_eq!(tenant.requests.get(), 4 * PER_THREAD);
    let snap = tenant.latency.snapshot();
    assert_eq!(snap.count, 4 * PER_THREAD);
    assert_eq!(snap.max, 1000);
    // Sum of 4 threads x (1..=1000 repeated 25 times each): each thread
    // records values (1 + k % 1000) for k in 0..25000 = 25 full cycles.
    assert_eq!(snap.sum, 4 * 25 * 500_500);
}
