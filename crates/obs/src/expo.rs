//! Prometheus-style text exposition.
//!
//! Renders counters and histogram snapshots in the Prometheus 0.0.4
//! text format: counters as `# TYPE name counter` + one sample line,
//! histograms as summaries — `name{quantile="0.5"} ...` lines for
//! p50/p90/p99/p999 plus `name_count` and `name_sum`. Durations are
//! recorded in nanoseconds and exposed in **seconds** (the Prometheus
//! base unit); callers name such series with a `_seconds` suffix.
//!
//! The renderer is a plain string builder — no IO, no locking — so the
//! daemon can snapshot its metrics and render the scrape body without
//! touching the serving hot path.

use crate::HistogramSnapshot;

/// The standard summary quantiles the runtime exposes.
pub const QUANTILES: [(&str, f64); 4] = [
    ("0.5", 0.50),
    ("0.9", 0.90),
    ("0.99", 0.99),
    ("0.999", 0.999),
];

/// Accumulates one exposition body.
#[derive(Default)]
pub struct TextExposition {
    out: String,
}

impl TextExposition {
    /// An empty body.
    #[must_use]
    pub fn new() -> TextExposition {
        TextExposition::default()
    }

    /// Renders one counter sample with optional labels.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.type_line(name, "counter");
        self.sample(name, labels, &value.to_string());
    }

    /// Renders one gauge sample with optional labels.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.type_line(name, "gauge");
        self.sample(name, labels, &format_float(value));
    }

    /// Renders a duration histogram as a summary: the four standard
    /// quantiles plus `_count`/`_sum`. Recorded values are nanoseconds;
    /// exposed values are seconds, so `name` should end in `_seconds`.
    pub fn summary_seconds(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.type_line(name, "summary");
        for (label, q) in QUANTILES {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", label));
            self.sample(name, &with_q, &format_float(snap.quantile(q) as f64 / 1e9));
        }
        self.sample(&format!("{name}_count"), labels, &snap.count.to_string());
        self.sample(
            &format!("{name}_sum"),
            labels,
            &format_float(snap.sum as f64 / 1e9),
        );
    }

    /// [`summary_seconds`](Self::summary_seconds) plus an OpenMetrics
    /// exemplar: when the snapshot saw a sampled request, the `_count`
    /// line carries `# {trace_id="<16-hex>"} <seconds>` referencing the
    /// slowest traced request — the one an operator chasing a latency
    /// spike wants to pull up in `intune_trace`. Without an exemplar
    /// the output is byte-identical to `summary_seconds`.
    pub fn summary_seconds_with_exemplar(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.type_line(name, "summary");
        for (label, q) in QUANTILES {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", label));
            self.sample(name, &with_q, &format_float(snap.quantile(q) as f64 / 1e9));
        }
        let mut count = snap.count.to_string();
        if let Some((value_ns, trace_id)) = snap.slowest_exemplar() {
            count.push_str(&format!(
                " # {{trace_id=\"{trace_id:016x}\"}} {}",
                format_float(value_ns as f64 / 1e9)
            ));
        }
        self.sample(&format!("{name}_count"), labels, &count);
        self.sample(
            &format!("{name}_sum"),
            labels,
            &format_float(snap.sum as f64 / 1e9),
        );
    }

    /// The rendered body.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        // Emit each `# TYPE` once, before the series' first sample.
        let marker = format!("# TYPE {name} {kind}\n");
        if !self.out.contains(&marker) {
            self.out.push_str(&marker);
        }
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for ch in v.chars() {
                    // Prometheus label-value escaping.
                    match ch {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        _ => self.out.push(ch),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }
}

/// Prints a float the way Prometheus expects: decimal, no exponent for
/// ordinary magnitudes, and integral values without a trailing `.0`
/// requirement (Prometheus accepts both; we keep them exact).
fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn counter_and_gauge_render() {
        let mut expo = TextExposition::new();
        expo.counter("intune_requests_total", &[("tenant", "sort")], 42);
        expo.counter("intune_requests_total", &[("tenant", "cluster")], 7);
        expo.gauge("intune_connections", &[], 3.0);
        let body = expo.finish();
        assert_eq!(
            body,
            "# TYPE intune_requests_total counter\n\
             intune_requests_total{tenant=\"sort\"} 42\n\
             intune_requests_total{tenant=\"cluster\"} 7\n\
             # TYPE intune_connections gauge\n\
             intune_connections 3.0\n"
        );
    }

    #[test]
    fn summary_renders_quantiles_count_and_sum_in_seconds() {
        let h = Histogram::new();
        h.record(1_000_000_000); // 1 s
        let mut expo = TextExposition::new();
        expo.summary_seconds(
            "intune_request_seconds",
            &[("tenant", "sort")],
            &h.snapshot(),
        );
        let body = expo.finish();
        assert!(body.starts_with("# TYPE intune_request_seconds summary\n"));
        assert!(body.contains("intune_request_seconds{tenant=\"sort\",quantile=\"0.5\"} 1.0\n"));
        assert!(body.contains("intune_request_seconds{tenant=\"sort\",quantile=\"0.999\"} 1.0\n"));
        assert!(body.contains("intune_request_seconds_count{tenant=\"sort\"} 1\n"));
        assert!(body.contains("intune_request_seconds_sum{tenant=\"sort\"} 1.0\n"));
    }

    #[test]
    fn summary_exemplar_rides_the_count_line() {
        let h = Histogram::new();
        h.record(500_000_000);
        h.record_exemplar(1_000_000_000, 0xff);
        let mut expo = TextExposition::new();
        expo.summary_seconds_with_exemplar("s", &[("tenant", "sort")], &h.snapshot());
        let body = expo.finish();
        assert!(
            body.contains("s_count{tenant=\"sort\"} 2 # {trace_id=\"00000000000000ff\"} 1.0\n"),
            "exemplar missing from:\n{body}"
        );

        // No sampled traffic: byte-identical to the plain summary.
        let h = Histogram::new();
        h.record(500_000_000);
        let mut plain = TextExposition::new();
        plain.summary_seconds("s", &[], &h.snapshot());
        let mut with = TextExposition::new();
        with.summary_seconds_with_exemplar("s", &[], &h.snapshot());
        assert_eq!(plain.finish(), with.finish());
    }

    #[test]
    fn label_values_are_escaped() {
        let mut expo = TextExposition::new();
        expo.counter("x", &[("k", "a\"b\\c\nd")], 1);
        assert!(expo.finish().contains("x{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
