//! Log-bucketed wait-free latency histograms.
//!
//! # Bucket scheme
//!
//! Values are unsigned 64-bit integers (the runtime records
//! nanoseconds). Buckets follow an HDR-style log-linear layout with
//! [`SUB_BUCKETS`] = 16 sub-buckets per power of two:
//!
//! - `v < 16`: bucket `v` — one exact bucket per value.
//! - `v >= 16`: let `e` be the position of the leading one bit
//!   (`e = 63 - v.leading_zeros()`, so `e >= 4`) and `sub` the 4 bits
//!   that follow it (`(v >> (e - 4)) & 0xF`). The bucket index is
//!   `16 + (e - 4) * 16 + sub`.
//!
//! Each bucket spans `2^(e-4)` consecutive values starting at
//! `(16 + sub) << (e - 4)`, so the worst-case relative width is
//! 1/16 = **6.25%** — a reported quantile is the upper bound of its
//! bucket, at most 6.25% above the true value. The last bucket
//! (index [`NUM_BUCKETS`]` - 1`) ends exactly at `u64::MAX`; no value
//! overflows the table.
//!
//! Recording is wait-free: one relaxed `fetch_add` on the bucket, one
//! on the running sum, and one `fetch_max` for the exact maximum. The
//! exact maximum lets the readout clamp every quantile, so
//! `p999 <= max` holds even though buckets report upper bounds.
//!
//! A [`snapshot`](Histogram::snapshot) taken while writers are
//! recording sees some consistent-enough interleaving: each recorded
//! value is either fully present (bucket + sum + max) or not yet
//! visible; counts never tear.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (4 bits of mantissa after the leading
/// one). Fixed by the format: changing it changes every bucket bound.
pub const SUB_BUCKETS: usize = 16;

/// Total bucket count: 16 exact small-value buckets plus 16 sub-buckets
/// for each exponent 4..=63.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total and monotone over `u64`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let e = (63 - v.leading_zeros()) as usize;
    let sub = ((v >> (e - 4)) & 0xF) as usize;
    SUB_BUCKETS + (e - 4) * SUB_BUCKETS + sub
}

/// The inclusive `(low, high)` value range bucket `index` covers.
///
/// # Panics
/// Panics when `index >= NUM_BUCKETS` — bucket indices come from
/// [`bucket_index`], which never produces one.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let g = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let low = (SUB_BUCKETS as u64 + sub) << g;
    let width = 1u64 << g;
    (low, low + (width - 1))
}

/// A wait-free log-bucketed histogram of `u64` values.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Last sampled trace id seen per bucket (0 = none): the OpenMetrics
    /// exemplar slot linking an aggregate bucket back to one concrete
    /// traced request. Written only for sampled requests, so the common
    /// (untraced) record path never touches this array.
    exemplars: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram (~15 KiB of zeroed buckets + exemplars).
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Wait-free: three relaxed atomic ops, no
    /// allocation, no branches beyond the bucket-index math.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one value from a *sampled* request, remembering its
    /// trace id as the bucket's exemplar (last writer wins; a zero
    /// trace id degrades to a plain [`record`](Self::record)). Still
    /// wait-free: one extra relaxed store.
    pub fn record_exemplar(&self, v: u64, trace_id: u64) {
        let index = bucket_index(v);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplars[index].store(trace_id, Ordering::Relaxed);
        }
    }

    /// Copies the current counts into an immutable snapshot for
    /// readout. Safe to call while writers are recording.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut exemplars = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                count += c;
                buckets.push((i, c));
                let ex = self.exemplars[i].load(Ordering::Relaxed);
                if ex != 0 {
                    exemplars.push((i, ex));
                }
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
            exemplars,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("max", &snap.max)
            .finish()
    }
}

/// An immutable point-in-time copy of a [`Histogram`]'s counts.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wraps only past 2^64 total).
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(bucket_index, count)`, index-ascending.
    buckets: Vec<(usize, u64)>,
    /// Exemplar trace ids as `(bucket_index, trace_id)`,
    /// index-ascending; only buckets that saw a sampled request appear.
    exemplars: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile readout: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th value, clamped to the exact
    /// recorded maximum (so `quantile(0.999) <= max` always holds).
    /// `q` is clamped to `[0, 1]`; an empty snapshot reads 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                let (_, high) = bucket_bounds(index);
                return high.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(low, high, count)` value ranges.
    pub fn ranges(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().map(|&(index, count)| {
            let (low, high) = bucket_bounds(index);
            (low, high, count)
        })
    }

    /// Bucket exemplars as `(low, high, trace_id)` value ranges.
    pub fn exemplars(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.exemplars.iter().map(|&(index, trace_id)| {
            let (low, high) = bucket_bounds(index);
            (low, high, trace_id)
        })
    }

    /// The most interesting exemplar: the trace id from the highest
    /// (slowest) bucket that saw a sampled request, with the bucket's
    /// upper-bound value. `None` when no sampled request was recorded.
    #[must_use]
    pub fn slowest_exemplar(&self) -> Option<(u64, u64)> {
        self.exemplars.last().map(|&(index, trace_id)| {
            let (_, high) = bucket_bounds(index);
            (high.min(self.max), trace_id)
        })
    }

    /// Merges two snapshots into the snapshot an aggregate histogram
    /// would have produced: counts and sums add, maxima take the max,
    /// and where both sides carry an exemplar for a bucket, `other`'s
    /// (the right operand's) wins. Right bias makes the operation
    /// associative: chaining merges left-to-right or right-to-left
    /// lands on the same — rightmost — exemplar per bucket.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(usize, u64)> = Vec::new();
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        a.next();
                        (ia, ca)
                    }
                    std::cmp::Ordering::Greater => {
                        b.next();
                        (ib, cb)
                    }
                    std::cmp::Ordering::Equal => {
                        a.next();
                        b.next();
                        (ia, ca + cb)
                    }
                },
                (Some(&&entry), None) => {
                    a.next();
                    entry
                }
                (None, Some(&&entry)) => {
                    b.next();
                    entry
                }
                (None, None) => break,
            };
            buckets.push(next);
        }
        let mut exemplars: Vec<(usize, u64)> = other.exemplars.clone();
        for &(index, trace_id) in &self.exemplars {
            if !exemplars.iter().any(|&(i, _)| i == index) {
                exemplars.push((index, trace_id));
            }
        }
        exemplars.sort_unstable_by_key(|&(i, _)| i);
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
            buckets,
            exemplars,
        }
    }
}

/// The standard percentile readout the runtime ships over the wire and
/// prints in stats: p50/p90/p99/p999 plus the exact max, in
/// nanoseconds.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values, nanoseconds.
    pub sum_ns: u64,
    /// Median, nanoseconds (bucket upper bound, <= 6.25% high).
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Reads the standard percentiles out of a snapshot.
    #[must_use]
    pub fn of(snap: &HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            count: snap.count,
            sum_ns: snap.sum,
            p50_ns: snap.quantile(0.50),
            p90_ns: snap.quantile(0.90),
            p99_ns: snap.quantile(0.99),
            p999_ns: snap.quantile(0.999),
            max_ns: snap.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bucket scheme is a format: pin it value by value.
    #[test]
    fn bucket_scheme_is_pinned() {
        // Small values get exact buckets.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        // 16..32 are still exact (width-1 buckets, e = 4).
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_bounds(31), (31, 31));
        // e = 5: width-2 buckets.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_bounds(32), (32, 33));
        // A mid-range value: 1000 ns = 0b1111101000, e = 9, sub = 0b1111.
        assert_eq!(bucket_index(1000), 16 + 5 * 16 + 15);
        assert_eq!(bucket_bounds(bucket_index(1000)), (992, 1023));
        // The table is total: u64::MAX lands in the last bucket, whose
        // range ends exactly at u64::MAX.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    /// Every bucket's bounds round-trip through the index function and
    /// tile the u64 line with no gaps or overlaps.
    #[test]
    fn buckets_tile_the_value_space() {
        let mut expected_low = 0u64;
        for i in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(i);
            assert_eq!(low, expected_low, "gap/overlap before bucket {i}");
            assert_eq!(bucket_index(low), i);
            assert_eq!(bucket_index(high), i);
            if i + 1 == NUM_BUCKETS {
                assert_eq!(high, u64::MAX);
                break;
            }
            expected_low = high + 1;
        }
    }

    /// Relative bucket width stays within the documented 6.25%.
    #[test]
    fn relative_error_bound_holds() {
        for v in [17u64, 100, 999, 12_345, 1_000_000, 123_456_789] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(
                (high - low) as f64 <= low as f64 / 16.0 + 1.0,
                "bucket [{low}, {high}] too wide for {v}"
            );
        }
    }

    /// Quantile readout pinned on a known distribution.
    #[test]
    fn quantile_readout_is_pinned() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.max, 1000);
        // True p50 is 500; bucket upper bound within 6.25% above.
        let p50 = snap.quantile(0.50);
        assert!((500..=531).contains(&p50), "p50 = {p50}");
        let p90 = snap.quantile(0.90);
        assert!((900..=956).contains(&p90), "p90 = {p90}");
        // p999 and p100 clamp to the exact max.
        assert_eq!(snap.quantile(0.999), 1000);
        assert_eq!(snap.quantile(1.0), 1000);
        // Percentiles are monotone.
        assert!(snap.quantile(0.5) <= snap.quantile(0.9));
        assert!(snap.quantile(0.9) <= snap.quantile(0.99));
        assert!(snap.quantile(0.99) <= snap.quantile(0.999));
    }

    /// Quantiles never exceed the exact max even when the max's bucket
    /// upper bound does.
    #[test]
    fn quantiles_clamp_to_exact_max() {
        let h = Histogram::new();
        h.record(1_000_003); // bucket upper bound is above the value
        let snap = h.snapshot();
        let (_, high) = bucket_bounds(bucket_index(1_000_003));
        assert!(high > 1_000_003);
        assert_eq!(snap.quantile(0.999), 1_000_003);
        assert_eq!(snap.max, 1_000_003);
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        let summary = LatencySummary::of(&snap);
        assert_eq!(summary, LatencySummary::default());
    }

    /// A single sample is every percentile: p50 through p999 and max
    /// all read back the one recorded value exactly (the clamp to the
    /// exact max defeats the bucket's upper-bound rounding).
    #[test]
    fn single_sample_reads_back_at_every_percentile() {
        let h = Histogram::new();
        h.record(777_777);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(snap.quantile(q), 777_777, "q = {q}");
        }
        let s = LatencySummary::of(&snap);
        assert_eq!(s.p999_ns, 777_777);
        assert_eq!(s.max_ns, 777_777);
    }

    #[test]
    fn exemplars_remember_the_last_sampled_trace_per_bucket() {
        let h = Histogram::new();
        h.record(100); // untraced traffic leaves no exemplar
        h.record_exemplar(100, 0xaaa);
        h.record_exemplar(101, 0xbbb); // same bucket: last writer wins
        h.record_exemplar(1_000_000, 0xccc);
        h.record_exemplar(50, 0); // zero trace id leaves no exemplar
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        let exemplars: Vec<(u64, u64, u64)> = snap.exemplars().collect();
        assert_eq!(exemplars.len(), 2);
        assert_eq!(exemplars[0].2, 0xbbb);
        assert_eq!(exemplars[1].2, 0xccc);
        let (slowest_ns, slowest_trace) = snap.slowest_exemplar().unwrap();
        assert_eq!(slowest_trace, 0xccc);
        assert_eq!(slowest_ns, 1_000_000, "clamped to the exact max");
        assert!(Histogram::new().snapshot().slowest_exemplar().is_none());
    }

    #[test]
    fn merge_adds_counts_and_right_biases_exemplars() {
        let (a, b) = (Histogram::new(), Histogram::new());
        a.record_exemplar(100, 0x1);
        a.record(40);
        b.record_exemplar(100, 0x2);
        b.record_exemplar(9_999, 0x3);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 100 + 40 + 100 + 9_999);
        assert_eq!(merged.max, 9_999);
        let exemplars: Vec<(u64, u64, u64)> = merged.exemplars().collect();
        // Shared bucket: the right operand's exemplar wins.
        assert_eq!(exemplars[0].2, 0x2);
        assert_eq!(exemplars[1].2, 0x3);
        // Quantiles read from the merged counts.
        assert_eq!(merged.quantile(1.0), 9_999);
        // Merging with an empty snapshot is the identity on counts.
        let empty = Histogram::new().snapshot();
        let same = a.snapshot().merge(&empty);
        assert_eq!(same.count, a.snapshot().count);
        assert_eq!(same.sum, a.snapshot().sum);
    }

    #[test]
    fn summary_reads_all_standard_percentiles() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        let s = LatencySummary::of(&h.snapshot());
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 150);
        assert_eq!(s.p50_ns, 30);
        assert_eq!(s.max_ns, 50);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns && s.p999_ns <= s.max_ns);
    }
}
