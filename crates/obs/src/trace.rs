//! Sampled span capture: the per-request causality layer.
//!
//! Aggregates (counters, histograms) say *that* p999 moved; spans say
//! *which* request moved it, *which* stage spent the time, and *which*
//! artifact revision answered. A [`Span`] is one timed operation inside
//! a trace ([`intune_core::TraceContext`] names the trace); spans from
//! every process append to a crash-tolerant [`SpanLog`] — the same
//! checksummed-frame + torn-tail discipline as the [`EventLog`]
//! (schema `intune-obs-span` v1), equally best-effort-infallible on the
//! record path.
//!
//! Cost is bounded head-based: a [`Sampler`] admits 1-in-N requests
//! (N = 0 disables tracing entirely), and only sampled requests pay for
//! span assembly. Ids come from an [`IdMinter`] — a per-process nonce
//! mixed with a monotone counter, never wall-clock time — so tests and
//! replays see stable, collision-free ids.
//!
//! The `intune_trace` bin reconstructs trace trees from one or more
//! span logs (client + daemon files side by side in one directory).

use intune_core::codec::{encode_record, fnv1a64, scan_records};
use intune_core::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Span-log record schema name.
pub const SPAN_SCHEMA: &str = "intune-obs-span";
/// Span-log record schema version.
pub const SPAN_VERSION: u32 = 1;

/// File-name suffix every span log uses, so tools can sweep a directory
/// holding one log per process (`daemon.spans.log`, `client.spans.log`).
pub const SPAN_LOG_SUFFIX: &str = ".spans.log";

/// One timed operation inside a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// Parent span id (0 = a trace root).
    pub parent_span: u64,
    /// Operation name, dot-scoped by layer (`client.select_batch`,
    /// `server.request`, `stage.decode`, `service.select`).
    pub name: String,
    /// The tenant (benchmark) the operation served (`"-"` if none).
    pub tenant: String,
    /// Wall-clock start, milliseconds since the unix epoch.
    pub start_unix_ms: u64,
    /// Elapsed nanoseconds.
    pub duration_ns: u64,
    /// Free-form `key=value` annotations (revision, drift score,
    /// fallback / probe verdicts, batch size, ...).
    pub annotations: Vec<(String, String)>,
}

impl Span {
    /// A span with no annotations yet; timing fields start zeroed and
    /// are filled by the recording site.
    #[must_use]
    pub fn new(trace_id: u64, span_id: u64, parent_span: u64, name: &str, tenant: &str) -> Span {
        Span {
            trace_id,
            span_id,
            parent_span,
            name: name.to_string(),
            tenant: tenant.to_string(),
            start_unix_ms: crate::events::unix_ms_now(),
            duration_ns: 0,
            annotations: Vec::new(),
        }
    }

    /// Adds one `key=value` annotation (builder style).
    #[must_use]
    pub fn annotate(mut self, key: &str, value: impl ToString) -> Span {
        self.annotations.push((key.to_string(), value.to_string()));
        self
    }

    /// Sets the elapsed time (builder style).
    #[must_use]
    pub fn lasting(mut self, duration_ns: u64) -> Span {
        self.duration_ns = duration_ns;
        self
    }
}

/// Head-based 1-in-N sampler. Wait-free: one relaxed `fetch_add` per
/// decision; `every = 0` never samples (the default, tracing off),
/// `every = 1` samples everything.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    counter: AtomicU64,
}

impl Sampler {
    /// A sampler admitting 1 in `every` requests (0 = none).
    #[must_use]
    pub fn new(every: u64) -> Sampler {
        Sampler {
            every,
            counter: AtomicU64::new(0),
        }
    }

    /// Whether tracing is enabled at all (`every > 0`).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// The configured 1-in-N rate (0 = off).
    #[must_use]
    pub fn rate(&self) -> u64 {
        self.every
    }

    /// Decides one request: the first and every `every`-th thereafter
    /// samples.
    pub fn decide(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }
}

/// Deterministic id source: a fixed nonce (derived from stable process
/// identity, never the clock) mixed with a monotone counter. Two
/// processes with different nonces cannot collide in practice; one
/// process never repeats an id.
#[derive(Debug)]
pub struct IdMinter {
    nonce: u64,
    counter: AtomicU64,
}

impl IdMinter {
    /// A minter whose nonce is the FNV-1a hash of `seed` (e.g.
    /// `"client/1234/sort"`).
    #[must_use]
    pub fn new(seed: &str) -> IdMinter {
        IdMinter {
            nonce: fnv1a64(seed.as_bytes()),
            counter: AtomicU64::new(0),
        }
    }

    /// The next id: never 0 (0 is the "no parent" sentinel).
    pub fn next(&self) -> u64 {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = self.nonce ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if id == 0 {
            1
        } else {
            id
        }
    }
}

/// The crash-tolerant span-log append handle: the [`EventLog`]
/// discipline applied to spans. Appends are best-effort and infallible
/// at the call site — encode or IO failures count into `dropped`.
///
/// [`EventLog`]: crate::EventLog
pub struct SpanLog {
    path: PathBuf,
    file: Mutex<File>,
    appended: AtomicU64,
    dropped: AtomicU64,
}

impl SpanLog {
    /// Opens (or creates) the span log at `path`, truncating a torn
    /// tail so the next append starts on a frame boundary.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the file cannot be read,
    /// created, or truncated.
    pub fn open(path: &Path) -> Result<SpanLog> {
        let consumed = match std::fs::read(path) {
            Ok(bytes) => Some(scan_spans(&bytes).consumed as u64),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                return Err(Error::artifact(format!(
                    "cannot read span log {}: {e}",
                    path.display()
                )))
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| {
                Error::artifact(format!("cannot open span log {}: {e}", path.display()))
            })?;
        if let Some(consumed) = consumed {
            file.set_len(consumed).map_err(|e| {
                Error::artifact(format!("cannot truncate span log {}: {e}", path.display()))
            })?;
        }
        Ok(SpanLog {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Appends one span, best-effort: the frame is assembled outside
    /// the writer lock and written with one `write(2)`; failures count
    /// into [`dropped`](Self::dropped) and never surface.
    pub fn record(&self, span: &Span) {
        let value = serde_json::to_value(span);
        let Ok(frame) = encode_record(SPAN_SCHEMA, SPAN_VERSION, value) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut file = match self.file.lock() {
            Ok(file) => file,
            Err(poisoned) => poisoned.into_inner(),
        };
        if file.write_all(&frame).is_ok() {
            self.appended.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Where the log lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Spans successfully appended by this handle.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Spans this handle failed to append.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog")
            .field("path", &self.path)
            .field("appended", &self.appended())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Outcome of scanning a span-log byte stream.
#[derive(Debug)]
pub struct SpanScan {
    /// Every complete, checksum-verified span, in append order.
    pub spans: Vec<Span>,
    /// Bytes the complete spans consumed (the safe truncation point).
    pub consumed: usize,
    /// Typed description of a torn or corrupt tail, if any.
    pub torn: Option<Error>,
}

/// Scans a byte stream of span-log frames: truncation at any offset
/// yields every complete span plus a typed `torn` error, never a panic.
#[must_use]
pub fn scan_spans(bytes: &[u8]) -> SpanScan {
    let scan = scan_records(bytes, SPAN_SCHEMA, SPAN_VERSION);
    let mut spans = Vec::with_capacity(scan.records.len());
    let mut torn = scan.torn;
    for value in scan.records {
        match serde_json::from_value::<Span>(&value) {
            Ok(span) => spans.push(span),
            Err(e) => {
                torn = Some(Error::artifact(format!(
                    "span record does not deserialize: {e}"
                )));
                break;
            }
        }
    }
    SpanScan {
        spans,
        consumed: scan.consumed,
        torn,
    }
}

/// Reads and scans the span log at `path`.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be read. A torn
/// tail is *not* an error — it comes back typed in [`SpanScan::torn`].
pub fn read_spans(path: &Path) -> Result<SpanScan> {
    let bytes = std::fs::read(path)
        .map_err(|e| Error::artifact(format!("cannot read span log {}: {e}", path.display())))?;
    Ok(scan_spans(&bytes))
}

/// Sweeps every `*.spans.log` file in `dir` (name order, so output is
/// deterministic) and merges their spans into one scan. Each file's
/// torn tail is tolerated independently; the last one seen is reported.
///
/// # Errors
/// Returns [`Error::Artifact`] when the directory cannot be listed or a
/// log file cannot be read.
pub fn read_span_dir(dir: &Path) -> Result<SpanScan> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| Error::artifact(format!("cannot list span dir {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(SPAN_LOG_SUFFIX))
        })
        .collect();
    names.sort();
    let mut merged = SpanScan {
        spans: Vec::new(),
        consumed: 0,
        torn: None,
    };
    for path in names {
        let scan = read_spans(&path)?;
        merged.spans.extend(scan.spans);
        merged.consumed += scan.consumed;
        if scan.torn.is_some() {
            merged.torn = scan.torn;
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "intune-obs-span-test-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spans_round_trip_with_annotations() {
        let dir = tmp("roundtrip");
        let path = dir.join("t.spans.log");
        let log = SpanLog::open(&path).unwrap();
        let span = Span::new(0xabc, 2, 1, "stage.decode", "sort")
            .annotate("revision", 3)
            .annotate("batch", 64)
            .lasting(12_345);
        log.record(&span);
        assert_eq!(log.appended(), 1);
        let scan = read_spans(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.spans, vec![span]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_keeps_complete_spans() {
        let dir = tmp("torn");
        let path = dir.join("t.spans.log");
        {
            let log = SpanLog::open(&path).unwrap();
            log.record(&Span::new(1, 1, 0, "a", "-").lasting(10));
            log.record(&Span::new(1, 2, 1, "b", "-").lasting(20));
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let log = SpanLog::open(&path).unwrap();
        log.record(&Span::new(1, 3, 1, "c", "-").lasting(30));
        let scan = read_spans(&path).unwrap();
        assert!(scan.torn.is_none(), "recovery left a torn tail");
        let names: Vec<&str> = scan.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"], "torn span dropped, log resumed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampler_admits_one_in_n_and_zero_disables() {
        let off = Sampler::new(0);
        assert!(!off.enabled());
        assert!((0..100).all(|_| !off.decide()));

        let s = Sampler::new(4);
        assert!(s.enabled());
        let decisions: Vec<bool> = (0..8).map(|_| s.decide()).collect();
        assert_eq!(
            decisions,
            vec![true, false, false, false, true, false, false, false]
        );

        let all = Sampler::new(1);
        assert!((0..10).all(|_| all.decide()));
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let m = IdMinter::new("test/1");
        let ids: Vec<u64> = (0..1000).map(|_| m.next()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids repeat");
        // Different seeds take different id sequences.
        let other = IdMinter::new("test/2");
        assert_ne!(other.next(), ids[0]);
    }

    #[test]
    fn span_dir_sweep_merges_logs_in_name_order() {
        let dir = tmp("sweep");
        let a = SpanLog::open(&dir.join("a.spans.log")).unwrap();
        let b = SpanLog::open(&dir.join("b.spans.log")).unwrap();
        b.record(&Span::new(9, 2, 1, "server.request", "sort").lasting(5));
        a.record(&Span::new(9, 1, 0, "client.select_batch", "sort").lasting(9));
        // A foreign file is ignored by the sweep.
        std::fs::write(dir.join("notes.txt"), b"not a span log").unwrap();
        let scan = read_span_dir(&dir).unwrap();
        assert!(scan.torn.is_none());
        let names: Vec<&str> = scan.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["client.select_batch", "server.request"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
