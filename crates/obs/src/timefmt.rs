//! Unix-millisecond → ISO-8601 UTC rendering, dependency-free.
//!
//! The timeline dump needs human-readable timestamps and the container
//! has no `chrono`; the civil-from-days algorithm (Howard Hinnant's
//! `days_from_civil` inverse) is a handful of integer ops and exact
//! over the whole representable range.

/// Renders milliseconds-since-epoch as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
#[must_use]
pub fn iso8601_utc_ms(unix_ms: u64) -> String {
    let secs = (unix_ms / 1000) as i64;
    let millis = unix_ms % 1000;
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let (year, month, day) = civil_from_days(days);
    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
}

/// Proleptic-Gregorian date for a day count since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // March-based month [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamps_render_exactly() {
        assert_eq!(iso8601_utc_ms(0), "1970-01-01T00:00:00.000Z");
        // 2004-02-29 (leap day) 12:00:00 UTC = 1078056000.
        assert_eq!(
            iso8601_utc_ms(1_078_056_000_000),
            "2004-02-29T12:00:00.000Z"
        );
        // 2026-08-08 00:00:00 UTC = 1786147200.
        assert_eq!(
            iso8601_utc_ms(1_786_147_200_123),
            "2026-08-08T00:00:00.123Z"
        );
        // End-of-year boundary: 2023-12-31 23:59:59 UTC = 1704067199.
        assert_eq!(
            iso8601_utc_ms(1_704_067_199_999),
            "2023-12-31T23:59:59.999Z"
        );
    }
}
