//! # intune_obs — the unified observability layer
//!
//! The paper's claim (input-adaptive selection beats any fixed
//! configuration) is only auditable in production if the system can
//! show its selection behaviour live. This crate is the shared
//! substrate every layer records into:
//!
//! - **[`Counter`]** — sharded relaxed-atomic event counters and
//!   **[`Histogram`]** — log-bucketed latency histograms with
//!   p50/p90/p99/p999 readout ([`LatencySummary`]). Both are wait-free
//!   on the record path: no locks, no CAS loops, so hot-path recording
//!   cannot perturb the lock-free `ArcSwap` serving design.
//! - **[`EventLog`]** — a crash-tolerant structured log of lifecycle
//!   events (tenant bind, shadow stage, promote/reject with gating
//!   counters, drift trip, fallback recovery, retrain cycle outcome)
//!   on the same checksummed record framing as the selection journal
//!   (`intune_core::codec::encode_record`/`scan_records`).
//! - **[`expo::TextExposition`]** — Prometheus-style text rendering for
//!   the daemon's `--metrics` HTTP scrape endpoint.
//! - **[`trace`]** — sampled per-request span capture ([`Span`] /
//!   [`SpanLog`] / [`Sampler`]): the causality layer that links one
//!   request's client call, wire hop, daemon stages, and selection into
//!   a single trace id, persisted with the same crash-tolerant framing
//!   as the event log.
//!
//! The `intune_obs_dump` bin renders a recorded event log as a
//! human-readable timeline; `intune_trace` reconstructs trace trees
//! from span logs. See `crates/obs/README.md` for the on-disk record
//! schemas and the exposition format spec.

pub mod counter;
pub mod events;
pub mod expo;
pub mod histogram;
pub mod timefmt;
pub mod trace;

pub use counter::Counter;
pub use events::{
    read_events, scan_events, Event, EventKind, EventLog, EventScan, EVENT_SCHEMA, EVENT_VERSION,
};
pub use expo::TextExposition;
pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, LatencySummary, NUM_BUCKETS,
    SUB_BUCKETS,
};
pub use trace::{
    read_span_dir, read_spans, scan_spans, IdMinter, Sampler, Span, SpanLog, SpanScan,
    SPAN_LOG_SUFFIX, SPAN_SCHEMA, SPAN_VERSION,
};
