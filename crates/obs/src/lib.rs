//! # intune_obs — the unified observability layer
//!
//! The paper's claim (input-adaptive selection beats any fixed
//! configuration) is only auditable in production if the system can
//! show its selection behaviour live. This crate is the shared
//! substrate every layer records into:
//!
//! - **[`Counter`]** — sharded relaxed-atomic event counters and
//!   **[`Histogram`]** — log-bucketed latency histograms with
//!   p50/p90/p99/p999 readout ([`LatencySummary`]). Both are wait-free
//!   on the record path: no locks, no CAS loops, so hot-path recording
//!   cannot perturb the lock-free `ArcSwap` serving design.
//! - **[`EventLog`]** — a crash-tolerant structured log of lifecycle
//!   events (tenant bind, shadow stage, promote/reject with gating
//!   counters, drift trip, fallback recovery, retrain cycle outcome)
//!   on the same checksummed record framing as the selection journal
//!   (`intune_core::codec::encode_record`/`scan_records`).
//! - **[`expo::TextExposition`]** — Prometheus-style text rendering for
//!   the daemon's `--metrics` HTTP scrape endpoint.
//!
//! The `intune_obs_dump` bin renders a recorded event log as a
//! human-readable timeline. See `crates/obs/README.md` for the on-disk
//! record schema and the exposition format spec.

pub mod counter;
pub mod events;
pub mod expo;
pub mod histogram;
pub mod timefmt;

pub use counter::Counter;
pub use events::{
    read_events, scan_events, Event, EventKind, EventLog, EventScan, EVENT_SCHEMA, EVENT_VERSION,
};
pub use expo::TextExposition;
pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, LatencySummary, NUM_BUCKETS,
    SUB_BUCKETS,
};
