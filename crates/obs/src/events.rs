//! The structured lifecycle event log.
//!
//! One append-only file of [`intune_core::codec::encode_record`] frames
//! (schema `intune-obs-event` v1, the same 4-byte-length + checksummed
//! compact-JSON envelope the selection journal uses), each frame one
//! [`Event`]: a monotone sequence number, a wall-clock unix-millisecond
//! timestamp, the tenant and revision it concerns, and a typed
//! [`EventKind`]. Appends are **best-effort and infallible at the call
//! site**: the serving path must never fail or block on observability,
//! so an append that cannot be encoded or written is counted in
//! [`EventLog::dropped`] and otherwise ignored — the same contract the
//! datalog recorder tap makes.
//!
//! Crash tolerance mirrors the journal: [`EventLog::open`] scans an
//! existing file with [`intune_core::codec::scan_records`], keeps every
//! complete event, truncates a torn tail (a crash mid-append), and
//! resumes the sequence after the highest recovered `seq`. Readers use
//! [`read_events`]/[`scan_events`], which type the torn tail instead of
//! panicking — truncation at *any* byte offset recovers every complete
//! event (pinned by a property test).

use crate::LatencySummary;
use intune_core::codec::{encode_record, scan_records};
use intune_core::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event-log record schema name.
pub const EVENT_SCHEMA: &str = "intune-obs-event";
/// Event-log record schema version.
pub const EVENT_VERSION: u32 = 1;

/// What happened. Externally tagged (the variant name is the JSON key),
/// so a timeline renderer can dispatch without knowing every field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A connection sent `Hello` and bound to this tenant.
    TenantBound {
        /// Daemon-assigned connection id.
        conn: u64,
    },
    /// `LoadArtifact` validated and staged a new artifact revision as
    /// the tenant's shadow.
    ShadowStaged {
        /// Inputs the staged artifact was trained on.
        trained_inputs: u64,
    },
    /// The shadow gate accepted: the staged revision is now primary.
    /// Carries the gating counters the decision was made on.
    Promoted {
        /// Selections mirrored to the shadow before the gate opened.
        mirrored: u64,
        /// Mirrored selections where shadow agreed with primary.
        agreed: u64,
        /// `agreed / mirrored` at promotion time.
        agreement_rate: f64,
    },
    /// `Promote` was refused (gate unsatisfied, or no shadow staged).
    PromoteRejected {
        /// The refusal reason, verbatim from the gate.
        reason: String,
    },
    /// The staged shadow's own drift monitor tripped while mirroring;
    /// the daemon discarded it without an operator `Promote`.
    ShadowAutoRejected {
        /// The shadow's OOD rate when it tripped.
        trip_rate: f64,
    },
    /// A service's drift monitor crossed its threshold: probed traffic
    /// looks out-of-distribution and fallback engaged.
    DriftTripped {
        /// Inputs probed since reset.
        probed: u64,
        /// Probed inputs classified out-of-distribution.
        ood: u64,
        /// `ood / probed` at the transition.
        trip_rate: f64,
    },
    /// The drift monitor recovered below threshold: selection resumed
    /// from the model instead of the safe fallback landmark.
    FallbackCleared {
        /// OOD rate at the transition back.
        trip_rate: f64,
    },
    /// A retrain controller cycle finished.
    RetrainCycle {
        /// `"promoted"`, `"rejected"`, or `"idle"`.
        outcome: String,
        /// Outcome detail: the idle/rejection reason, or the promoted
        /// revision's agreement rate rendered by the controller.
        detail: String,
        /// Journal-derived inputs in the retrained artifact (0 when the
        /// cycle idled).
        new_inputs: u64,
        /// Trace ids of the journaled requests that fed this cycle
        /// (only traced requests appear; empty when tracing is off or
        /// the cycle idled). Links a retrain decision back to the
        /// concrete traffic that caused it.
        trace_ids: Vec<u64>,
    },
    /// Per-tenant heartbeat with the request-latency summary at
    /// snapshot time. The daemon writes one per tenant on every
    /// `Metrics` wire request (an operator looking — never on HTTP
    /// scrapes, which poll), so a recorded timeline carries latency
    /// context next to its lifecycle events.
    LatencySnapshot {
        /// Per-request wire latency at snapshot time.
        latency: LatencySummary,
    },
}

/// One timestamped, tenant/revision-keyed lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone per-log sequence number (resumes across reopen).
    pub seq: u64,
    /// Wall-clock milliseconds since the unix epoch.
    pub unix_ms: u64,
    /// The tenant the event concerns (`"-"` for daemon-wide events).
    pub tenant: String,
    /// The artifact revision in force (or being decided) at the event.
    pub revision: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The crash-tolerant append-side handle. Cheap to share behind an
/// `Arc`; appends serialize on an internal mutex but assemble the frame
/// outside it and issue exactly one `write(2)` per event.
pub struct EventLog {
    path: PathBuf,
    file: Mutex<File>,
    seq: AtomicU64,
    appended: AtomicU64,
    dropped: AtomicU64,
}

impl EventLog {
    /// Opens (or creates) the event log at `path`, recovering from a
    /// torn tail: complete events are kept, the tail is truncated, and
    /// the sequence resumes after the highest recovered `seq`.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the file cannot be read,
    /// created, or truncated.
    pub fn open(path: &Path) -> Result<EventLog> {
        let (consumed, next_seq) = match std::fs::read(path) {
            Ok(bytes) => {
                let scan = scan_events(&bytes);
                let next = scan.events.last().map_or(0, |e| e.seq + 1);
                (Some(scan.consumed as u64), next)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (None, 0),
            Err(e) => {
                return Err(Error::artifact(format!(
                    "cannot read event log {}: {e}",
                    path.display()
                )))
            }
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| {
                Error::artifact(format!("cannot open event log {}: {e}", path.display()))
            })?;
        if let Some(consumed) = consumed {
            // Drop the torn tail so the next append starts on a frame
            // boundary (append mode positions at EOF = consumed).
            file.set_len(consumed).map_err(|e| {
                Error::artifact(format!("cannot truncate event log {}: {e}", path.display()))
            })?;
        }
        Ok(EventLog {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            seq: AtomicU64::new(next_seq),
            appended: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Appends one event, best-effort. Never returns an error and never
    /// panics: encode or IO failures increment [`dropped`](Self::dropped)
    /// and the caller proceeds — observability must not take down
    /// serving.
    pub fn record(&self, tenant: &str, revision: u64, kind: EventKind) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            unix_ms: unix_ms_now(),
            tenant: tenant.to_string(),
            revision,
            kind,
        };
        // Assemble the full frame outside the writer lock; hold it only
        // for the single write(2).
        let value = serde_json::to_value(&event);
        let Ok(frame) = encode_record(EVENT_SCHEMA, EVENT_VERSION, value) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut file = match self.file.lock() {
            Ok(file) => file,
            Err(poisoned) => poisoned.into_inner(),
        };
        if file.write_all(&frame).is_ok() {
            self.appended.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Where the log lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events successfully appended by this handle (not counting those
    /// recovered from a previous process).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Events this handle failed to append (encode or IO error).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("path", &self.path)
            .field("appended", &self.appended())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Outcome of scanning an event-log byte stream.
#[derive(Debug)]
pub struct EventScan {
    /// Every complete, checksum-verified event, in append order.
    pub events: Vec<Event>,
    /// Bytes the complete events consumed (the safe truncation point).
    pub consumed: usize,
    /// Typed description of a torn or corrupt tail, if any.
    pub torn: Option<Error>,
}

/// Scans a byte stream of event-log frames. Never panics: truncation at
/// any offset yields every complete event plus a typed `torn` error.
/// A frame whose payload no longer deserializes as an [`Event`] (schema
/// drift) also stops the scan with a typed error.
#[must_use]
pub fn scan_events(bytes: &[u8]) -> EventScan {
    let scan = scan_records(bytes, EVENT_SCHEMA, EVENT_VERSION);
    let mut events = Vec::with_capacity(scan.records.len());
    let mut torn = scan.torn;
    for value in scan.records {
        match serde_json::from_value::<Event>(&value) {
            Ok(event) => events.push(event),
            Err(e) => {
                torn = Some(Error::artifact(format!(
                    "event record does not deserialize: {e}"
                )));
                break;
            }
        }
    }
    EventScan {
        events,
        consumed: scan.consumed,
        torn,
    }
}

/// Reads and scans the event log at `path`.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be read. A torn
/// tail is *not* an error — it comes back typed in [`EventScan::torn`].
pub fn read_events(path: &Path) -> Result<EventScan> {
    let bytes = std::fs::read(path)
        .map_err(|e| Error::artifact(format!("cannot read event log {}: {e}", path.display())))?;
    Ok(scan_events(&bytes))
}

/// Current wall clock as milliseconds since the unix epoch (0 if the
/// clock reads before the epoch).
#[must_use]
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("intune-obs-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("events.log")
    }

    #[test]
    fn append_and_scan_round_trip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path).unwrap();
        log.record("sort", 1, EventKind::TenantBound { conn: 7 });
        log.record(
            "sort",
            2,
            EventKind::Promoted {
                mirrored: 128,
                agreed: 127,
                agreement_rate: 127.0 / 128.0,
            },
        );
        assert_eq!(log.appended(), 2);
        assert_eq!(log.dropped(), 0);
        let scan = read_events(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.events.len(), 2);
        assert_eq!(scan.events[0].seq, 0);
        assert_eq!(scan.events[0].tenant, "sort");
        assert_eq!(scan.events[0].kind, EventKind::TenantBound { conn: 7 });
        assert_eq!(scan.events[1].seq, 1);
        assert!(matches!(scan.events[1].kind, EventKind::Promoted { .. }));
        assert!(scan.events[1].unix_ms >= scan.events[0].unix_ms);
    }

    #[test]
    fn reopen_resumes_sequence_and_truncates_torn_tail() {
        let path = tmp("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::open(&path).unwrap();
            log.record("a", 1, EventKind::TenantBound { conn: 0 });
            log.record("a", 1, EventKind::TenantBound { conn: 1 });
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let log = EventLog::open(&path).unwrap();
        log.record("a", 1, EventKind::TenantBound { conn: 2 });
        let scan = read_events(&path).unwrap();
        assert!(scan.torn.is_none(), "recovery left a torn tail");
        let seqs: Vec<u64> = scan.events.iter().map(|e| e.seq).collect();
        // Event 1 was torn away; the sequence resumes after the
        // highest *recovered* seq.
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(
            scan.events[1].kind,
            EventKind::TenantBound { conn: 2 },
            "resumed append must be the recovered-then-written event"
        );
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = vec![
            EventKind::TenantBound { conn: 3 },
            EventKind::ShadowStaged { trained_inputs: 90 },
            EventKind::Promoted {
                mirrored: 10,
                agreed: 9,
                agreement_rate: 0.9,
            },
            EventKind::PromoteRejected {
                reason: "gate unsatisfied".to_string(),
            },
            EventKind::ShadowAutoRejected { trip_rate: 0.5 },
            EventKind::DriftTripped {
                probed: 100,
                ood: 31,
                trip_rate: 0.31,
            },
            EventKind::FallbackCleared { trip_rate: 0.1 },
            EventKind::RetrainCycle {
                outcome: "idle".to_string(),
                detail: "below volume threshold".to_string(),
                new_inputs: 0,
                trace_ids: vec![],
            },
            EventKind::RetrainCycle {
                outcome: "promoted".to_string(),
                detail: "agreement 0.98".to_string(),
                new_inputs: 12,
                trace_ids: vec![0xdead_beef, 0xcafe],
            },
            EventKind::LatencySnapshot {
                latency: LatencySummary {
                    count: 5,
                    sum_ns: 150,
                    p50_ns: 30,
                    p90_ns: 50,
                    p99_ns: 50,
                    p999_ns: 50,
                    max_ns: 50,
                },
            },
        ];
        let path = tmp("kinds");
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path).unwrap();
        for (i, kind) in kinds.iter().enumerate() {
            log.record("t", i as u64, kind.clone());
        }
        let scan = read_events(&path).unwrap();
        assert!(scan.torn.is_none());
        let back: Vec<EventKind> = scan.events.into_iter().map(|e| e.kind).collect();
        assert_eq!(back, kinds);
    }
}
