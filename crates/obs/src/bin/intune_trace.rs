//! `intune_trace` — reassemble trace trees from recorded span logs.
//!
//! ```text
//! intune_trace PATH [PATH ...]              list every trace (one line each)
//! intune_trace PATH --trace-id HEX         render one trace as a span tree
//! intune_trace PATH --slowest K            the K slowest traces, trees and all
//! intune_trace PATH --json                 machine-readable output
//! ```
//!
//! Each `PATH` is a span-log file (`*.spans.log`) or a directory swept
//! for them — pass the daemon's directory and a client's file together
//! and one trace id knits the cross-process spans into a single tree.
//!
//! Exit codes: 0 on success (including an empty log), 2 on usage
//! errors, 3 when a log cannot be read, 4 when `--trace-id` names a
//! trace no log contains. A torn tail is reported on stderr but the
//! complete spans still render and the exit stays 0.

use intune_core::TraceContext;
use intune_obs::{read_span_dir, read_spans, Span};
use std::collections::BTreeMap;
use std::path::Path;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut trace_id: Option<u64> = None;
    let mut slowest: Option<usize> = None;
    let mut json = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: intune_trace PATH [PATH ...] [--trace-id HEX] [--slowest K] [--json]"
                );
                return;
            }
            "--json" => json = true,
            "--trace-id" => {
                i += 1;
                let value = argv
                    .get(i)
                    .unwrap_or_else(|| die("--trace-id needs a value"));
                trace_id = Some(
                    TraceContext::parse_trace_id(value)
                        .unwrap_or_else(|| die(&format!("--trace-id: bad hex id `{value}`"))),
                );
            }
            "--slowest" => {
                i += 1;
                let value = argv
                    .get(i)
                    .unwrap_or_else(|| die("--slowest needs a value"));
                slowest = Some(
                    value
                        .parse()
                        .unwrap_or_else(|_| die(&format!("--slowest: bad count `{value}`"))),
                );
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => die(&format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    if paths.is_empty() {
        die("at least one span log or directory is required");
    }

    let mut spans: Vec<Span> = Vec::new();
    for arg in &paths {
        let path = Path::new(arg);
        let scan = if path.is_dir() {
            read_span_dir(path)
        } else {
            read_spans(path)
        }
        .unwrap_or_else(|e| {
            eprintln!("intune_trace: {e}");
            std::process::exit(3);
        });
        if let Some(torn) = scan.torn {
            eprintln!("intune_trace: torn tail in {arg}: {torn}");
        }
        spans.extend(scan.spans);
    }

    // trace id -> spans, insertion-ordered within a trace (append order
    // approximates causal order; the tree render re-orders by parent).
    let mut traces: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for span in spans {
        traces.entry(span.trace_id).or_default().push(span);
    }

    if let Some(id) = trace_id {
        let Some(trace) = traces.get(&id) else {
            eprintln!(
                "intune_trace: no spans for trace {}",
                TraceContext::format_trace_id(id)
            );
            std::process::exit(4);
        };
        render_trace(id, trace, json);
        return;
    }

    if let Some(k) = slowest {
        let mut ranked: Vec<(u64, u64)> = traces
            .iter()
            .map(|(id, spans)| (trace_duration(spans), *id))
            .collect();
        ranked.sort_by(|a, b| b.cmp(a));
        for (_, id) in ranked.into_iter().take(k) {
            render_trace(id, &traces[&id], json);
        }
        return;
    }

    // Default: one summary line per trace.
    for (id, spans) in &traces {
        let root = spans
            .iter()
            .find(|s| s.parent_span == 0)
            .or_else(|| spans.first());
        let (name, tenant) = root.map_or(("?", "?"), |s| (s.name.as_str(), s.tenant.as_str()));
        if json {
            println!(
                "{{\"trace_id\":\"{}\",\"root\":\"{}\",\"tenant\":\"{}\",\"spans\":{},\"duration_ns\":{}}}",
                TraceContext::format_trace_id(*id),
                name,
                tenant,
                spans.len(),
                trace_duration(spans),
            );
        } else {
            println!(
                "{}  {:<22} tenant={:<12} spans={:<3} {}",
                TraceContext::format_trace_id(*id),
                name,
                tenant,
                spans.len(),
                fmt_ns(trace_duration(spans)),
            );
        }
    }
}

/// A trace's headline duration: its longest span (the root, when the
/// root was recorded; the slowest fragment otherwise).
fn trace_duration(spans: &[Span]) -> u64 {
    spans.iter().map(|s| s.duration_ns).max().unwrap_or(0)
}

/// Renders one trace as an indented tree, children under parents.
/// Orphans (spans whose parent was lost to sampling or truncation) root
/// their own subtree rather than vanishing.
fn render_trace(id: u64, spans: &[Span], json: bool) {
    if json {
        for span in spans {
            match serde_json::to_string(span) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("intune_trace: cannot serialize span: {e}"),
            }
        }
        return;
    }
    println!("trace {}", TraceContext::format_trace_id(id));
    let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    let mut roots: Vec<&Span> = Vec::new();
    for span in spans {
        if span.parent_span != 0 && known.contains(&span.parent_span) {
            children.entry(span.parent_span).or_default().push(span);
        } else {
            roots.push(span);
        }
    }
    for root in roots {
        render_node(root, &children, 0);
    }
}

fn render_node(span: &Span, children: &BTreeMap<u64, Vec<&Span>>, depth: usize) {
    let notes = if span.annotations.is_empty() {
        String::new()
    } else {
        let joined: Vec<String> = span
            .annotations
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("  [{}]", joined.join(" "))
    };
    println!(
        "{}{} {:<10} {}{}",
        "  ".repeat(depth + 1),
        span.name,
        fmt_ns(span.duration_ns),
        span.tenant,
        notes,
    );
    if let Some(kids) = children.get(&span.span_id) {
        for kid in kids {
            render_node(kid, children, depth + 1);
        }
    }
}

/// `1234567` → `"1.235ms"`; sub-microsecond values stay in ns.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn die(message: &str) -> ! {
    eprintln!("intune_trace: {message}");
    std::process::exit(2)
}
