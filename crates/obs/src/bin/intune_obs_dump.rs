//! `intune_obs_dump` — render a recorded event log as a timeline.
//!
//! ```text
//! intune_obs_dump PATH          human-readable timeline (one line/event)
//! intune_obs_dump PATH --json   one compact JSON object per line
//! intune_obs_dump PATH --follow keep polling for new events (tail -f)
//! ```
//!
//! Exit codes: 0 on a clean log, 2 on usage errors, 3 when the log
//! cannot be read. A torn tail is reported on stderr but the complete
//! events still print and the exit stays 0 — a crash-truncated log is a
//! recovered log, not a broken one. `--follow` never reports a torn
//! tail: mid-write frames are the normal transient state it polls
//! through, and the mode runs until interrupted.

use intune_obs::timefmt::iso8601_utc_ms;
use intune_obs::{read_events, Event, EventKind};
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path: Option<PathBuf> = None;
    let mut json = false;
    let mut follow = false;
    for arg in &mut args {
        match arg.as_str() {
            "--json" => json = true,
            "--follow" | "-f" => follow = true,
            "--help" | "-h" => {
                println!("usage: intune_obs_dump PATH [--json] [--follow]");
                return;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("intune_obs_dump: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: intune_obs_dump PATH [--json] [--follow]");
        std::process::exit(2);
    };
    let scan = match read_events(&path) {
        Ok(scan) => scan,
        Err(e) => {
            eprintln!("intune_obs_dump: {e}");
            std::process::exit(3);
        }
    };
    let mut out = std::io::stdout();
    for event in &scan.events {
        emit(&mut out, event, json);
    }
    if !follow {
        if let Some(torn) = &scan.torn {
            eprintln!(
                "intune_obs_dump: torn tail after {} complete events ({} clean bytes): {torn}",
                scan.events.len(),
                scan.consumed
            );
        }
        return;
    }
    // Tail mode: poll for frames appended past what we already printed.
    // The writer appends whole frames with one write(2), so re-scanning
    // from byte 0 and skipping the printed prefix is race-free; a
    // half-written frame just parks us until the next poll. A log that
    // shrinks (rotation, truncate-on-reopen) restarts the tail.
    let mut seen = scan.events.len();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        let scan = match read_events(&path) {
            Ok(scan) => scan,
            Err(_) => continue, // transiently unreadable: keep polling
        };
        if scan.events.len() < seen {
            seen = 0;
        }
        for event in &scan.events[seen..] {
            emit(&mut out, event, json);
        }
        seen = scan.events.len();
    }
}

/// Prints one event (and flushes, so `--follow` output streams through
/// pipes without block buffering).
fn emit(out: &mut std::io::Stdout, event: &Event, json: bool) {
    if json {
        let text = serde_json::to_string(&serde_json::to_value(event))
            .expect("value printing is infallible");
        writeln!(out, "{text}").ok();
    } else {
        writeln!(out, "{}", render(event)).ok();
    }
    out.flush().ok();
}

/// One timeline line: timestamp, seq, tenant@revision, then the event.
fn render(event: &Event) -> String {
    let head = format!(
        "{} #{:<4} {}@r{}",
        iso8601_utc_ms(event.unix_ms),
        event.seq,
        event.tenant,
        event.revision
    );
    let body = match &event.kind {
        EventKind::TenantBound { conn } => format!("tenant-bound conn={conn}"),
        EventKind::ShadowStaged { trained_inputs } => {
            format!("shadow-staged trained_inputs={trained_inputs}")
        }
        EventKind::Promoted {
            mirrored,
            agreed,
            agreement_rate,
        } => format!(
            "PROMOTED mirrored={mirrored} agreed={agreed} agreement_rate={agreement_rate:.4}"
        ),
        EventKind::PromoteRejected { reason } => format!("promote-rejected: {reason}"),
        EventKind::ShadowAutoRejected { trip_rate } => {
            format!("shadow-auto-rejected trip_rate={trip_rate:.4}")
        }
        EventKind::DriftTripped {
            probed,
            ood,
            trip_rate,
        } => format!("DRIFT-TRIPPED probed={probed} ood={ood} trip_rate={trip_rate:.4}"),
        EventKind::FallbackCleared { trip_rate } => {
            format!("fallback-cleared trip_rate={trip_rate:.4}")
        }
        EventKind::RetrainCycle {
            outcome,
            detail,
            new_inputs,
            trace_ids,
        } => {
            let mut line =
                format!("retrain-cycle outcome={outcome} new_inputs={new_inputs}: {detail}");
            if !trace_ids.is_empty() {
                let rendered: Vec<String> = trace_ids
                    .iter()
                    .map(|&id| intune_core::TraceContext::format_trace_id(id))
                    .collect();
                line.push_str(&format!(" traces=[{}]", rendered.join(",")));
            }
            line
        }
        EventKind::LatencySnapshot { latency } => format!(
            "latency count={} p50={}ns p90={}ns p99={}ns p999={}ns max={}ns",
            latency.count,
            latency.p50_ns,
            latency.p90_ns,
            latency.p99_ns,
            latency.p999_ns,
            latency.max_ns
        ),
    };
    format!("{head} {body}")
}
