//! `intune_obs_dump` — render a recorded event log as a timeline.
//!
//! ```text
//! intune_obs_dump PATH        human-readable timeline (one line/event)
//! intune_obs_dump PATH --json one compact JSON object per line
//! ```
//!
//! Exit codes: 0 on a clean log, 2 on usage errors, 3 when the log
//! cannot be read. A torn tail is reported on stderr but the complete
//! events still print and the exit stays 0 — a crash-truncated log is a
//! recovered log, not a broken one.

use intune_obs::timefmt::iso8601_utc_ms;
use intune_obs::{read_events, Event, EventKind};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path: Option<PathBuf> = None;
    let mut json = false;
    for arg in &mut args {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: intune_obs_dump PATH [--json]");
                return;
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("intune_obs_dump: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: intune_obs_dump PATH [--json]");
        std::process::exit(2);
    };
    let scan = match read_events(&path) {
        Ok(scan) => scan,
        Err(e) => {
            eprintln!("intune_obs_dump: {e}");
            std::process::exit(3);
        }
    };
    for event in &scan.events {
        if json {
            let text = serde_json::to_string(&serde_json::to_value(event))
                .expect("value printing is infallible");
            println!("{text}");
        } else {
            println!("{}", render(event));
        }
    }
    if let Some(torn) = &scan.torn {
        eprintln!(
            "intune_obs_dump: torn tail after {} complete events ({} clean bytes): {torn}",
            scan.events.len(),
            scan.consumed
        );
    }
}

/// One timeline line: timestamp, seq, tenant@revision, then the event.
fn render(event: &Event) -> String {
    let head = format!(
        "{} #{:<4} {}@r{}",
        iso8601_utc_ms(event.unix_ms),
        event.seq,
        event.tenant,
        event.revision
    );
    let body = match &event.kind {
        EventKind::TenantBound { conn } => format!("tenant-bound conn={conn}"),
        EventKind::ShadowStaged { trained_inputs } => {
            format!("shadow-staged trained_inputs={trained_inputs}")
        }
        EventKind::Promoted {
            mirrored,
            agreed,
            agreement_rate,
        } => format!(
            "PROMOTED mirrored={mirrored} agreed={agreed} agreement_rate={agreement_rate:.4}"
        ),
        EventKind::PromoteRejected { reason } => format!("promote-rejected: {reason}"),
        EventKind::ShadowAutoRejected { trip_rate } => {
            format!("shadow-auto-rejected trip_rate={trip_rate:.4}")
        }
        EventKind::DriftTripped {
            probed,
            ood,
            trip_rate,
        } => format!("DRIFT-TRIPPED probed={probed} ood={ood} trip_rate={trip_rate:.4}"),
        EventKind::FallbackCleared { trip_rate } => {
            format!("fallback-cleared trip_rate={trip_rate:.4}")
        }
        EventKind::RetrainCycle {
            outcome,
            detail,
            new_inputs,
        } => format!("retrain-cycle outcome={outcome} new_inputs={new_inputs}: {detail}"),
        EventKind::LatencySnapshot { latency } => format!(
            "latency count={} p50={}ns p90={}ns p99={}ns p999={}ns max={}ns",
            latency.count,
            latency.p50_ns,
            latency.p90_ns,
            latency.p99_ns,
            latency.p999_ns,
            latency.max_ns
        ),
    };
    format!("{head} {body}")
}
