//! Sharded wait-free counters.
//!
//! A [`Counter`] spreads increments across cache-line-padded atomic
//! shards so concurrent recorders on different cores never contend on
//! one cache line. Each thread is assigned a shard round-robin on first
//! use and keeps it for life; an increment is a single `Relaxed`
//! `fetch_add` — no locks, no CAS loops, no retries — so recording on
//! the serving hot path cannot stall a selection. Reads sum the shards;
//! a read concurrent with writers sees some interleaving of them (each
//! increment is atomically either counted or not — never torn).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shard count. A power of two comfortably above typical recorder
/// parallelism (the daemon's event loop plus bench worker threads);
/// round-robin assignment keeps simultaneous recorders on distinct
/// shards until more than `SHARDS` threads record at once.
const SHARDS: usize = 16;

/// One counter shard, padded to a cache line so neighbouring shards
/// never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Round-robin source for thread shard assignment.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned once on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// A monotonically increasing, wait-free event counter.
#[derive(Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A fresh zeroed counter.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter. Wait-free: one relaxed `fetch_add` on
    /// this thread's private shard.
    pub fn add(&self, n: u64) {
        let shard = MY_SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums the shards. Concurrent increments may or may not be
    /// included, but the result never goes backwards between two reads
    /// and never tears an individual increment.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn reads_are_monotone_under_concurrent_writers() {
        let c = Arc::new(Counter::new());
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    c.incr();
                }
            })
        };
        let mut last = 0;
        while last < 50_000 && !writer.is_finished() {
            let now = c.get();
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        writer.join().unwrap();
        assert_eq!(c.get(), 50_000);
    }
}
