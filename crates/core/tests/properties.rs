//! Property-based tests for configuration spaces, selectors and features.

use intune_core::{ConfigSpace, FeatureDef, FeatureSet, Selector, SelectorSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_space(switches: usize, ints: usize, floats: usize) -> ConfigSpace {
    let mut b = ConfigSpace::builder();
    for s in 0..switches {
        b = b.switch(format!("s{s}"), 2 + s % 5);
    }
    for i in 0..ints {
        b = b.int(format!("i{i}"), -(i as i64) - 1, (i as i64 + 1) * 10);
    }
    for f in 0..floats {
        b = b.float(format!("f{f}"), -1.0, f as f64 + 1.0);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random configurations always validate; defaults always validate.
    #[test]
    fn sampling_is_closed(
        switches in 1usize..5, ints in 0usize..5, floats in 0usize..4, seed in 0u64..10_000,
    ) {
        let space = arbitrary_space(switches, ints, floats);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(space.validate(&space.default_config()).is_ok());
        for _ in 0..10 {
            prop_assert!(space.validate(&space.random(&mut rng)).is_ok());
        }
    }

    /// Mutation at any rate is closed; rate 0 is the identity.
    #[test]
    fn mutation_closure_and_identity(
        switches in 1usize..4, ints in 0usize..4, seed in 0u64..10_000, rate in 0.0f64..1.0,
    ) {
        let space = arbitrary_space(switches, ints, 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.random(&mut rng);
        let mutated = space.mutate(&cfg, rate, &mut rng);
        prop_assert!(space.validate(&mutated).is_ok());
        let unchanged = space.mutate(&cfg, 0.0, &mut rng);
        prop_assert_eq!(unchanged, cfg);
    }

    /// Crossover takes every gene from one of the two parents.
    #[test]
    fn crossover_gene_provenance(seed in 0u64..10_000) {
        let space = arbitrary_space(3, 3, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.random(&mut rng);
        let b = space.random(&mut rng);
        let child = space.crossover(&a, &b, &mut rng);
        for (idx, v) in child.values().iter().enumerate() {
            prop_assert!(*v == a.values()[idx] || *v == b.values()[idx]);
        }
    }

    /// log10 size grows monotonically as parameters are added.
    #[test]
    fn space_size_monotone(extra in 1usize..6) {
        let small = arbitrary_space(2, 1, 1);
        let large = arbitrary_space(2 + extra, 1 + extra, 1);
        prop_assert!(large.log10_size() > small.log10_size());
    }

    /// Feature-subset enumeration matches the (z+1)^u formula and contains
    /// no duplicates.
    #[test]
    fn subset_enumeration_formula(levels in prop::collection::vec(1usize..4, 1..5)) {
        let defs: Vec<FeatureDef> = levels
            .iter()
            .enumerate()
            .map(|(i, &z)| FeatureDef::new(format!("p{i}"), z))
            .collect();
        let all = FeatureSet::enumerate_all(&defs);
        let expected: usize = levels.iter().map(|z| z + 1).product();
        prop_assert_eq!(all.len(), expected);
        let distinct: std::collections::HashSet<_> = all.iter().cloned().collect();
        prop_assert_eq!(distinct.len(), expected);
    }

    /// A selector partitions sizes into at most `levels + 1` contiguous
    /// decision intervals.
    #[test]
    fn selector_interval_count(seed in 0u64..10_000, levels in 1usize..6) {
        let spec = SelectorSpec::new("t", levels, 10_000, 4);
        let space = spec.add_to(ConfigSpace::builder()).build();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.random(&mut rng);
        let sel = Selector::from_config(&spec, &space, &cfg).unwrap();
        let mut switches = 0;
        let mut last = sel.decide(0);
        for n in 1..11_000usize {
            let d = sel.decide(n);
            if d != last {
                switches += 1;
                last = d;
            }
        }
        prop_assert!(switches <= levels, "selector switched {switches} times");
    }
}
