//! Recursive algorithm selectors (PetaBricks decision trees, Figure 2).
//!
//! A polyalgorithm makes one algorithmic decision per *recursive invocation*
//! of a choice point, keyed on the current problem size. The paper's Figure 2
//! shows a selector that uses MergeSort above 1420 elements, QuickSort from
//! 600–1420, and InsertionSort below 600. [`SelectorSpec`] contributes the
//! genes (cutoffs + per-interval choices) to a [`ConfigSpace`];
//! [`Selector::from_config`] decodes a genome into the runtime decision
//! structure.

use crate::config::{ConfigSpace, ConfigSpaceBuilder, Configuration};
use crate::error::Result;
use serde::{Deserialize, Serialize};

/// Describes the genes of one recursive selector inside a configuration
/// space: `levels` size cutoffs (log-scaled in `[1, max_input]`) with an
/// algorithm choice per interval, plus a choice above the last cutoff.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectorSpec {
    /// Gene name prefix (e.g. `"sort"` yields `sort.cutoff0`, `sort.alg0`, …).
    pub name: String,
    /// Number of cutoff levels (intervals below the top).
    pub levels: usize,
    /// Maximum input size the cutoffs may take.
    pub max_input: i64,
    /// Number of algorithms to choose between.
    pub algorithms: usize,
}

impl SelectorSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, levels: usize, max_input: i64, algorithms: usize) -> Self {
        SelectorSpec {
            name: name.into(),
            levels,
            max_input,
            algorithms,
        }
    }

    /// Adds this selector's genes to a space being built.
    pub fn add_to(&self, mut builder: ConfigSpaceBuilder) -> ConfigSpaceBuilder {
        for i in 0..self.levels {
            builder = builder.log_int(format!("{}.cutoff{i}", self.name), 1, self.max_input);
            builder = builder.switch(format!("{}.alg{i}", self.name), self.algorithms);
        }
        builder.switch(format!("{}.top", self.name), self.algorithms)
    }

    /// Decodes the selector from a configuration over a space that contains
    /// this spec's genes.
    ///
    /// # Errors
    /// Returns an error if any gene is missing from `space`.
    pub fn decode(&self, space: &ConfigSpace, cfg: &Configuration) -> Result<Selector> {
        let mut rules: Vec<(i64, usize)> = Vec::with_capacity(self.levels);
        for i in 0..self.levels {
            let cut = cfg.int(space.require(&format!("{}.cutoff{i}", self.name))?);
            let alg = cfg.choice(space.require(&format!("{}.alg{i}", self.name))?);
            rules.push((cut, alg));
        }
        let top = cfg.choice(space.require(&format!("{}.top", self.name))?);
        Ok(Selector::new(rules, top))
    }
}

/// A decoded, canonicalized decision list: ascending cutoffs each paired with
/// an algorithm used for inputs *below* that cutoff, and a `top` algorithm
/// for everything at or above the largest cutoff.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selector {
    /// `(cutoff, algorithm)` sorted by ascending cutoff.
    rules: Vec<(i64, usize)>,
    top: usize,
}

impl Selector {
    /// Builds a selector, canonicalizing rules into ascending-cutoff order.
    /// (Genomes carry unordered cutoffs; sorting makes the phenotype
    /// well-defined for any genome, which keeps mutation closed over valid
    /// polyalgorithms.)
    pub fn new(mut rules: Vec<(i64, usize)>, top: usize) -> Self {
        rules.sort_by_key(|&(cut, _)| cut);
        Selector { rules, top }
    }

    /// Decodes from a config; forwards to [`SelectorSpec::decode`].
    ///
    /// # Errors
    /// Returns an error if the spec's genes are missing from `space`.
    pub fn from_config(
        spec: &SelectorSpec,
        space: &ConfigSpace,
        cfg: &Configuration,
    ) -> Result<Self> {
        spec.decode(space, cfg)
    }

    /// The algorithm to use for a (sub)problem of size `n`: the first rule
    /// whose cutoff exceeds `n`, else the top algorithm. Matches Figure 2
    /// semantics (`N < 600 → insertion`, `N < 1420 → quick`, else merge).
    pub fn decide(&self, n: usize) -> usize {
        for &(cut, alg) in &self.rules {
            if (n as i64) < cut {
                return alg;
            }
        }
        self.top
    }

    /// The rules in ascending-cutoff order.
    pub fn rules(&self) -> &[(i64, usize)] {
        &self.rules
    }

    /// The algorithm used above the highest cutoff.
    pub fn top(&self) -> usize {
        self.top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Figure 2 selector: insertion (< 600), quick (< 1420), merge above.
    fn figure2() -> Selector {
        Selector::new(vec![(1420, 1), (600, 0)], 2)
    }

    #[test]
    fn figure2_semantics() {
        let s = figure2();
        assert_eq!(s.decide(10), 0, "small lists use insertion sort");
        assert_eq!(s.decide(599), 0);
        assert_eq!(s.decide(600), 1, "mid lists use quick sort");
        assert_eq!(s.decide(1419), 1);
        assert_eq!(s.decide(1420), 2, "large lists use merge sort");
        assert_eq!(s.decide(1_000_000), 2);
    }

    #[test]
    fn rules_are_canonicalized_ascending() {
        let s = figure2();
        assert_eq!(s.rules(), &[(600, 0), (1420, 1)]);
        assert_eq!(s.top(), 2);
    }

    #[test]
    fn round_trip_through_config_space() {
        let spec = SelectorSpec::new("sort", 2, 1 << 20, 5);
        let space = spec.add_to(ConfigSpace::builder()).build();
        assert_eq!(space.len(), 5); // 2 cutoffs + 2 algs + top
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let cfg = space.random(&mut rng);
            let sel = spec.decode(&space, &cfg).unwrap();
            // Phenotype must be total: decide on any size returns a valid alg.
            for n in [0usize, 1, 17, 1000, 1 << 20, 1 << 24] {
                assert!(sel.decide(n) < 5);
            }
        }
    }

    #[test]
    fn decode_missing_genes_is_error() {
        let spec = SelectorSpec::new("sort", 1, 100, 3);
        let other = ConfigSpace::builder().int("unrelated", 0, 1).build();
        let cfg = other.default_config();
        assert!(spec.decode(&other, &cfg).is_err());
    }

    #[test]
    fn monotone_partition() {
        // decide() must partition sizes into contiguous intervals: once the
        // selector switches away from an algorithm as n grows past a cutoff,
        // it never switches back to a *lower* interval's rule.
        let s = Selector::new(vec![(10, 0), (100, 1), (1000, 0)], 2);
        let mut decisions = Vec::new();
        let mut last = usize::MAX;
        for n in 0..2000 {
            let d = s.decide(n);
            if d != last {
                decisions.push((n, d));
                last = d;
            }
        }
        // Exactly one transition at each cutoff, ending at the top algorithm.
        assert_eq!(decisions, vec![(0, 0), (10, 1), (100, 0), (1000, 2)]);
    }

    #[test]
    fn zero_level_selector_always_top() {
        let s = Selector::new(vec![], 4);
        for n in [0usize, 5, 500000] {
            assert_eq!(s.decide(n), 4);
        }
    }
}
