//! Versioned, checksummed on-disk documents.
//!
//! Every artifact this workspace persists (model artifacts, cost caches)
//! shares one envelope so readers can reject foreign files, stale schema
//! versions, and corrupted payloads *before* interpreting a byte of the
//! payload:
//!
//! ```json
//! {
//!   "schema": "intune-model-artifact",
//!   "version": 1,
//!   "checksum": "fnv1a64:0011223344556677",
//!   "payload": { ... }
//! }
//! ```
//!
//! The checksum is FNV-1a (64-bit) over the *canonical* (compact,
//! insertion-ordered) serialization of `payload`, which the `serde_json`
//! shim guarantees is a fixed point of parse → print. Any failure surfaces
//! as a typed [`Error::Artifact`].

use crate::error::{Error, Result};
use serde_json::Value;
use std::path::Path;

/// 64-bit FNV-1a over a byte stream (the workspace's one checksum
/// primitive; also used by the measurement engine for cell seeds).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in the checksummed envelope, returning the full
/// document text (pretty-printed; the checksum covers the compact
/// canonical payload, so formatting is free to stay readable).
pub fn encode_document(schema: &str, version: u32, payload: Value) -> String {
    let canonical = serde_json::to_string(&payload).expect("value printing is infallible");
    let checksum = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::String(schema.to_string())),
        ("version".to_string(), Value::UInt(version as u64)),
        ("checksum".to_string(), Value::String(checksum)),
        ("payload".to_string(), payload),
    ]);
    serde_json::to_string_pretty(&doc).expect("value printing is infallible")
}

/// Parses and validates an envelope, returning the payload.
///
/// # Errors
/// Returns [`Error::Artifact`] when the text is not valid JSON, the
/// schema name differs, the version is not exactly `current_version`,
/// the checksum is absent/malformed, or the payload fails its checksum.
pub fn decode_document(text: &str, schema: &str, current_version: u32) -> Result<Value> {
    let doc: Value = serde_json::from_str(text)
        .map_err(|e| Error::artifact(format!("malformed document: {e}")))?;
    let got_schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| Error::artifact("document lacks a `schema` field"))?;
    if got_schema != schema {
        return Err(Error::artifact(format!(
            "schema mismatch: expected `{schema}`, found `{got_schema}`"
        )));
    }
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::artifact("document lacks a `version` field"))?;
    if version != current_version as u64 {
        return Err(Error::artifact(format!(
            "unsupported `{schema}` version {version} (this build reads version \
             {current_version})"
        )));
    }
    let checksum = doc
        .get("checksum")
        .and_then(Value::as_str)
        .ok_or_else(|| Error::artifact("document lacks a `checksum` field"))?;
    let payload = doc
        .get("payload")
        .ok_or_else(|| Error::artifact("document lacks a `payload` field"))?;
    let canonical = serde_json::to_string(payload).expect("value printing is infallible");
    let expected = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    if checksum != expected {
        return Err(Error::artifact(format!(
            "checksum mismatch: document says {checksum}, payload hashes to {expected}"
        )));
    }
    // Move the payload out instead of cloning the whole tree (artifacts
    // and cost caches are payload-dominated documents).
    match doc {
        Value::Object(fields) => Ok(fields
            .into_iter()
            .find(|(k, _)| k == "payload")
            .map(|(_, v)| v)
            .expect("payload presence checked above")),
        _ => unreachable!("get(\"payload\") succeeded on a non-object"),
    }
}

/// Encodes and writes a document to `path`.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be written.
pub fn write_document(path: &Path, schema: &str, version: u32, payload: Value) -> Result<()> {
    let text = encode_document(schema, version, payload);
    std::fs::write(path, text)
        .map_err(|e| Error::artifact(format!("cannot write {}: {e}", path.display())))
}

/// Reads and validates a document from `path`, returning the payload.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be read or fails any
/// [`decode_document`] check.
pub fn read_document(path: &Path, schema: &str, current_version: u32) -> Result<Value> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::artifact(format!("cannot read {}: {e}", path.display())))?;
    decode_document(&text, schema, current_version)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Value {
        Value::Object(vec![
            ("k".to_string(), Value::Int(3)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
        ])
    }

    #[test]
    fn encode_decode_round_trips() {
        let text = encode_document("test-schema", 2, payload());
        let back = decode_document(&text, "test-schema", 2).unwrap();
        assert_eq!(back, payload());
    }

    #[test]
    fn checksum_detects_payload_tampering() {
        let text = encode_document("test-schema", 1, payload());
        // Flip the payload's integer without updating the checksum.
        let tampered = text.replace("\"k\": 3", "\"k\": 4");
        assert_ne!(tampered, text, "tamper site must exist");
        let err = decode_document(&tampered, "test-schema", 1).unwrap_err();
        assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn versions_must_match_exactly() {
        let text = encode_document("test-schema", 1, payload());
        for wrong in [0, 2, 99] {
            let err = decode_document(&text, "test-schema", wrong).unwrap_err();
            assert!(err.to_string().contains("version"), "{err}");
        }
    }

    #[test]
    fn schema_name_is_enforced() {
        let text = encode_document("schema-a", 1, payload());
        let err = decode_document(&text, "schema-b", 1).unwrap_err();
        assert!(err.to_string().contains("schema mismatch"), "{err}");
    }

    #[test]
    fn garbage_is_a_typed_error() {
        for bad in ["", "not json", "{\"schema\": \"x\"}", "[1,2,3]"] {
            let err = decode_document(bad, "s", 1).unwrap_err();
            assert!(matches!(err, Error::Artifact { .. }), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("intune-codec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_document(&path, "fs-schema", 3, payload()).unwrap();
        assert_eq!(read_document(&path, "fs-schema", 3).unwrap(), payload());
        let missing = dir.join("nope.json");
        assert!(matches!(
            read_document(&missing, "fs-schema", 3),
            Err(Error::Artifact { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
