//! Versioned, checksummed on-disk documents.
//!
//! Every artifact this workspace persists (model artifacts, cost caches)
//! shares one envelope so readers can reject foreign files, stale schema
//! versions, and corrupted payloads *before* interpreting a byte of the
//! payload:
//!
//! ```json
//! {
//!   "schema": "intune-model-artifact",
//!   "version": 1,
//!   "checksum": "fnv1a64:0011223344556677",
//!   "payload": { ... }
//! }
//! ```
//!
//! The checksum is FNV-1a (64-bit) over the *canonical* (compact,
//! insertion-ordered) serialization of `payload`, which the `serde_json`
//! shim guarantees is a fixed point of parse → print. Any failure surfaces
//! as a typed [`Error::Artifact`].

use crate::error::{Error, Result};
use serde_json::Value;
use std::path::Path;

/// 64-bit FNV-1a over a byte stream (the workspace's one checksum
/// primitive; also used by the measurement engine for cell seeds).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps `payload` in the checksummed envelope, returning the full
/// document text (pretty-printed; the checksum covers the compact
/// canonical payload, so formatting is free to stay readable).
pub fn encode_document(schema: &str, version: u32, payload: Value) -> String {
    let canonical = serde_json::to_string(&payload).expect("value printing is infallible");
    let checksum = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::String(schema.to_string())),
        ("version".to_string(), Value::UInt(version as u64)),
        ("checksum".to_string(), Value::String(checksum)),
        ("payload".to_string(), payload),
    ]);
    serde_json::to_string_pretty(&doc).expect("value printing is infallible")
}

/// A payload upgrade step: takes a payload at schema version `v` and
/// returns the equivalent payload at version `v + 1`. Errors are
/// human-readable detail strings (wrapped into [`Error::Artifact`] by
/// [`decode_document_migrating`]).
pub type Migration = fn(Value) -> std::result::Result<Value, String>;

/// Like [`decode_document`], but accepting a window of older schema
/// versions and migrating their payloads forward.
///
/// `migrations[i]` upgrades a payload from version
/// `current_version - migrations.len() + i` to the next version, so the
/// oldest readable version is `current_version - migrations.len()`. The
/// checksum is verified against the document's *own* (pre-migration)
/// payload, then the applicable migration suffix runs in order. An empty
/// `migrations` slice is exactly [`decode_document`].
///
/// # Errors
/// Returns [`Error::Artifact`] on every [`decode_document`] failure mode,
/// on a version outside `[current_version - migrations.len(),
/// current_version]`, or when a migration step reports garbage.
pub fn decode_document_migrating(
    text: &str,
    schema: &str,
    current_version: u32,
    migrations: &[Migration],
) -> Result<Value> {
    // Versions start at 1, so a chain of `current_version` steps (or
    // more) is an inconsistent caller: its oldest step would upgrade
    // *from* version 0 or below. Clamping silently would mis-align
    // steps with versions.
    if migrations.len() as u64 >= u64::from(current_version) {
        return Err(Error::artifact(format!(
            "`{schema}` reader declares {} migrations but only versions \
             1..={current_version} exist",
            migrations.len()
        )));
    }
    let min_version = current_version - migrations.len() as u32;
    let (found, mut payload) = decode_envelope(text, schema, min_version, current_version)?;
    for (step, migrate) in migrations
        .iter()
        .enumerate()
        .skip((found - min_version) as usize)
    {
        let from = min_version + step as u32;
        payload = migrate(payload).map_err(|detail| {
            Error::artifact(format!(
                "cannot migrate `{schema}` payload from version {from} to {}: {detail}",
                from + 1
            ))
        })?;
    }
    Ok(payload)
}

/// Parses and validates an envelope, returning the payload.
///
/// # Errors
/// Returns [`Error::Artifact`] when the text is not valid JSON, the
/// schema name differs, the version is not exactly `current_version`,
/// the checksum is absent/malformed, or the payload fails its checksum.
pub fn decode_document(text: &str, schema: &str, current_version: u32) -> Result<Value> {
    decode_envelope(text, schema, current_version, current_version).map(|(_, payload)| payload)
}

/// Shared envelope reader: schema/version/checksum checks with an
/// accepted version range, returning `(found_version, payload)`.
fn decode_envelope(
    text: &str,
    schema: &str,
    min_version: u32,
    current_version: u32,
) -> Result<(u32, Value)> {
    let doc: Value = serde_json::from_str(text)
        .map_err(|e| Error::artifact(format!("malformed document: {e}")))?;
    let got_schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| Error::artifact("document lacks a `schema` field"))?;
    if got_schema != schema {
        return Err(Error::artifact(format!(
            "schema mismatch: expected `{schema}`, found `{got_schema}`"
        )));
    }
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::artifact("document lacks a `version` field"))?;
    if version < min_version as u64 || version > current_version as u64 {
        let readable = if min_version == current_version {
            format!("version {current_version}")
        } else {
            format!("versions {min_version}..={current_version}")
        };
        return Err(Error::artifact(format!(
            "unsupported `{schema}` version {version} (this build reads {readable})"
        )));
    }
    let checksum = doc
        .get("checksum")
        .and_then(Value::as_str)
        .ok_or_else(|| Error::artifact("document lacks a `checksum` field"))?;
    let payload = doc
        .get("payload")
        .ok_or_else(|| Error::artifact("document lacks a `payload` field"))?;
    let canonical = serde_json::to_string(payload).expect("value printing is infallible");
    let expected = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    if checksum != expected {
        return Err(Error::artifact(format!(
            "checksum mismatch: document says {checksum}, payload hashes to {expected}"
        )));
    }
    // Move the payload out instead of cloning the whole tree (artifacts
    // and cost caches are payload-dominated documents).
    match doc {
        Value::Object(fields) => Ok((
            version as u32,
            fields
                .into_iter()
                .find(|(k, _)| k == "payload")
                .map(|(_, v)| v)
                .expect("payload presence checked above"),
        )),
        _ => unreachable!("get(\"payload\") succeeded on a non-object"),
    }
}

/// Upper bound on one framed record's body; larger length prefixes are
/// treated as corruption, not allocation requests.
pub const MAX_RECORD_BYTES: usize = 16 << 20;

/// Encodes one **framed record**: a 4-byte big-endian length prefix
/// followed by the *compact* checksummed envelope (same fields as
/// [`encode_document`], printed without whitespace — append-only logs are
/// byte-budgeted, documents are human-read). The frame is what the
/// request journal appends per served selection; [`scan_records`] walks a
/// stream of them back, surviving a torn tail.
///
/// # Errors
/// Returns [`Error::Artifact`] when the encoded body exceeds
/// [`MAX_RECORD_BYTES`] — payload sizes are caller-controlled (a wire
/// client can ship arbitrarily large raw inputs), so an oversized record
/// must be a typed error the writer can drop, never a panic.
pub fn encode_record(schema: &str, version: u32, payload: Value) -> Result<Vec<u8>> {
    let canonical = serde_json::to_string(&payload).expect("value printing is infallible");
    let checksum = format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes()));
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::String(schema.to_string())),
        ("version".to_string(), Value::UInt(version as u64)),
        ("checksum".to_string(), Value::String(checksum)),
        ("payload".to_string(), payload),
    ]);
    let text = serde_json::to_string(&doc).expect("value printing is infallible");
    let bytes = text.as_bytes();
    if bytes.len() > MAX_RECORD_BYTES {
        return Err(Error::artifact(format!(
            "record body of {} bytes exceeds the {MAX_RECORD_BYTES}-byte frame cap",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
    Ok(out)
}

/// Outcome of scanning a stream of framed records that may end in a torn
/// tail (a crash mid-append).
#[derive(Debug)]
pub struct RecordScan {
    /// Every complete, checksum-verified record payload, in order.
    pub records: Vec<Value>,
    /// Bytes consumed by the complete records (the offset a recovery
    /// writer could safely truncate to).
    pub consumed: usize,
    /// The typed error describing the torn/corrupt tail, if the stream
    /// did not end exactly on a record boundary.
    pub torn: Option<Error>,
}

/// Walks a byte stream of [`encode_record`] frames, returning every
/// complete record and a **typed** description of the torn tail (if any)
/// — never a panic, whatever the truncation offset. Scanning stops at the
/// first incomplete or corrupt frame: everything after an interrupted
/// append is untrusted.
pub fn scan_records(bytes: &[u8], schema: &str, version: u32) -> RecordScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    let torn = loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            break None;
        }
        if remaining < 4 {
            break Some(Error::artifact(format!(
                "torn record at byte {at}: {remaining} bytes of a length prefix"
            )));
        }
        let len =
            u32::from_be_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        if len > MAX_RECORD_BYTES {
            break Some(Error::artifact(format!(
                "corrupt record at byte {at}: announced {len} bytes, cap is {MAX_RECORD_BYTES}"
            )));
        }
        if remaining - 4 < len {
            break Some(Error::artifact(format!(
                "torn record at byte {at}: {} bytes of an announced {len}",
                remaining - 4
            )));
        }
        let body = &bytes[at + 4..at + 4 + len];
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(e) => {
                break Some(Error::artifact(format!(
                    "corrupt record at byte {at}: body is not UTF-8 ({e})"
                )))
            }
        };
        match decode_document(text, schema, version) {
            Ok(payload) => records.push(payload),
            Err(e) => break Some(Error::artifact(format!("corrupt record at byte {at}: {e}"))),
        }
        at += 4 + len;
    };
    RecordScan {
        records,
        consumed: at,
        torn,
    }
}

/// Encodes and writes a document to `path`.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be written.
pub fn write_document(path: &Path, schema: &str, version: u32, payload: Value) -> Result<()> {
    let text = encode_document(schema, version, payload);
    std::fs::write(path, text)
        .map_err(|e| Error::artifact(format!("cannot write {}: {e}", path.display())))
}

/// Reads and validates a document from `path`, returning the payload.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be read or fails any
/// [`decode_document`] check.
pub fn read_document(path: &Path, schema: &str, current_version: u32) -> Result<Value> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::artifact(format!("cannot read {}: {e}", path.display())))?;
    decode_document(&text, schema, current_version)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Value {
        Value::Object(vec![
            ("k".to_string(), Value::Int(3)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
        ])
    }

    #[test]
    fn encode_decode_round_trips() {
        let text = encode_document("test-schema", 2, payload());
        let back = decode_document(&text, "test-schema", 2).unwrap();
        assert_eq!(back, payload());
    }

    #[test]
    fn checksum_detects_payload_tampering() {
        let text = encode_document("test-schema", 1, payload());
        // Flip the payload's integer without updating the checksum.
        let tampered = text.replace("\"k\": 3", "\"k\": 4");
        assert_ne!(tampered, text, "tamper site must exist");
        let err = decode_document(&tampered, "test-schema", 1).unwrap_err();
        assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn versions_must_match_exactly() {
        let text = encode_document("test-schema", 1, payload());
        for wrong in [0, 2, 99] {
            let err = decode_document(&text, "test-schema", wrong).unwrap_err();
            assert!(err.to_string().contains("version"), "{err}");
        }
    }

    #[test]
    fn schema_name_is_enforced() {
        let text = encode_document("schema-a", 1, payload());
        let err = decode_document(&text, "schema-b", 1).unwrap_err();
        assert!(err.to_string().contains("schema mismatch"), "{err}");
    }

    #[test]
    fn garbage_is_a_typed_error() {
        for bad in ["", "not json", "{\"schema\": \"x\"}", "[1,2,3]"] {
            let err = decode_document(bad, "s", 1).unwrap_err();
            assert!(matches!(err, Error::Artifact { .. }), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("intune-codec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_document(&path, "fs-schema", 3, payload()).unwrap();
        assert_eq!(read_document(&path, "fs-schema", 3).unwrap(), payload());
        let missing = dir.join("nope.json");
        assert!(matches!(
            read_document(&missing, "fs-schema", 3),
            Err(Error::Artifact { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// v→v+1 upgrade used by the migration tests: tags the payload with
    /// the step that ran.
    fn add_step_field(step: &'static str) -> Migration {
        match step {
            "one" => |mut p: Value| {
                if let Value::Object(fields) = &mut p {
                    fields.push(("one".to_string(), Value::Bool(true)));
                }
                Ok(p)
            },
            _ => |mut p: Value| {
                if let Value::Object(fields) = &mut p {
                    fields.push(("two".to_string(), Value::Bool(true)));
                }
                Ok(p)
            },
        }
    }

    #[test]
    fn migrating_reader_accepts_current_version_unchanged() {
        let text = encode_document("mig", 3, payload());
        let migrations = [add_step_field("one"), add_step_field("two")];
        let got = decode_document_migrating(&text, "mig", 3, &migrations).unwrap();
        assert_eq!(got, payload(), "current version runs no migration");
    }

    #[test]
    fn migrating_reader_upgrades_old_versions_in_order() {
        let migrations = [add_step_field("one"), add_step_field("two")];
        // Version 1 (= 3 - 2) runs both steps; version 2 only the last.
        let v1 = encode_document("mig", 1, payload());
        let got = decode_document_migrating(&v1, "mig", 3, &migrations).unwrap();
        assert_eq!(got.get("one"), Some(&Value::Bool(true)));
        assert_eq!(got.get("two"), Some(&Value::Bool(true)));

        let v2 = encode_document("mig", 2, payload());
        let got = decode_document_migrating(&v2, "mig", 3, &migrations).unwrap();
        assert_eq!(got.get("one"), None, "version 2 skips the 1→2 step");
        assert_eq!(got.get("two"), Some(&Value::Bool(true)));
    }

    #[test]
    fn migrating_reader_rejects_outside_the_window() {
        let migrations = [add_step_field("one")];
        for (stale, msg) in [(1u32, "too old"), (4, "from the future")] {
            let text = encode_document("mig", stale, payload());
            let err = decode_document_migrating(&text, "mig", 3, &migrations).unwrap_err();
            assert!(err.to_string().contains("version"), "{msg}: {err}");
        }
    }

    #[test]
    fn over_long_migration_chains_are_rejected_not_misaligned() {
        // Versions start at 1, so two steps require current_version ≥ 3.
        // current_version 2 (oldest step would upgrade *from* version 0)
        // and current_version 1 (from version -1) must both refuse
        // rather than clamp and run misaligned steps.
        let migrations = [add_step_field("one"), add_step_field("two")];
        for current in [1u32, 2] {
            let text = encode_document("mig", current, payload());
            let err = decode_document_migrating(&text, "mig", current, &migrations).unwrap_err();
            assert!(err.to_string().contains("2 migrations"), "{current}: {err}");
        }
    }

    #[test]
    fn migration_failure_is_a_typed_error() {
        let migrations: [Migration; 1] = [|_| Err("payload predates field x".to_string())];
        let text = encode_document("mig", 1, payload());
        let err = decode_document_migrating(&text, "mig", 2, &migrations).unwrap_err();
        assert!(matches!(err, Error::Artifact { .. }), "{err:?}");
        assert!(err.to_string().contains("predates"), "{err}");
    }

    #[test]
    fn migrating_reader_still_enforces_the_checksum() {
        let migrations = [add_step_field("one")];
        let text = encode_document("mig", 1, payload());
        let tampered = text.replace("\"k\": 3", "\"k\": 4");
        assert_ne!(tampered, text);
        let err = decode_document_migrating(&tampered, "mig", 2, &migrations).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn framed_records_round_trip_in_order() {
        let mut stream = Vec::new();
        for i in 0..5i64 {
            stream.extend(
                encode_record(
                    "rec",
                    1,
                    Value::Object(vec![("i".to_string(), Value::Int(i))]),
                )
                .unwrap(),
            );
        }
        let scan = scan_records(&stream, "rec", 1);
        assert!(scan.torn.is_none());
        assert_eq!(scan.consumed, stream.len());
        assert_eq!(scan.records.len(), 5);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.get("i"), Some(&Value::Int(i as i64)));
        }
    }

    #[test]
    fn truncation_at_every_offset_keeps_complete_records_and_types_the_tail() {
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for i in 0..3i64 {
            stream.extend(
                encode_record(
                    "rec",
                    1,
                    Value::Object(vec![("i".to_string(), Value::Int(i))]),
                )
                .unwrap(),
            );
            boundaries.push(stream.len());
        }
        for cut in 0..=stream.len() {
            let scan = scan_records(&stream[..cut], "rec", 1);
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), complete, "cut at {cut}");
            assert_eq!(scan.consumed, boundaries[complete], "cut at {cut}");
            let on_boundary = boundaries.contains(&cut);
            assert_eq!(scan.torn.is_none(), on_boundary, "cut at {cut}");
            if let Some(torn) = scan.torn {
                assert!(matches!(torn, Error::Artifact { .. }));
            }
        }
    }

    #[test]
    fn corrupt_record_bodies_stop_the_scan_with_a_typed_error() {
        let mut stream = encode_record("rec", 1, payload()).unwrap();
        let second_at = stream.len();
        stream.extend(encode_record("rec", 1, payload()).unwrap());
        // Flip a byte inside the second record's payload.
        stream[second_at + 40] ^= 0x01;
        let scan = scan_records(&stream, "rec", 1);
        assert_eq!(scan.records.len(), 1, "first record survives");
        assert_eq!(scan.consumed, second_at);
        let torn = scan.torn.expect("corruption reported");
        assert!(torn.to_string().contains("corrupt record"), "{torn}");

        // An absurd length prefix is corruption, not an allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        let scan = scan_records(&huge, "rec", 1);
        assert!(scan.records.is_empty());
        assert!(scan.torn.expect("typed").to_string().contains("cap"));
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
