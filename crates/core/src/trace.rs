//! Trace context: the per-request identity that follows one input
//! across process boundaries.
//!
//! A [`TraceContext`] names one request's journey — client, wire,
//! daemon stages, selection, journal, retrain — with a single
//! `trace_id`. It rides the wire as an *optional* field on selection
//! messages (absent = untraced, so the encoding of untraced traffic is
//! byte-identical to a build that predates tracing) and is echoed into
//! every span a layer records for the request (`intune_obs::trace`).
//!
//! Identifiers are minted deterministically (a per-process nonce mixed
//! with a monotone counter — never wall-clock time), so tests and
//! replays produce stable ids.

use serde::{Deserialize, Serialize};

/// The portable trace identity of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace this request belongs to (non-zero for a real trace).
    pub trace_id: u64,
    /// Span id of the caller's span, for parent/child linkage across
    /// the wire (0 = the trace root has no parent).
    pub parent_span: u64,
    /// Head-based sampling verdict: only sampled requests record spans
    /// downstream. Carried explicitly so an unsampled context can still
    /// propagate its id without obliging servers to pay span cost.
    pub sampled: bool,
}

impl TraceContext {
    /// A sampled root context for `trace_id` (no parent span yet).
    #[must_use]
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span: 0,
            sampled: true,
        }
    }

    /// This context re-parented under `span_id` — what a layer passes
    /// to its callee after opening its own span.
    #[must_use]
    pub fn child_of(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: span_id,
            sampled: self.sampled,
        }
    }

    /// Renders a trace id the way every tool prints and accepts it:
    /// 16 lowercase hex digits.
    #[must_use]
    pub fn format_trace_id(trace_id: u64) -> String {
        format!("{trace_id:016x}")
    }

    /// Parses a trace id printed by [`TraceContext::format_trace_id`]
    /// (plain decimal is accepted too, for hand-typed ids).
    #[must_use]
    pub fn parse_trace_id(text: &str) -> Option<u64> {
        if let Ok(v) = text.parse::<u64>() {
            return Some(v);
        }
        u64::from_str_radix(text.trim_start_matches("0x"), 16).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips_and_elides_nothing() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef,
            parent_span: 7,
            sampled: true,
        };
        let v = serde_json::to_value(&ctx);
        let back: TraceContext = serde_json::from_value(&v).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn child_links_to_the_parent_span() {
        let root = TraceContext::root(42);
        assert_eq!(root.parent_span, 0);
        assert!(root.sampled);
        let child = root.child_of(9);
        assert_eq!(child.trace_id, 42);
        assert_eq!(child.parent_span, 9);
    }

    #[test]
    fn trace_ids_print_and_parse_as_hex() {
        let text = TraceContext::format_trace_id(255);
        assert_eq!(text, "00000000000000ff");
        assert_eq!(TraceContext::parse_trace_id(&text), Some(255));
        assert_eq!(TraceContext::parse_trace_id("255"), Some(255));
        assert_eq!(TraceContext::parse_trace_id("0xff"), Some(255));
        assert_eq!(TraceContext::parse_trace_id("nope"), None);
    }
}
