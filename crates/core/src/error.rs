//! Error type shared by the `intune` crates.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or using configuration spaces and features.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A parameter specification was invalid (e.g. `min > max`, zero choices).
    InvalidParam {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration does not match the space it is being used with.
    ConfigMismatch {
        /// What the space expected.
        expected: String,
        /// What the configuration contained.
        got: String,
    },
    /// A parameter was looked up by a name that does not exist in the space.
    UnknownParam {
        /// The missing name.
        name: String,
    },
    /// A feature property or level index was out of range.
    UnknownFeature {
        /// Property index requested.
        property: usize,
        /// Level index requested.
        level: usize,
    },
    /// An operation required a non-empty collection but got an empty one.
    Empty {
        /// What was empty.
        what: String,
    },
    /// An invariant of the learning pipeline was violated.
    Invariant {
        /// Human-readable description.
        message: String,
    },
    /// A benchmark measurement cell failed (the benchmark panicked or
    /// otherwise could not produce an [`crate::ExecutionReport`]).
    Measurement {
        /// Index of the input whose cell failed.
        input: usize,
        /// Human-readable failure detail (e.g. the panic message).
        detail: String,
    },
    /// A persisted artifact (model, cost cache) could not be written,
    /// read, or validated — corrupted payload, checksum mismatch,
    /// unsupported schema version, or a shape that does not match the
    /// benchmark it is being deployed against.
    Artifact {
        /// Human-readable failure detail.
        detail: String,
    },
    /// A wire-protocol exchange failed — transport I/O, an oversized or
    /// malformed frame, an unexpected message kind, or a server-reported
    /// error relayed to the client.
    Wire {
        /// Human-readable failure detail.
        detail: String,
    },
    /// A runtime configuration value (environment variable, CLI knob) was
    /// present but unusable — e.g. a non-numeric `INTUNE_THREADS`.
    /// Unset values are never an error; garbage must not degrade silently.
    Config {
        /// The configuration source (environment variable name).
        var: String,
        /// Human-readable failure detail, including the offending value.
        detail: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::Artifact`].
    pub fn artifact(detail: impl Into<String>) -> Self {
        Error::Artifact {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`Error::Wire`].
    pub fn wire(detail: impl Into<String>) -> Self {
        Error::Wire {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`Error::Config`].
    pub fn config(var: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Config {
            var: var.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParam { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::ConfigMismatch { expected, got } => {
                write!(f, "configuration mismatch: expected {expected}, got {got}")
            }
            Error::UnknownParam { name } => write!(f, "unknown parameter `{name}`"),
            Error::UnknownFeature { property, level } => {
                write!(f, "unknown feature (property {property}, level {level})")
            }
            Error::Empty { what } => write!(f, "{what} must not be empty"),
            Error::Invariant { message } => write!(f, "invariant violated: {message}"),
            Error::Measurement { input, detail } => {
                write!(f, "measurement of input {input} failed: {detail}")
            }
            Error::Artifact { detail } => write!(f, "artifact error: {detail}"),
            Error::Wire { detail } => write!(f, "wire error: {detail}"),
            Error::Config { var, detail } => {
                write!(f, "invalid configuration `{var}`: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = Error::InvalidParam {
            name: "cutoff".into(),
            reason: "min 10 exceeds max 2".into(),
        };
        let text = err.to_string();
        assert!(text.contains("cutoff"));
        assert!(text.contains("min 10 exceeds max 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn unknown_param_display() {
        let err = Error::UnknownParam { name: "x".into() };
        assert_eq!(err.to_string(), "unknown parameter `x`");
    }

    #[test]
    fn config_display_names_var_and_value() {
        let err = Error::config("INTUNE_THREADS", "`banana` is not a number");
        let text = err.to_string();
        assert!(text.contains("INTUNE_THREADS"));
        assert!(text.contains("banana"));
    }

    #[test]
    fn measurement_display_names_input_and_detail() {
        let err = Error::Measurement {
            input: 17,
            detail: "index out of bounds".into(),
        };
        let text = err.to_string();
        assert!(text.contains("input 17"));
        assert!(text.contains("index out of bounds"));
    }
}
