//! The [`Benchmark`] trait: a program with algorithmic choices, input
//! features and (optionally) variable accuracy.
//!
//! Everything the two-level learner does — clustering, landmark autotuning,
//! performance measurement, classifier training — is generic over this trait,
//! mirroring how the paper's learner interacts with PetaBricks programs only
//! through their configuration space, execution outcomes and declared
//! `input_feature` extractors.

use crate::config::{ConfigSpace, Configuration};
use crate::cost::ExecutionReport;
use crate::error::{Error, Result};
use crate::features::{FeatureDef, FeatureId, FeatureSample, FeatureSet, FeatureVector};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A benchmark's variable-accuracy contract: the programmer-specified
/// accuracy threshold H1 (the satisfaction threshold H2 — the fraction of
/// inputs that must meet H1, 95 % in the paper — lives in the learner's
/// options since it is a property of the training process, not the program).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySpec {
    /// Minimum accuracy-metric value for an output to count as accurate.
    pub threshold: f64,
}

impl AccuracySpec {
    /// Convenience constructor.
    pub fn new(threshold: f64) -> Self {
        AccuracySpec { threshold }
    }
}

/// A program with algorithmic choices: the unit of autotuning.
///
/// Implementations must be deterministic: `run` with the same configuration
/// and input must produce the same report (benchmarks thread explicit RNG
/// seeds through their inputs where randomized algorithms are involved).
pub trait Benchmark {
    /// The input type the program processes.
    type Input;

    /// Stable, short name (used in reports and file names).
    fn name(&self) -> &str;

    /// The configuration (choice) space this program exposes.
    fn space(&self) -> ConfigSpace;

    /// Runs the program on `input` under `cfg`, reporting deterministic cost
    /// and, for variable-accuracy programs, the accuracy metric.
    fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport;

    /// Runs with a cell-specific RNG seed (the `intune-exec` engine derives
    /// one per measurement cell from the cell's identity, so it is stable
    /// across worker counts and execution orders). The default ignores the
    /// seed — benchmarks are deterministic functions of `(cfg, input)` —
    /// but a benchmark with internal randomness (sampled accuracy metrics,
    /// randomized pivots) overrides this to stay reproducible.
    fn run_seeded(&self, cfg: &Configuration, input: &Self::Input, _seed: u64) -> ExecutionReport {
        self.run(cfg, input)
    }

    /// The accuracy contract, or `None` for fixed-accuracy programs (sort).
    fn accuracy(&self) -> Option<AccuracySpec> {
        None
    }

    /// Declares the feature properties (`input_feature` functions) and their
    /// sampling-level counts.
    fn properties(&self) -> Vec<FeatureDef>;

    /// Extracts one property at one sampling level from an input, reporting
    /// both the value and the extraction cost.
    ///
    /// # Panics
    /// Implementations may panic if `property`/`level` are out of the range
    /// declared by [`Benchmark::properties`]; callers should stay in range.
    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample;

    /// Extracts *all* features (every property at every level) into a dense
    /// [`FeatureVector`]. Used at training time, where the full matrix is
    /// needed, and by the serving runtimes' drift probes.
    ///
    /// The default calls [`Benchmark::extract`] once per property × level.
    /// Benchmarks whose per-feature extractors redo shared work (typically
    /// re-subsampling the input for every property at the same level)
    /// should override this with a fused pass — the override must produce
    /// **bit-identical** samples to the default, which is what keeps
    /// selections byte-identical between training and serving.
    fn extract_all(&self, input: &Self::Input) -> FeatureVector {
        let defs = self.properties();
        let mut fv = FeatureVector::empty(&defs);
        for (p, def) in defs.iter().enumerate() {
            for level in 0..def.levels {
                let sample = self.extract(p, level, input);
                fv.insert(FeatureId { property: p, level }, sample)
                    .expect("in-range feature id");
            }
        }
        fv
    }

    /// Encodes an input as a self-describing JSON payload so it can travel
    /// — over the serve daemon's wire protocol into the request journal,
    /// and from there into a retraining corpus. `None` (the default) means
    /// this benchmark's inputs cannot be journaled; continuous learning
    /// then sees the served feature vectors but cannot re-measure the
    /// inputs behind them.
    ///
    /// Implementations must round-trip exactly through
    /// [`Benchmark::decode_input`]: `decode_input(&encode_input(x)?)`
    /// yields an input the benchmark treats identically to `x` (same
    /// `run` reports, same extracted features, bit-for-bit floats).
    fn encode_input(&self, _input: &Self::Input) -> Option<serde_json::Value> {
        None
    }

    /// Decodes a payload produced by [`Benchmark::encode_input`]; `None`
    /// when the payload does not describe a valid input (or the benchmark
    /// does not support input journaling).
    fn decode_input(&self, _payload: &serde_json::Value) -> Option<Self::Input> {
        None
    }
}

/// Blanket convenience methods for benchmarks.
pub trait BenchmarkExt: Benchmark {
    /// Runs the benchmark and attaches wall-clock time to the report. The
    /// deterministic `cost` stays the primary metric (DESIGN.md §4); the
    /// timing is informational, used by the Criterion benches.
    fn run_timed(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
        let sw = crate::cost::Stopwatch::start();
        let report = self.run(cfg, input);
        report.timed(sw.elapsed_ns())
    }

    /// Runs one *measurement cell* — configuration × input × cell seed —
    /// converting a benchmark panic into a typed [`Error::Measurement`]
    /// instead of aborting the caller. `input_idx` identifies the input in
    /// the error; `seed` is forwarded to [`Benchmark::run_seeded`].
    ///
    /// This is the unit of work of the `intune-exec` measurement engine;
    /// prefer submitting a whole `MeasurementPlan` there so cells are
    /// deduplicated, memoized, and executed on the work-stealing pool.
    fn run_cell(
        &self,
        cfg: &Configuration,
        input_idx: usize,
        input: &Self::Input,
        seed: u64,
    ) -> Result<ExecutionReport> {
        catch_unwind(AssertUnwindSafe(|| self.run_seeded(cfg, input, seed))).map_err(|payload| {
            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "benchmark panicked".to_string()
            };
            Error::Measurement {
                input: input_idx,
                detail,
            }
        })
    }

    /// Batch-measure entry point: runs every `(input index, configuration,
    /// cell seed)` cell against `inputs` in order, stopping at the first
    /// failing cell.
    ///
    /// This serial path is what the `intune-exec` engine reduces to at one
    /// worker thread; results are identical at any worker count because
    /// cells are independent and carry identity-derived seeds.
    fn run_batch<'a>(
        &self,
        cells: impl IntoIterator<Item = (usize, &'a Configuration, u64)>,
        inputs: &[Self::Input],
    ) -> Result<Vec<ExecutionReport>> {
        cells
            .into_iter()
            .map(|(i, cfg, seed)| {
                let input = inputs.get(i).ok_or_else(|| Error::Measurement {
                    input: i,
                    detail: format!("input index out of range (corpus has {})", inputs.len()),
                })?;
                self.run_cell(cfg, i, input, seed)
            })
            .collect()
    }

    /// Extracts only the features in `set`, returning the samples in
    /// `set.iter()` order together with the summed extraction cost.
    fn extract_set(&self, set: &FeatureSet, input: &Self::Input) -> (Vec<f64>, f64) {
        let mut values = Vec::with_capacity(set.count());
        let mut cost = 0.0;
        for id in set.iter() {
            let s = self.extract(id.property, id.level, input);
            values.push(s.value);
            cost += s.cost;
        }
        (values, cost)
    }
}

impl<B: Benchmark + ?Sized> BenchmarkExt for B {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigSpace;
    use crate::cost::ExecutionReport;

    /// A toy benchmark: "sorts" by charging n·log n or n² depending on the
    /// switch, with a single two-level feature (input length at two costs).
    struct Toy;

    impl Benchmark for Toy {
        type Input = Vec<f64>;

        fn name(&self) -> &str {
            "toy"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder().switch("alg", 2).build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            let n = input.len() as f64;
            let cost = match cfg.choice(0) {
                0 => n * n.max(2.0).log2(),
                _ => n * n,
            };
            ExecutionReport::of_cost(cost)
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("length", 2)]
        }

        fn extract(&self, _property: usize, level: usize, input: &Self::Input) -> FeatureSample {
            FeatureSample::new(input.len() as f64, (level + 1) as f64)
        }
    }

    #[test]
    fn extract_all_fills_every_slot() {
        let b = Toy;
        let fv = b.extract_all(&vec![1.0; 10]);
        assert_eq!(fv.len(), 2);
        assert!(fv.dense().iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn extract_set_sums_costs() {
        let b = Toy;
        let set = FeatureSet::from_choices(vec![Some(1)]);
        let (values, cost) = b.extract_set(&set, &vec![1.0; 10]);
        assert_eq!(values, vec![10.0]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn run_reflects_choice() {
        let b = Toy;
        let space = b.space();
        let mut fast = space.default_config();
        fast.set(0, crate::config::ParamValue::Choice(0));
        let mut slow = space.default_config();
        slow.set(0, crate::config::ParamValue::Choice(1));
        let input = vec![0.0; 1024];
        assert!(b.run(&fast, &input).cost < b.run(&slow, &input).cost);
    }

    #[test]
    fn default_accuracy_is_none() {
        assert!(Toy.accuracy().is_none());
    }

    /// A benchmark that panics on inputs shorter than 2 elements.
    struct Fragile;

    impl Benchmark for Fragile {
        type Input = Vec<f64>;

        fn name(&self) -> &str {
            "fragile"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder().switch("alg", 2).build()
        }

        fn run(&self, _cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            assert!(input.len() >= 2, "fragile benchmark needs >= 2 elements");
            ExecutionReport::of_cost(input.len() as f64)
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("length", 1)]
        }

        fn extract(&self, _property: usize, _level: usize, input: &Self::Input) -> FeatureSample {
            FeatureSample::new(input.len() as f64, 1.0)
        }
    }

    #[test]
    fn run_cell_converts_panics_into_typed_errors() {
        let b = Fragile;
        let cfg = b.space().default_config();
        assert!(b.run_cell(&cfg, 0, &vec![1.0, 2.0], 0).is_ok());
        let err = b.run_cell(&cfg, 3, &vec![1.0], 0).unwrap_err();
        match err {
            crate::error::Error::Measurement { input, detail } => {
                assert_eq!(input, 3);
                assert!(detail.contains(">= 2 elements"), "detail: {detail}");
            }
            other => panic!("expected Measurement error, got {other:?}"),
        }
    }

    #[test]
    fn run_batch_measures_cells_in_order() {
        let b = Toy;
        let cfg = b.space().default_config();
        let inputs = vec![vec![0.0; 4], vec![0.0; 8]];
        let reports = b.run_batch([(1, &cfg, 7), (0, &cfg, 8)], &inputs).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0], b.run(&cfg, &inputs[1]));
        assert_eq!(reports[1], b.run(&cfg, &inputs[0]));
    }

    #[test]
    fn run_seeded_default_ignores_seed_but_overrides_see_it() {
        struct Randomized;
        impl Benchmark for Randomized {
            type Input = f64;
            fn name(&self) -> &str {
                "randomized"
            }
            fn space(&self) -> ConfigSpace {
                ConfigSpace::builder().switch("alg", 2).build()
            }
            fn run(&self, _cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
                ExecutionReport::of_cost(*input)
            }
            fn run_seeded(
                &self,
                _cfg: &Configuration,
                input: &Self::Input,
                seed: u64,
            ) -> ExecutionReport {
                // Seed-dependent jitter stands in for internal randomness.
                ExecutionReport::of_cost(input + (seed % 10) as f64)
            }
            fn properties(&self) -> Vec<FeatureDef> {
                vec![FeatureDef::new("x", 1)]
            }
            fn extract(&self, _p: usize, _l: usize, input: &Self::Input) -> FeatureSample {
                FeatureSample::new(*input, 1.0)
            }
        }
        let cfg = Toy.space().default_config();
        // Default: seed is inert.
        assert_eq!(
            Toy.run_seeded(&cfg, &vec![0.0; 8], 3).cost,
            Toy.run(&cfg, &vec![0.0; 8]).cost
        );
        // Override: run_cell threads the seed through.
        let r = Randomized.run_cell(&cfg, 0, &100.0, 7).unwrap();
        assert_eq!(r.cost, 107.0);
    }

    #[test]
    fn run_batch_rejects_out_of_range_input() {
        let b = Toy;
        let cfg = b.space().default_config();
        let err = b.run_batch([(5, &cfg, 0)], &[vec![0.0; 4]]).unwrap_err();
        assert!(matches!(
            err,
            crate::error::Error::Measurement { input: 5, .. }
        ));
    }

    #[test]
    fn run_timed_preserves_report_and_adds_time() {
        let b = Toy;
        let cfg = b.space().default_config();
        let input = vec![0.0; 64];
        let plain = b.run(&cfg, &input);
        let timed = b.run_timed(&cfg, &input);
        assert_eq!(timed.cost, plain.cost);
        assert_eq!(timed.accuracy, plain.accuracy);
        assert!(timed.time_ns.is_some());
    }
}
