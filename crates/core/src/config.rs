//! Configuration spaces and configurations (genomes).
//!
//! A [`ConfigSpace`] is the set of all algorithmic configurations a program
//! exposes: algorithm switches (PetaBricks `either…or`), integer tunables
//! (cutoffs, iteration counts), and floating tunables (sampling levels,
//! relaxation factors). A [`Configuration`] is one point in that space — the
//! genome the evolutionary autotuner mutates and the artifact the two-level
//! learner ships as a *landmark*.

use crate::error::{Error, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind (domain) of a single tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// A categorical algorithmic choice with `choices` alternatives
    /// (the `either…or` construct). Values are `0..choices`.
    Switch {
        /// Number of alternatives; must be at least 1.
        choices: usize,
    },
    /// An integer tunable in `[min, max]`, mutated uniformly.
    Int {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// An integer tunable in `[min, max]` mutated in log space — appropriate
    /// for cutoffs and sizes spanning orders of magnitude.
    LogInt {
        /// Inclusive lower bound; must be at least 1.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// A floating-point tunable in `[min, max]`.
    Float {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
}

impl ParamKind {
    /// Number of distinct values for size accounting. Floats are counted at a
    /// nominal resolution of 1000 steps (documented in `ConfigSpace::log10_size`).
    fn cardinality(&self) -> f64 {
        match *self {
            ParamKind::Switch { choices } => choices as f64,
            ParamKind::Int { min, max } | ParamKind::LogInt { min, max } => (max - min + 1) as f64,
            ParamKind::Float { .. } => 1000.0,
        }
    }
}

/// A named parameter in a configuration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Unique name within the space (e.g. `"sort.cutoff0"`).
    pub name: String,
    /// Domain of the parameter.
    pub kind: ParamKind,
}

/// The value of a single parameter inside a [`Configuration`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Value of a [`ParamKind::Switch`].
    Choice(usize),
    /// Value of a [`ParamKind::Int`] or [`ParamKind::LogInt`].
    Int(i64),
    /// Value of a [`ParamKind::Float`].
    Float(f64),
}

/// One point in a [`ConfigSpace`]: the genome that autotuners search over and
/// that the learning pipeline stores as a *landmark configuration*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    values: Vec<ParamValue>,
}

impl Configuration {
    /// Creates a configuration directly from values. Prefer
    /// [`ConfigSpace::random`] or [`ConfigSpace::default_config`]; this is for
    /// tests and deserialization.
    pub fn from_values(values: Vec<ParamValue>) -> Self {
        Configuration { values }
    }

    /// Number of parameter values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in parameter order.
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// The switch value at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range or the value is not a `Choice`.
    pub fn choice(&self, idx: usize) -> usize {
        match self.values[idx] {
            ParamValue::Choice(c) => c,
            other => panic!("parameter {idx} is {other:?}, not a switch"),
        }
    }

    /// The integer value at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range or the value is not an `Int`.
    pub fn int(&self, idx: usize) -> i64 {
        match self.values[idx] {
            ParamValue::Int(v) => v,
            other => panic!("parameter {idx} is {other:?}, not an int"),
        }
    }

    /// The float value at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range or the value is not a `Float`.
    pub fn float(&self, idx: usize) -> f64 {
        match self.values[idx] {
            ParamValue::Float(v) => v,
            other => panic!("parameter {idx} is {other:?}, not a float"),
        }
    }

    /// Replaces the value at `idx`. Used by search algorithms.
    pub fn set(&mut self, idx: usize, value: ParamValue) {
        self.values[idx] = value;
    }
}

/// Builder for [`ConfigSpace`]; see [`ConfigSpace::builder`].
#[derive(Debug, Default)]
pub struct ConfigSpaceBuilder {
    params: Vec<ParamSpec>,
}

impl ConfigSpaceBuilder {
    /// Adds a categorical switch (`either…or`) with `choices` alternatives.
    pub fn switch(mut self, name: impl Into<String>, choices: usize) -> Self {
        self.params.push(ParamSpec {
            name: name.into(),
            kind: ParamKind::Switch { choices },
        });
        self
    }

    /// Adds a uniform integer tunable in `[min, max]`.
    pub fn int(mut self, name: impl Into<String>, min: i64, max: i64) -> Self {
        self.params.push(ParamSpec {
            name: name.into(),
            kind: ParamKind::Int { min, max },
        });
        self
    }

    /// Adds a log-scaled integer tunable in `[min, max]` (cutoffs, sizes).
    pub fn log_int(mut self, name: impl Into<String>, min: i64, max: i64) -> Self {
        self.params.push(ParamSpec {
            name: name.into(),
            kind: ParamKind::LogInt { min, max },
        });
        self
    }

    /// Adds a floating-point tunable in `[min, max]`.
    pub fn float(mut self, name: impl Into<String>, min: f64, max: f64) -> Self {
        self.params.push(ParamSpec {
            name: name.into(),
            kind: ParamKind::Float { min, max },
        });
        self
    }

    /// Adds an already-constructed spec (used by [`crate::SelectorSpec`]).
    pub fn spec(mut self, spec: ParamSpec) -> Self {
        self.params.push(spec);
        self
    }

    /// Finalizes the space.
    ///
    /// # Panics
    /// Panics if any parameter is malformed (empty switch, inverted bounds,
    /// duplicate names). Use [`ConfigSpaceBuilder::try_build`] for a fallible
    /// variant.
    pub fn build(self) -> ConfigSpace {
        self.try_build().expect("malformed configuration space")
    }

    /// Finalizes the space, reporting malformed parameters as errors.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParam`] for empty switches, inverted or
    /// non-finite bounds, `LogInt` bounds below 1, and duplicate names.
    pub fn try_build(self) -> Result<ConfigSpace> {
        let mut seen = std::collections::HashSet::new();
        for p in &self.params {
            if !seen.insert(p.name.clone()) {
                return Err(Error::InvalidParam {
                    name: p.name.clone(),
                    reason: "duplicate parameter name".into(),
                });
            }
            match p.kind {
                ParamKind::Switch { choices: 0 } => {
                    return Err(Error::InvalidParam {
                        name: p.name.clone(),
                        reason: "switch must have at least one choice".into(),
                    });
                }
                ParamKind::Int { min, max } if min > max => {
                    return Err(Error::InvalidParam {
                        name: p.name.clone(),
                        reason: format!("min {min} exceeds max {max}"),
                    });
                }
                ParamKind::LogInt { min, max } if min < 1 || min > max => {
                    return Err(Error::InvalidParam {
                        name: p.name.clone(),
                        reason: format!("log-int bounds [{min}, {max}] invalid"),
                    });
                }
                ParamKind::Float { min, max }
                    if !(min.is_finite() && max.is_finite()) || min > max =>
                {
                    return Err(Error::InvalidParam {
                        name: p.name.clone(),
                        reason: format!("float bounds [{min}, {max}] invalid"),
                    });
                }
                _ => {}
            }
        }
        Ok(ConfigSpace {
            params: self.params,
        })
    }
}

/// The space of all configurations a benchmark exposes.
///
/// Spaces in the paper's benchmarks have between 10^312 and 10^1016 points;
/// [`ConfigSpace::log10_size`] reports the analogous statistic here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    params: Vec<ParamSpec>,
}

impl ConfigSpace {
    /// Starts building a space.
    pub fn builder() -> ConfigSpaceBuilder {
        ConfigSpaceBuilder::default()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// All parameter specs in order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// The spec at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn param(&self, idx: usize) -> &ParamSpec {
        &self.params[idx]
    }

    /// Index of the parameter named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Index of the parameter named `name`, as an error if missing.
    ///
    /// # Errors
    /// Returns [`Error::UnknownParam`] when no parameter has that name.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| Error::UnknownParam {
            name: name.to_string(),
        })
    }

    /// log10 of the number of points in the space (floats counted at a
    /// nominal resolution of 1000 steps). This is the statistic the paper
    /// quotes as "10^312 to 10^1016 possible configurations".
    pub fn log10_size(&self) -> f64 {
        self.params
            .iter()
            .map(|p| p.kind.cardinality().log10())
            .sum()
    }

    /// Draws a uniformly random configuration.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Configuration {
        let values = self
            .params
            .iter()
            .map(|p| Self::sample(&p.kind, rng))
            .collect();
        Configuration { values }
    }

    /// A deterministic "reasonable default" configuration: switch choice 0,
    /// numeric tunables at the midpoint (geometric midpoint for `LogInt`).
    pub fn default_config(&self) -> Configuration {
        let values = self
            .params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Switch { .. } => ParamValue::Choice(0),
                ParamKind::Int { min, max } => ParamValue::Int(min + (max - min) / 2),
                ParamKind::LogInt { min, max } => {
                    let mid = ((min as f64).ln() + (max as f64).ln()) / 2.0;
                    ParamValue::Int((mid.exp().round() as i64).clamp(min, max))
                }
                ParamKind::Float { min, max } => ParamValue::Float((min + max) / 2.0),
            })
            .collect();
        Configuration { values }
    }

    fn sample<R: Rng + ?Sized>(kind: &ParamKind, rng: &mut R) -> ParamValue {
        match *kind {
            ParamKind::Switch { choices } => ParamValue::Choice(rng.gen_range(0..choices)),
            ParamKind::Int { min, max } => ParamValue::Int(rng.gen_range(min..=max)),
            ParamKind::LogInt { min, max } => {
                let lo = (min as f64).ln();
                let hi = (max as f64).ln();
                let v = rng.gen_range(lo..=hi).exp().round() as i64;
                ParamValue::Int(v.clamp(min, max))
            }
            ParamKind::Float { min, max } => ParamValue::Float(rng.gen_range(min..=max)),
        }
    }

    /// Checks that `cfg` is well-formed for this space (length, kinds, ranges).
    ///
    /// # Errors
    /// Returns [`Error::ConfigMismatch`] describing the first violation.
    pub fn validate(&self, cfg: &Configuration) -> Result<()> {
        if cfg.values.len() != self.params.len() {
            return Err(Error::ConfigMismatch {
                expected: format!("{} values", self.params.len()),
                got: format!("{} values", cfg.values.len()),
            });
        }
        for (p, v) in self.params.iter().zip(&cfg.values) {
            let ok = match (&p.kind, v) {
                (ParamKind::Switch { choices }, ParamValue::Choice(c)) => c < choices,
                (ParamKind::Int { min, max }, ParamValue::Int(v))
                | (ParamKind::LogInt { min, max }, ParamValue::Int(v)) => v >= min && v <= max,
                (ParamKind::Float { min, max }, ParamValue::Float(v)) => {
                    v.is_finite() && *v >= *min && *v <= *max
                }
                _ => false,
            };
            if !ok {
                return Err(Error::ConfigMismatch {
                    expected: format!("{:?} for `{}`", p.kind, p.name),
                    got: format!("{v:?}"),
                });
            }
        }
        Ok(())
    }

    /// Returns a copy of `cfg` with each gene independently re-sampled or
    /// perturbed with probability `rate`. Numeric genes take a local step
    /// (Gaussian-ish walk) half of the time and a global re-sample otherwise,
    /// the standard PetaBricks-style mutation mix.
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        cfg: &Configuration,
        rate: f64,
        rng: &mut R,
    ) -> Configuration {
        let mut out = cfg.clone();
        for (idx, p) in self.params.iter().enumerate() {
            if rng.gen::<f64>() >= rate {
                continue;
            }
            let local = rng.gen::<f64>() < 0.5;
            let value = if local {
                Self::local_step(&p.kind, &out.values[idx], rng)
            } else {
                Self::sample(&p.kind, rng)
            };
            out.values[idx] = value;
        }
        out
    }

    fn local_step<R: Rng + ?Sized>(kind: &ParamKind, cur: &ParamValue, rng: &mut R) -> ParamValue {
        match (kind, cur) {
            (ParamKind::Switch { choices }, _) => ParamValue::Choice(rng.gen_range(0..*choices)),
            (ParamKind::Int { min, max }, ParamValue::Int(v)) => {
                let span = ((max - min) / 8).max(1);
                ParamValue::Int((v + rng.gen_range(-span..=span)).clamp(*min, *max))
            }
            (ParamKind::LogInt { min, max }, ParamValue::Int(v)) => {
                let factor = rng.gen_range(0.5_f64..2.0);
                let stepped = ((*v as f64) * factor).round() as i64;
                ParamValue::Int(stepped.clamp(*min, *max))
            }
            (ParamKind::Float { min, max }, ParamValue::Float(v)) => {
                let span = (max - min) / 8.0;
                ParamValue::Float((v + rng.gen_range(-span..=span)).clamp(*min, *max))
            }
            // Mismatch should be impossible for validated configs; fall back
            // to a fresh sample rather than panicking inside search.
            _ => Self::sample(kind, rng),
        }
    }

    /// Uniform crossover: each gene is taken from `a` or `b` with equal
    /// probability.
    pub fn crossover<R: Rng + ?Sized>(
        &self,
        a: &Configuration,
        b: &Configuration,
        rng: &mut R,
    ) -> Configuration {
        let values = a
            .values
            .iter()
            .zip(&b.values)
            .map(|(x, y)| if rng.gen::<bool>() { *x } else { *y })
            .collect();
        Configuration { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .switch("alg", 5)
            .int("iters", 1, 100)
            .log_int("cutoff", 1, 65536)
            .float("level", 0.0, 1.0)
            .build()
    }

    #[test]
    fn random_configs_validate() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let cfg = s.random(&mut rng);
            s.validate(&cfg).unwrap();
        }
    }

    #[test]
    fn default_config_validates_and_is_deterministic() {
        let s = space();
        let a = s.default_config();
        let b = s.default_config();
        assert_eq!(a, b);
        s.validate(&a).unwrap();
        assert_eq!(a.choice(0), 0);
    }

    #[test]
    fn mutation_stays_in_space() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = s.default_config();
        for _ in 0..500 {
            cfg = s.mutate(&cfg, 0.5, &mut rng);
            s.validate(&cfg).unwrap();
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let a = s.random(&mut rng);
        let b = s.random(&mut rng);
        let child = s.crossover(&a, &b, &mut rng);
        s.validate(&child).unwrap();
        for (idx, v) in child.values().iter().enumerate() {
            assert!(*v == a.values()[idx] || *v == b.values()[idx]);
        }
    }

    #[test]
    fn log10_size_accumulates() {
        let s = space();
        // 5 * 100 * 65536 * 1000 ≈ 10^10.5
        let size = s.log10_size();
        assert!(size > 10.0 && size < 11.0, "got {size}");
    }

    #[test]
    fn validate_rejects_wrong_length_and_kind() {
        let s = space();
        let too_short = Configuration::from_values(vec![ParamValue::Choice(0)]);
        assert!(s.validate(&too_short).is_err());
        let mut wrong_kind = s.default_config();
        wrong_kind.set(0, ParamValue::Float(0.5));
        assert!(s.validate(&wrong_kind).is_err());
        let mut out_of_range = s.default_config();
        out_of_range.set(0, ParamValue::Choice(99));
        assert!(s.validate(&out_of_range).is_err());
    }

    #[test]
    fn builder_rejects_malformed() {
        assert!(ConfigSpace::builder().switch("s", 0).try_build().is_err());
        assert!(ConfigSpace::builder().int("i", 5, 2).try_build().is_err());
        assert!(ConfigSpace::builder()
            .log_int("l", 0, 10)
            .try_build()
            .is_err());
        assert!(ConfigSpace::builder()
            .float("f", 1.0, 0.0)
            .try_build()
            .is_err());
        assert!(ConfigSpace::builder()
            .int("x", 0, 1)
            .int("x", 0, 1)
            .try_build()
            .is_err());
    }

    #[test]
    fn require_reports_unknown() {
        let s = space();
        assert_eq!(s.require("alg").unwrap(), 0);
        assert!(matches!(s.require("nope"), Err(Error::UnknownParam { .. })));
    }

    #[test]
    fn log_int_sampling_spans_orders_of_magnitude() {
        let s = ConfigSpace::builder().log_int("c", 1, 1_000_000).build();
        let mut rng = StdRng::seed_from_u64(7);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..1000 {
            let v = s.random(&mut rng).int(0);
            if v <= 1000 {
                small += 1;
            }
            if v > 1000 {
                large += 1;
            }
        }
        // Log-uniform: roughly half the mass below sqrt(max) = 1000.
        assert!(small > 300, "small={small}");
        assert!(large > 300, "large={large}");
    }
}
