//! Input features: the `input_feature` keyword as a library.
//!
//! A benchmark declares `u` *properties* (domain-specific feature extractors
//! such as *sortedness* or *residual measure*), each available at `z`
//! *sampling levels* of increasing cost and fidelity — the paper's `level`
//! tunable inside a feature extractor. The full feature set therefore has
//! `M = u × z` entries; the learner's job includes choosing which of the
//! `(z+1)^u` property/level subsets to pay for at deployment time.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Declaration of one feature property with its number of sampling levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureDef {
    /// Human-readable property name (e.g. `"sortedness"`).
    pub property: String,
    /// Number of sampling levels `z` (level 0 = cheapest).
    pub levels: usize,
}

impl FeatureDef {
    /// Convenience constructor.
    pub fn new(property: impl Into<String>, levels: usize) -> Self {
        FeatureDef {
            property: property.into(),
            levels,
        }
    }
}

/// Identifies one concrete feature: a property at a sampling level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureId {
    /// Index of the property in the benchmark's `properties()` list.
    pub property: usize,
    /// Sampling level, `0..levels` (0 = cheapest).
    pub level: usize,
}

/// One extracted feature value together with its extraction cost, which the
/// classifier-selection objective charges at deployment time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureSample {
    /// The scalar feature value.
    pub value: f64,
    /// Abstract extraction cost (same units as execution cost).
    pub cost: f64,
}

impl FeatureSample {
    /// Convenience constructor.
    pub fn new(value: f64, cost: f64) -> Self {
        FeatureSample { value, cost }
    }
}

/// A subset of features: for each property, either a chosen sampling level or
/// absent. This is the unit the exhaustive-subset classifier enumerates —
/// `(z+1)^u` possibilities for `u` properties × `z` levels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSet {
    /// `chosen[p] = Some(level)` if property `p` participates.
    chosen: Vec<Option<usize>>,
}

impl FeatureSet {
    /// The empty subset over `u` properties (used by the max-a-priori
    /// classifier, which extracts nothing).
    pub fn none(props: usize) -> Self {
        FeatureSet {
            chosen: vec![None; props],
        }
    }

    /// Every property at the same level.
    pub fn all_at_level(props: usize, level: usize) -> Self {
        FeatureSet {
            chosen: vec![Some(level); props],
        }
    }

    /// Builds from explicit per-property choices.
    pub fn from_choices(chosen: Vec<Option<usize>>) -> Self {
        FeatureSet { chosen }
    }

    /// Number of properties covered (chosen or not).
    pub fn num_properties(&self) -> usize {
        self.chosen.len()
    }

    /// The chosen level for property `p`, if any.
    pub fn level_of(&self, p: usize) -> Option<usize> {
        self.chosen.get(p).copied().flatten()
    }

    /// Number of properties actually selected.
    pub fn count(&self) -> usize {
        self.chosen.iter().filter(|c| c.is_some()).count()
    }

    /// Whether no property is selected.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Iterates over `(property, level)` pairs of selected features.
    pub fn iter(&self) -> impl Iterator<Item = FeatureId> + '_ {
        self.chosen
            .iter()
            .enumerate()
            .filter_map(|(property, lvl)| lvl.map(|level| FeatureId { property, level }))
    }

    /// Enumerates all `(z+1)^u` subsets for `u` properties with `z` levels
    /// each (including the empty subset). `defs[p].levels` gives `z` for each
    /// property; properties may have different level counts.
    ///
    /// The paper's example: 4 properties × 3 levels ⇒ 4^4 = 256 subsets.
    pub fn enumerate_all(defs: &[FeatureDef]) -> Vec<FeatureSet> {
        let mut out = vec![FeatureSet::none(defs.len())];
        for (p, def) in defs.iter().enumerate() {
            let mut next = Vec::with_capacity(out.len() * (def.levels + 1));
            for partial in &out {
                next.push(partial.clone());
                for level in 0..def.levels {
                    let mut with = partial.clone();
                    with.chosen[p] = Some(level);
                    next.push(with);
                }
            }
            out = next;
        }
        out
    }
}

/// A dense feature vector over the full `M = Σ levels` feature space, with
/// per-entry extraction costs. Missing entries (features never extracted) are
/// `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    slots: Vec<Option<FeatureSample>>,
    offsets: Vec<usize>,
}

impl FeatureVector {
    /// Creates an empty vector shaped for `defs`.
    pub fn empty(defs: &[FeatureDef]) -> Self {
        let mut offsets = Vec::with_capacity(defs.len());
        let mut total = 0;
        for d in defs {
            offsets.push(total);
            total += d.levels;
        }
        FeatureVector {
            slots: vec![None; total],
            offsets,
        }
    }

    /// Reassembles a vector from its serialized parts — what the wire
    /// fast path hands over after scanning a canonical payload. Performs
    /// exactly the (absent) validation the derived `Deserialize` impl
    /// performs, so the two construction routes stay interchangeable.
    pub fn from_wire_parts(slots: Vec<Option<FeatureSample>>, offsets: Vec<usize>) -> Self {
        FeatureVector { slots, offsets }
    }

    /// Total number of feature slots `M`.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot(&self, id: FeatureId) -> Result<usize> {
        let base = *self.offsets.get(id.property).ok_or(Error::UnknownFeature {
            property: id.property,
            level: id.level,
        })?;
        let end = self
            .offsets
            .get(id.property + 1)
            .copied()
            .unwrap_or(self.slots.len());
        let idx = base + id.level;
        if idx >= end {
            return Err(Error::UnknownFeature {
                property: id.property,
                level: id.level,
            });
        }
        Ok(idx)
    }

    /// Stores a sample.
    ///
    /// # Errors
    /// Returns [`Error::UnknownFeature`] when the id is out of range.
    pub fn insert(&mut self, id: FeatureId, sample: FeatureSample) -> Result<()> {
        let idx = self.slot(id)?;
        self.slots[idx] = Some(sample);
        Ok(())
    }

    /// Fetches a sample if it has been extracted.
    pub fn get(&self, id: FeatureId) -> Option<FeatureSample> {
        self.slot(id).ok().and_then(|idx| self.slots[idx])
    }

    /// The values of the features in `set`, in `set.iter()` order.
    /// Missing features yield `None` entries.
    pub fn values_for(&self, set: &FeatureSet) -> Vec<Option<f64>> {
        set.iter().map(|id| self.get(id).map(|s| s.value)).collect()
    }

    /// Total extraction cost of the features in `set` (0 for missing ones).
    pub fn extraction_cost(&self, set: &FeatureSet) -> f64 {
        set.iter()
            .filter_map(|id| self.get(id).map(|s| s.cost))
            .sum()
    }

    /// Total extraction cost of every stored sample — what the one-level
    /// baseline pays, since it always extracts the full predefined set.
    pub fn total_cost(&self) -> f64 {
        self.slots.iter().flatten().map(|s| s.cost).sum()
    }

    /// Whether every slot holds an extracted sample. Fully-extracted
    /// vectors are what `extract_all` produces and what the serving wire
    /// protocol requires (partial vectors would make the drift probe
    /// meaningless and the subset classifiers panic).
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Whether this vector's property partition matches `defs` exactly —
    /// same property count and the same per-property level counts, not
    /// just the same total slot count. Consumers of untrusted vectors
    /// (the serving wire protocol) must check this before indexing by
    /// [`FeatureId`]: two different declarations can share a slot total
    /// while laying properties out at different offsets.
    pub fn matches_defs(&self, defs: &[FeatureDef]) -> bool {
        if self.offsets.len() != defs.len() {
            return false;
        }
        let mut total = 0;
        for (off, d) in self.offsets.iter().zip(defs) {
            if *off != total {
                return false;
            }
            total += d.levels;
        }
        self.slots.len() == total
    }

    /// All extracted values as a dense vector (missing slots as NaN); used by
    /// the one-level baseline, which clusters on the full predefined feature
    /// space.
    pub fn dense(&self) -> Vec<f64> {
        self.slots
            .iter()
            .map(|s| s.map(|x| x.value).unwrap_or(f64::NAN))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defs() -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("sortedness", 3),
            FeatureDef::new("duplication", 3),
            FeatureDef::new("deviation", 2),
        ]
    }

    #[test]
    fn enumerate_counts_match_formula() {
        // (3+1) * (3+1) * (2+1) = 48 subsets.
        let all = FeatureSet::enumerate_all(&defs());
        assert_eq!(all.len(), 48);
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 48);
        // Exactly one empty subset.
        assert_eq!(all.iter().filter(|s| s.is_empty()).count(), 1);
    }

    #[test]
    fn paper_example_256_subsets() {
        let four_props: Vec<_> = (0..4)
            .map(|i| FeatureDef::new(format!("p{i}"), 3))
            .collect();
        assert_eq!(FeatureSet::enumerate_all(&four_props).len(), 256);
    }

    #[test]
    fn feature_vector_round_trip() {
        let d = defs();
        let mut fv = FeatureVector::empty(&d);
        assert_eq!(fv.len(), 8);
        let id = FeatureId {
            property: 1,
            level: 2,
        };
        fv.insert(id, FeatureSample::new(0.7, 3.0)).unwrap();
        assert_eq!(fv.get(id).unwrap().value, 0.7);
        assert_eq!(
            fv.get(FeatureId {
                property: 0,
                level: 0
            }),
            None
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let d = defs();
        let mut fv = FeatureVector::empty(&d);
        let bad = FeatureId {
            property: 2,
            level: 2, // deviation has only 2 levels (0, 1)
        };
        assert!(fv.insert(bad, FeatureSample::new(0.0, 0.0)).is_err());
        assert!(fv.get(bad).is_none());
        let bad_prop = FeatureId {
            property: 9,
            level: 0,
        };
        assert!(fv.insert(bad_prop, FeatureSample::new(0.0, 0.0)).is_err());
    }

    #[test]
    fn extraction_cost_sums_selected() {
        let d = defs();
        let mut fv = FeatureVector::empty(&d);
        for (p, def) in d.iter().enumerate() {
            for level in 0..def.levels {
                fv.insert(
                    FeatureId { property: p, level },
                    FeatureSample::new(1.0, (level + 1) as f64),
                )
                .unwrap();
            }
        }
        let set = FeatureSet::from_choices(vec![Some(0), None, Some(1)]);
        assert_eq!(fv.extraction_cost(&set), 1.0 + 2.0);
        assert_eq!(set.count(), 2);
        assert_eq!(fv.values_for(&set), vec![Some(1.0), Some(1.0)]);
    }

    #[test]
    fn dense_has_nan_for_missing() {
        let d = defs();
        let fv = FeatureVector::empty(&d);
        assert!(fv.dense().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn set_accessors() {
        let s = FeatureSet::all_at_level(3, 1);
        assert_eq!(s.count(), 3);
        assert_eq!(s.level_of(2), Some(1));
        assert_eq!(s.level_of(9), None);
        let n = FeatureSet::none(3);
        assert!(n.is_empty());
        assert_eq!(n.num_properties(), 3);
    }
}
