//! # intune-core
//!
//! Core abstractions for *algorithmic autotuning with input sensitivity*,
//! reproducing the substrate that the PLDI 2015 paper "Autotuning Algorithmic
//! Choice for Input Sensitivity" builds on (the PetaBricks language runtime),
//! re-cast as an embedded Rust library.
//!
//! The pieces map onto PetaBricks language constructs as follows:
//!
//! | PetaBricks construct       | This crate                                   |
//! |----------------------------|----------------------------------------------|
//! | `either { .. } or { .. }`  | [`ParamKind::Switch`] genes in a [`ConfigSpace`] |
//! | recursive choice selectors | [`Selector`] / [`SelectorSpec`]              |
//! | `tunable`                  | [`ParamKind::Int`] / [`ParamKind::Float`] genes |
//! | `input_feature` keyword    | [`FeatureDef`] with `z` sampling levels      |
//! | variable accuracy metrics  | [`ExecutionReport::accuracy`] + [`AccuracySpec`] |
//!
//! A *benchmark* (a program with algorithmic choices) implements the
//! [`Benchmark`] trait: it exposes its configuration space, runs a given
//! [`Configuration`] on an input producing an [`ExecutionReport`] (abstract
//! deterministic cost plus optional accuracy), and extracts domain-specific
//! input features at one of several sampling levels with measured extraction
//! cost. Everything the learning layer (crate `intune-learning`) does is
//! generic over this trait.
//!
//! ## Example
//!
//! ```
//! use intune_core::{ConfigSpace, ParamKind};
//! use rand::SeedableRng;
//!
//! let space = ConfigSpace::builder()
//!     .switch("algorithm", 5)
//!     .int("cutoff", 1, 4096)
//!     .float("sampling_level", 0.0, 1.0)
//!     .build();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let cfg = space.random(&mut rng);
//! assert!(space.validate(&cfg).is_ok());
//! assert!(cfg.choice(0) < 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
pub mod codec;
mod config;
mod cost;
mod error;
mod features;
mod selector;
mod trace;

pub use benchmark::{AccuracySpec, Benchmark, BenchmarkExt};
pub use config::{
    ConfigSpace, ConfigSpaceBuilder, Configuration, ParamKind, ParamSpec, ParamValue,
};
pub use cost::{Cost, ExecutionReport, Stopwatch};
pub use error::{Error, Result};
pub use features::{FeatureDef, FeatureId, FeatureSample, FeatureSet, FeatureVector};
pub use selector::{Selector, SelectorSpec};
pub use trace::TraceContext;
