//! Deterministic cost accounting and execution reports.
//!
//! The paper evaluates on wall-clock time on a 32-core Xeon. This
//! reproduction uses a *deterministic abstract cost* (weighted operation
//! counts accumulated in a [`Cost`]) as the primary metric so that every
//! experiment is exactly reproducible, while still recording wall-clock time
//! for the Criterion benches. See DESIGN.md §4 for the substitution argument.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// An accumulator of abstract work units.
///
/// Benchmarks charge representative operations (comparisons, moves, flops,
/// stencil applications) with calibrated weights as they execute. The final
/// tally is the deterministic "execution time" the learning pipeline
/// optimizes.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Cost {
    units: f64,
}

impl Cost {
    /// A fresh, zeroed accumulator.
    pub fn new() -> Self {
        Cost::default()
    }

    /// Charges `n` units of work.
    #[inline]
    pub fn charge(&mut self, n: f64) {
        self.units += n;
    }

    /// Charges one unit of work.
    #[inline]
    pub fn tick(&mut self) {
        self.units += 1.0;
    }

    /// Total units charged so far.
    #[inline]
    pub fn total(&self) -> f64 {
        self.units
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: Cost) {
        self.units += other.units;
    }
}

/// Wall-clock stopwatch used alongside [`Cost`] when real timing is wanted.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// The outcome of running one configuration on one input.
///
/// `cost` is the deterministic abstract execution time. `accuracy` is the
/// benchmark's variable-accuracy metric (`None` for fixed-accuracy programs
/// such as sorting). `time_ns` optionally carries wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Deterministic abstract execution cost (work units).
    pub cost: f64,
    /// Variable-accuracy metric value, if the benchmark defines one.
    pub accuracy: Option<f64>,
    /// Optional wall-clock nanoseconds.
    pub time_ns: Option<u64>,
}

impl ExecutionReport {
    /// Report for a fixed-accuracy program (e.g. sort): only a cost.
    pub fn of_cost(cost: f64) -> Self {
        ExecutionReport {
            cost,
            accuracy: None,
            time_ns: None,
        }
    }

    /// Report for a variable-accuracy program.
    pub fn with_accuracy(cost: f64, accuracy: f64) -> Self {
        ExecutionReport {
            cost,
            accuracy: Some(accuracy),
            time_ns: None,
        }
    }

    /// Attaches wall-clock time, returning the updated report.
    pub fn timed(mut self, time_ns: u64) -> Self {
        self.time_ns = Some(time_ns);
        self
    }

    /// Whether the report meets an accuracy threshold. Fixed-accuracy reports
    /// always meet any threshold.
    pub fn meets(&self, threshold: Option<f64>) -> bool {
        match (threshold, self.accuracy) {
            (None, _) => true,
            (Some(t), Some(a)) => a >= t,
            // A variable-accuracy threshold against a report that carries no
            // accuracy means the run failed to produce a measurable result.
            (Some(_), None) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_accumulates() {
        let mut c = Cost::new();
        c.tick();
        c.charge(2.5);
        let mut d = Cost::new();
        d.charge(1.5);
        c.merge(d);
        assert_eq!(c.total(), 5.0);
    }

    #[test]
    fn report_constructors() {
        let r = ExecutionReport::of_cost(10.0);
        assert_eq!(r.cost, 10.0);
        assert_eq!(r.accuracy, None);
        let r = ExecutionReport::with_accuracy(5.0, 0.9).timed(123);
        assert_eq!(r.accuracy, Some(0.9));
        assert_eq!(r.time_ns, Some(123));
    }

    #[test]
    fn meets_threshold_logic() {
        assert!(ExecutionReport::of_cost(1.0).meets(None));
        assert!(!ExecutionReport::of_cost(1.0).meets(Some(0.9)));
        assert!(ExecutionReport::with_accuracy(1.0, 0.95).meets(Some(0.9)));
        assert!(!ExecutionReport::with_accuracy(1.0, 0.85).meets(Some(0.9)));
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
