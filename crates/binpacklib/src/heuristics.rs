//! The 13 bin-packing approximation heuristics.
//!
//! Online rules differ in which open bin receives the next item:
//!
//! * **NextFit** — only the most recently opened bin is considered.
//! * **FirstFit** — the lowest-indexed bin with room.
//! * **LastFit** — the highest-indexed bin with room.
//! * **BestFit** — the fullest bin with room (tightest fit).
//! * **WorstFit** — the emptiest bin with room.
//! * **AlmostWorstFit** — the *second*-emptiest bin with room (falls back to
//!   the emptiest when only one fits).
//!
//! Each has a **Decreasing** variant that first sorts items descending
//! (off-line), and **ModifiedFirstFitDecreasing** implements the
//! Johnson–Garey refinement of FFD. Costs charge one unit per bin probed
//! plus `n log n` for presorting, so speed and packing quality trade off.

/// Unit bin capacity.
pub const CAPACITY: f64 = 1.0;
/// Numeric slack when testing whether an item fits.
const EPS: f64 = 1e-9;

/// The result of packing: per-bin loads, item→bin assignment, and cost.
#[derive(Debug, Clone)]
pub struct Packing {
    /// Load of each bin (sum of items assigned to it).
    pub bins: Vec<f64>,
    /// `assignment[i]` = bin index of item `i`.
    pub assignment: Vec<usize>,
    /// Deterministic abstract cost of producing the packing.
    pub cost: f64,
}

impl Packing {
    /// The paper's accuracy metric: average occupied fraction over bins.
    pub fn occupancy(&self) -> f64 {
        if self.bins.is_empty() {
            return 1.0;
        }
        self.bins.iter().sum::<f64>() / (CAPACITY * self.bins.len() as f64)
    }

    /// Validates structural invariants (every item assigned, no bin over
    /// capacity); used by tests and property tests.
    ///
    /// # Panics
    /// Panics if an invariant is violated.
    pub fn assert_valid(&self, num_items: usize) {
        assert_eq!(self.assignment.len(), num_items, "every item assigned");
        for (i, &b) in self.assignment.iter().enumerate() {
            assert!(b < self.bins.len(), "item {i} assigned to missing bin {b}");
        }
        for (b, load) in self.bins.iter().enumerate() {
            assert!(*load <= CAPACITY + 1e-6, "bin {b} over capacity: {load}");
        }
    }
}

/// The 13 heuristics, in the order the paper lists them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// Almost-worst-fit (second-emptiest bin).
    AlmostWorstFit,
    /// Almost-worst-fit on descending items.
    AlmostWorstFitDecreasing,
    /// Best-fit (tightest bin).
    BestFit,
    /// Best-fit on descending items.
    BestFitDecreasing,
    /// First-fit (lowest-indexed bin).
    FirstFit,
    /// First-fit on descending items.
    FirstFitDecreasing,
    /// Last-fit (highest-indexed bin).
    LastFit,
    /// Last-fit on descending items.
    LastFitDecreasing,
    /// Johnson–Garey modified first-fit-decreasing.
    ModifiedFirstFitDecreasing,
    /// Next-fit (only the open bin).
    NextFit,
    /// Next-fit on descending items.
    NextFitDecreasing,
    /// Worst-fit (emptiest bin).
    WorstFit,
    /// Worst-fit on descending items.
    WorstFitDecreasing,
}

impl Heuristic {
    /// All heuristics in paper order (selector choice indices).
    pub const ALL: [Heuristic; 13] = [
        Heuristic::AlmostWorstFit,
        Heuristic::AlmostWorstFitDecreasing,
        Heuristic::BestFit,
        Heuristic::BestFitDecreasing,
        Heuristic::FirstFit,
        Heuristic::FirstFitDecreasing,
        Heuristic::LastFit,
        Heuristic::LastFitDecreasing,
        Heuristic::ModifiedFirstFitDecreasing,
        Heuristic::NextFit,
        Heuristic::NextFitDecreasing,
        Heuristic::WorstFit,
        Heuristic::WorstFitDecreasing,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::AlmostWorstFit => "AWF",
            Heuristic::AlmostWorstFitDecreasing => "AWFD",
            Heuristic::BestFit => "BF",
            Heuristic::BestFitDecreasing => "BFD",
            Heuristic::FirstFit => "FF",
            Heuristic::FirstFitDecreasing => "FFD",
            Heuristic::LastFit => "LF",
            Heuristic::LastFitDecreasing => "LFD",
            Heuristic::ModifiedFirstFitDecreasing => "MFFD",
            Heuristic::NextFit => "NF",
            Heuristic::NextFitDecreasing => "NFD",
            Heuristic::WorstFit => "WF",
            Heuristic::WorstFitDecreasing => "WFD",
        }
    }

    fn is_decreasing(self) -> bool {
        matches!(
            self,
            Heuristic::AlmostWorstFitDecreasing
                | Heuristic::BestFitDecreasing
                | Heuristic::FirstFitDecreasing
                | Heuristic::LastFitDecreasing
                | Heuristic::ModifiedFirstFitDecreasing
                | Heuristic::NextFitDecreasing
                | Heuristic::WorstFitDecreasing
        )
    }

    /// Packs `items` (each in `(0, CAPACITY]`) into unit bins.
    ///
    /// # Panics
    /// Panics if any item is non-positive or exceeds the capacity.
    pub fn pack(self, items: &[f64]) -> Packing {
        for (i, &x) in items.iter().enumerate() {
            assert!(
                x > 0.0 && x <= CAPACITY + EPS,
                "item {i} = {x} outside (0, {CAPACITY}]"
            );
        }
        let mut cost = 0.0;
        // Order of placement: original or descending.
        let order: Vec<usize> = if self.is_decreasing() {
            let mut idx: Vec<usize> = (0..items.len()).collect();
            idx.sort_by(|&a, &b| {
                items[b]
                    .partial_cmp(&items[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            cost += (items.len().max(2) as f64) * (items.len().max(2) as f64).log2();
            idx
        } else {
            (0..items.len()).collect()
        };

        if self == Heuristic::ModifiedFirstFitDecreasing {
            return mffd(items, order, cost);
        }

        let mut bins: Vec<f64> = Vec::new();
        let mut assignment = vec![usize::MAX; items.len()];
        for &i in &order {
            let size = items[i];
            let chosen = match self {
                Heuristic::NextFit | Heuristic::NextFitDecreasing => {
                    cost += 1.0;
                    bins.last()
                        .filter(|&&load| load + size <= CAPACITY + EPS)
                        .map(|_| bins.len() - 1)
                }
                Heuristic::FirstFit | Heuristic::FirstFitDecreasing => {
                    let mut found = None;
                    for (b, load) in bins.iter().enumerate() {
                        cost += 1.0;
                        if load + size <= CAPACITY + EPS {
                            found = Some(b);
                            break;
                        }
                    }
                    found
                }
                Heuristic::LastFit | Heuristic::LastFitDecreasing => {
                    let mut found = None;
                    for (b, load) in bins.iter().enumerate().rev() {
                        cost += 1.0;
                        if load + size <= CAPACITY + EPS {
                            found = Some(b);
                            break;
                        }
                    }
                    found
                }
                Heuristic::BestFit | Heuristic::BestFitDecreasing => {
                    let mut best: Option<(usize, f64)> = None;
                    for (b, &load) in bins.iter().enumerate() {
                        cost += 1.0;
                        if load + size <= CAPACITY + EPS && best.is_none_or(|(_, l)| load > l) {
                            best = Some((b, load));
                        }
                    }
                    best.map(|(b, _)| b)
                }
                Heuristic::WorstFit | Heuristic::WorstFitDecreasing => {
                    let mut worst: Option<(usize, f64)> = None;
                    for (b, &load) in bins.iter().enumerate() {
                        cost += 1.0;
                        if load + size <= CAPACITY + EPS && worst.is_none_or(|(_, l)| load < l) {
                            worst = Some((b, load));
                        }
                    }
                    worst.map(|(b, _)| b)
                }
                Heuristic::AlmostWorstFit | Heuristic::AlmostWorstFitDecreasing => {
                    // Track the two emptiest fitting bins; take the second.
                    let mut first: Option<(usize, f64)> = None;
                    let mut second: Option<(usize, f64)> = None;
                    for (b, &load) in bins.iter().enumerate() {
                        cost += 1.0;
                        if load + size <= CAPACITY + EPS {
                            if first.is_none_or(|(_, l)| load < l) {
                                second = first;
                                first = Some((b, load));
                            } else if second.is_none_or(|(_, l)| load < l) {
                                second = Some((b, load));
                            }
                        }
                    }
                    second.or(first).map(|(b, _)| b)
                }
                Heuristic::ModifiedFirstFitDecreasing => unreachable!("handled above"),
            };
            let b = match chosen {
                Some(b) => b,
                None => {
                    bins.push(0.0);
                    cost += 1.0;
                    bins.len() - 1
                }
            };
            bins[b] += size;
            assignment[i] = b;
        }

        Packing {
            bins,
            assignment,
            cost,
        }
    }
}

/// Johnson–Garey Modified First-Fit-Decreasing. Items are classed by size —
/// A ∈ (1/2, 1], B ∈ (1/3, 1/2], D = rest. Each A item opens a bin; a
/// dedicated pass tries to complement A bins (smallest A first) with pairs
/// of small items before the FFD cleanup pass. Behaves like FFD on most
/// inputs but beats it on the adversarial distributions MFFD was designed
/// for — giving the autotuner a genuinely distinct choice.
fn mffd(items: &[f64], order: Vec<usize>, mut cost: f64) -> Packing {
    let mut bins: Vec<f64> = Vec::new();
    let mut assignment = vec![usize::MAX; items.len()];

    // Phase 1: A items (> 1/2) each open their own bin, in decreasing order.
    let mut rest: Vec<usize> = Vec::new();
    for &i in &order {
        cost += 1.0;
        if items[i] > CAPACITY / 2.0 {
            bins.push(items[i]);
            assignment[i] = bins.len() - 1;
        } else {
            rest.push(i); // still in decreasing order
        }
    }

    // Phase 2: walk A bins from the last (smallest A item, largest gap).
    // Try to place the *smallest* remaining item plus the *largest* other
    // remaining item that fits alongside it.
    let a_bins = bins.len();
    let mut placed = vec![false; rest.len()];
    for b in (0..a_bins).rev() {
        let gap = CAPACITY - bins[b];
        // Smallest unplaced item (rest is descending, so scan from the back).
        let smallest = match (0..rest.len()).rev().find(|&r| !placed[r]) {
            Some(r) => r,
            None => break,
        };
        cost += 1.0;
        if items[rest[smallest]] > gap + EPS {
            continue; // even the smallest item does not fit
        }
        // Largest other item such that the pair fits.
        let pair = (0..rest.len()).find(|&r| {
            cost += 1.0;
            !placed[r] && r != smallest && items[rest[r]] + items[rest[smallest]] <= gap + EPS
        });
        if let Some(r) = pair {
            bins[b] += items[rest[r]] + items[rest[smallest]];
            assignment[rest[r]] = b;
            assignment[rest[smallest]] = b;
            placed[r] = true;
            placed[smallest] = true;
        }
    }

    // Phase 3: first-fit the remaining items (still decreasing).
    for r in 0..rest.len() {
        if placed[r] {
            continue;
        }
        let i = rest[r];
        let size = items[i];
        let mut found = None;
        for (b, load) in bins.iter().enumerate() {
            cost += 1.0;
            if load + size <= CAPACITY + EPS {
                found = Some(b);
                break;
            }
        }
        let b = found.unwrap_or_else(|| {
            bins.push(0.0);
            cost += 1.0;
            bins.len() - 1
        });
        bins[b] += size;
        assignment[i] = b;
    }

    Packing {
        bins,
        assignment,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items_mixed() -> Vec<f64> {
        (0..200)
            .map(|i| 0.05 + ((i * 61) % 90) as f64 / 100.0)
            .collect()
    }

    #[test]
    fn all_heuristics_produce_valid_packings() {
        let items = items_mixed();
        for h in Heuristic::ALL {
            let p = h.pack(&items);
            p.assert_valid(items.len());
            // Lower bound: total mass.
            let lower = items.iter().sum::<f64>().ceil() as usize;
            assert!(
                p.bins.len() >= lower,
                "{}: {} bins below mass bound {lower}",
                h.name(),
                p.bins.len()
            );
        }
    }

    #[test]
    fn next_fit_cheapest_best_fit_tightest() {
        let items = items_mixed();
        let nf = Heuristic::NextFit.pack(&items);
        let bf = Heuristic::BestFit.pack(&items);
        assert!(nf.cost < bf.cost, "NF {} vs BF {}", nf.cost, bf.cost);
        assert!(
            bf.bins.len() <= nf.bins.len(),
            "BF bins {} vs NF bins {}",
            bf.bins.len(),
            nf.bins.len()
        );
    }

    #[test]
    fn decreasing_variants_improve_occupancy_on_adversarial_input() {
        // Classic FFD-friendly distribution: many just-over-half items mixed
        // with small fillers arriving in bad (ascending) order.
        let mut items: Vec<f64> = Vec::new();
        for i in 0..50 {
            items.push(0.26 + (i % 5) as f64 * 0.002);
            items.push(0.52 + (i % 7) as f64 * 0.003);
        }
        items.sort_by(|a, b| a.partial_cmp(b).unwrap()); // worst case order for FF
        let ff = Heuristic::FirstFit.pack(&items);
        let ffd = Heuristic::FirstFitDecreasing.pack(&items);
        assert!(
            ffd.occupancy() >= ff.occupancy(),
            "FFD {} vs FF {}",
            ffd.occupancy(),
            ff.occupancy()
        );
    }

    #[test]
    fn ffd_meets_classic_guarantee() {
        // FFD uses at most 11/9 OPT + 1 bins; check against the mass bound.
        let items = items_mixed();
        let p = Heuristic::FirstFitDecreasing.pack(&items);
        let opt_lower = items.iter().sum::<f64>(); // OPT >= total mass
        assert!(
            (p.bins.len() as f64) <= 11.0 / 9.0 * opt_lower.ceil() + 1.0,
            "FFD used {} bins vs bound {}",
            p.bins.len(),
            11.0 / 9.0 * opt_lower.ceil() + 1.0
        );
    }

    #[test]
    fn mffd_valid_and_competitive_with_ffd() {
        // MFFD's target distribution: A items slightly over 1/2, D items
        // slightly over 1/4 — FFD wastes the A-bin gaps.
        let mut items = Vec::new();
        for i in 0..40 {
            items.push(0.51 + (i % 4) as f64 * 0.01);
            items.push(0.26 + (i % 3) as f64 * 0.01);
            items.push(0.22 - (i % 3) as f64 * 0.01);
        }
        let mffd = Heuristic::ModifiedFirstFitDecreasing.pack(&items);
        let ffd = Heuristic::FirstFitDecreasing.pack(&items);
        mffd.assert_valid(items.len());
        assert!(
            mffd.bins.len() <= ffd.bins.len(),
            "MFFD {} bins vs FFD {}",
            mffd.bins.len(),
            ffd.bins.len()
        );
    }

    #[test]
    fn awf_differs_from_wf() {
        // Three open bins with distinct loads; AWF picks the second-emptiest.
        let items = vec![0.5, 0.6, 0.7, 0.2];
        let wf = Heuristic::WorstFit.pack(&items);
        let awf = Heuristic::AlmostWorstFit.pack(&items);
        // WF puts 0.2 with 0.5 (emptiest), AWF with 0.6 (second-emptiest).
        assert_eq!(wf.assignment[3], wf.assignment[0]);
        assert_eq!(awf.assignment[3], awf.assignment[1]);
    }

    #[test]
    fn single_oversize_item_rejected() {
        let result = std::panic::catch_unwind(|| Heuristic::FirstFit.pack(&[1.5]));
        assert!(result.is_err());
    }

    #[test]
    fn empty_input_gives_empty_packing() {
        for h in Heuristic::ALL {
            let p = h.pack(&[]);
            assert!(p.bins.is_empty());
            assert_eq!(p.occupancy(), 1.0);
        }
    }

    #[test]
    fn perfect_fit_reaches_full_occupancy() {
        let items = vec![0.5; 10];
        let p = Heuristic::FirstFitDecreasing.pack(&items);
        assert_eq!(p.bins.len(), 5);
        assert!((p.occupancy() - 1.0).abs() < 1e-9);
    }
}
