//! Input feature extractors for the Bin Packing benchmark: average item
//! size, deviation, value range and sortedness, each at three sampling
//! levels (the paper's four `input_feature` extractors).

use intune_core::FeatureSample;

/// Property indices (order matches `BinPacking::properties`).
pub mod prop {
    /// Mean item size.
    pub const AVERAGE: usize = 0;
    /// Standard deviation of item sizes.
    pub const DEVIATION: usize = 1;
    /// max − min item size.
    pub const RANGE: usize = 2;
    /// Fraction of correctly ordered adjacent sampled pairs.
    pub const SORTEDNESS: usize = 3;
}

fn sample(input: &[f64], level: usize) -> (Vec<f64>, f64) {
    let n = input.len();
    if n == 0 {
        return (vec![0.0], 1.0);
    }
    let m = match level {
        0 => n.min(32),
        1 => n.min(256),
        _ => n,
    }
    .max(1);
    let out: Vec<f64> = (0..m).map(|i| input[i * n / m]).collect();
    (out, m as f64)
}

/// Extracts property `property` at sampling `level`.
///
/// # Panics
/// Panics if `property` is out of range (Bin Packing declares 4).
pub fn extract(property: usize, level: usize, input: &[f64]) -> FeatureSample {
    let (s, cost) = sample(input, level);
    extract_sampled(property, &s, cost)
}

/// Extracts all four properties at one sampling level, sampling the items
/// **once** instead of once per property — the fused pass behind
/// `BinPacking::extract_all` on the serving hot path. Bit-identical to
/// calling [`extract`] per property (both share `extract_sampled`).
pub fn extract_level(level: usize, input: &[f64]) -> [FeatureSample; 4] {
    let (s, cost) = sample(input, level);
    [
        extract_sampled(prop::AVERAGE, &s, cost),
        extract_sampled(prop::DEVIATION, &s, cost),
        extract_sampled(prop::RANGE, &s, cost),
        extract_sampled(prop::SORTEDNESS, &s, cost),
    ]
}

fn extract_sampled(property: usize, s: &[f64], cost: f64) -> FeatureSample {
    let m = s.len() as f64;
    match property {
        prop::AVERAGE => FeatureSample::new(s.iter().sum::<f64>() / m, cost),
        prop::DEVIATION => {
            let mean = s.iter().sum::<f64>() / m;
            let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m;
            FeatureSample::new(var.sqrt(), 2.0 * cost)
        }
        prop::RANGE => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in s {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let value = if hi >= lo { hi - lo } else { 0.0 };
            FeatureSample::new(value, cost)
        }
        prop::SORTEDNESS => {
            if s.len() < 2 {
                return FeatureSample::new(1.0, cost);
            }
            let ordered = s.windows(2).filter(|w| w[0] <= w[1]).count();
            FeatureSample::new(ordered as f64 / (s.len() - 1) as f64, cost)
        }
        other => panic!("binpacking has 4 properties, got {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_and_range() {
        let items = vec![0.2, 0.4, 0.6, 0.8];
        assert!((extract(prop::AVERAGE, 2, &items).value - 0.5).abs() < 1e-12);
        assert!((extract(prop::RANGE, 2, &items).value - 0.6).abs() < 1e-12);
    }

    #[test]
    fn deviation_zero_for_constant() {
        let items = vec![0.5; 100];
        assert_eq!(extract(prop::DEVIATION, 2, &items).value, 0.0);
    }

    #[test]
    fn sortedness_extremes() {
        let asc: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
        let desc: Vec<f64> = (1..100).rev().map(|i| i as f64 / 100.0).collect();
        assert_eq!(extract(prop::SORTEDNESS, 2, &asc).value, 1.0);
        assert_eq!(extract(prop::SORTEDNESS, 2, &desc).value, 0.0);
    }

    #[test]
    fn level_controls_cost() {
        let items: Vec<f64> = (0..1000).map(|i| ((i % 97) as f64 + 1.0) / 98.0).collect();
        for p in 0..4 {
            assert!(extract(p, 0, &items).cost < extract(p, 2, &items).cost);
        }
    }

    #[test]
    fn fused_level_extraction_is_bit_identical() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.4],
            (0..900).map(|i| ((i * 13) % 89) as f64 / 90.0).collect(),
        ];
        for items in &cases {
            for level in 0..3 {
                let fused = extract_level(level, items);
                for (p, sample) in fused.iter().enumerate() {
                    let single = extract(p, level, items);
                    assert!(
                        sample.value.to_bits() == single.value.to_bits()
                            && sample.cost.to_bits() == single.cost.to_bits(),
                        "p{p} l{level} n{}: fused {sample:?} != single {single:?}",
                        items.len()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_input_is_safe() {
        for p in 0..4 {
            let s = extract(p, 1, &[]);
            assert!(s.value.is_finite());
        }
    }
}
