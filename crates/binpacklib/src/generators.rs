//! Input generators for the Bin Packing benchmark, spanning the item-size
//! distributions that separate the 13 heuristics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Families of bin-packing instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackInputClass {
    /// Uniform item sizes in (0, 0.7] — packs tightly under good heuristics.
    Uniform,
    /// Small-to-mid band (0.05, 0.35): 3–10 items per bin.
    MidBand,
    /// Triplets engineered to sum to ~1.0 (perfect packings exist).
    Triplets,
    /// Many small items (0, 0.15).
    Small,
    /// Complementary pairs: a just-over-half item plus a filler that
    /// nearly completes the bin — tight heuristics reach ~0.98 occupancy,
    /// NextFit-style ones waste half the space (MFFD's home turf).
    Bimodal,
    /// Ascending sizes (worst order for FirstFit).
    SortedAscending,
    /// Descending sizes (FFD-like order for free).
    SortedDescending,
    /// Discrete sizes from {1/2, 1/3, 1/4, 1/5}.
    Discrete,
}

impl PackInputClass {
    /// All generator classes.
    pub fn all() -> &'static [PackInputClass] {
        use PackInputClass::*;
        &[
            Uniform,
            MidBand,
            Triplets,
            Small,
            Bimodal,
            SortedAscending,
            SortedDescending,
            Discrete,
        ]
    }

    /// Generates an instance of `n` items, each in `(0, 1]`.
    pub fn generate(self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        use PackInputClass::*;
        let mut v: Vec<f64> = match self {
            Uniform => (0..n).map(|_| rng.gen_range(0.01..0.5)).collect(),
            MidBand => (0..n).map(|_| rng.gen_range(0.05..0.35)).collect(),
            Triplets => {
                let mut v = Vec::with_capacity(n);
                while v.len() + 3 <= n {
                    let a: f64 = rng.gen_range(0.2..0.5);
                    let b: f64 = rng.gen_range(0.1..(1.0 - a - 0.05).max(0.11));
                    let c: f64 = (1.0 - a - b).clamp(0.01, 1.0);
                    v.extend([a, b, c]);
                }
                while v.len() < n {
                    v.push(rng.gen_range(0.01..0.4));
                }
                v
            }
            Small => (0..n).map(|_| rng.gen_range(0.005..0.15)).collect(),
            Bimodal => {
                let mut v = Vec::with_capacity(n);
                while v.len() + 2 <= n {
                    let a: f64 = rng.gen_range(0.51..0.6);
                    let filler: f64 = (1.0 - a - rng.gen_range(0.005..0.03)).max(0.05);
                    v.push(a);
                    v.push(filler);
                }
                while v.len() < n {
                    v.push(rng.gen_range(0.05..0.3));
                }
                v
            }
            SortedAscending | SortedDescending => {
                let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.5)).collect();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                if self == SortedDescending {
                    v.reverse();
                }
                v
            }
            Discrete => {
                let sizes = [0.5, 1.0 / 3.0, 0.25, 0.2];
                (0..n)
                    .map(|_| sizes[rng.gen_range(0..sizes.len())])
                    .collect()
            }
        };
        // Shuffle non-sorted classes so arrival order is not an artifact.
        if !matches!(self, SortedAscending | SortedDescending) {
            use rand::seq::SliceRandom;
            v.shuffle(rng);
        }
        v
    }
}

/// A corpus of bin-packing instances.
#[derive(Debug, Clone)]
pub struct PackCorpus {
    /// The instances.
    pub inputs: Vec<Vec<f64>>,
    /// Generator class per instance (diagnostics only).
    pub classes: Vec<PackInputClass>,
}

impl PackCorpus {
    /// Builds `count` instances cycling through all classes, sizes uniform
    /// in `[min_n, max_n]`.
    pub fn synthetic(count: usize, min_n: usize, max_n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes = PackInputClass::all();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = classes[i % classes.len()];
            let n = rng.gen_range(min_n..=max_n.max(min_n));
            inputs.push(class.generate(n, &mut rng));
            labels.push(class);
        }
        PackCorpus {
            inputs,
            classes: labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Heuristic;

    #[test]
    fn all_classes_generate_valid_items() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in PackInputClass::all() {
            let items = class.generate(200, &mut rng);
            assert_eq!(items.len(), 200, "{class:?}");
            assert!(
                items.iter().all(|&x| x > 0.0 && x <= 1.0),
                "{class:?} produced out-of-range items"
            );
        }
    }

    #[test]
    fn triplets_admit_near_perfect_packing() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = PackInputClass::Triplets.generate(300, &mut rng);
        let p = Heuristic::BestFitDecreasing.pack(&items);
        assert!(p.occupancy() > 0.9, "occupancy {}", p.occupancy());
    }

    #[test]
    fn classes_differentiate_heuristics() {
        // On the bimodal class, FFD beats NextFit by a wide occupancy margin.
        let mut rng = StdRng::seed_from_u64(3);
        let items = PackInputClass::Bimodal.generate(400, &mut rng);
        let nf = Heuristic::NextFit.pack(&items);
        let ffd = Heuristic::FirstFitDecreasing.pack(&items);
        assert!(
            ffd.occupancy() > nf.occupancy() + 0.05,
            "FFD {} vs NF {}",
            ffd.occupancy(),
            nf.occupancy()
        );
    }

    #[test]
    fn best_heuristic_reaches_accuracy_threshold_on_most_classes() {
        // The paper's accuracy threshold is 0.95 occupancy and its corpora
        // are dominated by feasible instances (one-level satisfaction is
        // 97.8%): the best of the 13 heuristics must clear the bar on the
        // bulk of generated inputs.
        let mut rng = StdRng::seed_from_u64(11);
        let mut feasible = 0;
        let mut total = 0;
        for class in PackInputClass::all() {
            for _ in 0..4 {
                let items = class.generate(300, &mut rng);
                let best = Heuristic::ALL
                    .iter()
                    .map(|h| h.pack(&items).occupancy())
                    .fold(0.0, f64::max);
                total += 1;
                if best >= 0.95 {
                    feasible += 1;
                }
            }
        }
        assert!(
            feasible * 10 >= total * 8,
            "only {feasible}/{total} instances feasible under the best heuristic"
        );
    }

    #[test]
    fn corpus_deterministic() {
        let a = PackCorpus::synthetic(20, 50, 200, 9);
        let b = PackCorpus::synthetic(20, 50, 200, 9);
        assert_eq!(a.inputs, b.inputs);
    }
}
