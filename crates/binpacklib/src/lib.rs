//! # intune-binpacklib
//!
//! The paper's **Bin Packing** benchmark: unit-capacity bins, items in
//! `(0, 1]`, and a choice among the 13 classic approximation heuristics the
//! paper lists — AlmostWorstFit, AlmostWorstFitDecreasing, BestFit,
//! BestFitDecreasing, FirstFit, FirstFitDecreasing, LastFit,
//! LastFitDecreasing, ModifiedFirstFitDecreasing, NextFit,
//! NextFitDecreasing, WorstFit, WorstFitDecreasing.
//!
//! The accuracy metric is the paper's: *the average of the occupied
//! fractions of all bins* (total item mass / bins used), with threshold
//! 0.95. Cheap heuristics (NextFit) place items fast but waste bins; tight
//! heuristics (BestFitDecreasing) pay sorting plus per-item bin scans. That
//! cost/accuracy tension across item-size distributions is what makes the
//! benchmark input-sensitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
pub mod generators;
pub mod heuristics;

pub use generators::{PackCorpus, PackInputClass};
pub use heuristics::{Heuristic, Packing};

use intune_core::{
    AccuracySpec, Benchmark, ConfigSpace, Configuration, FeatureDef, FeatureId, FeatureSample,
    FeatureVector, Selector, SelectorSpec,
};

/// The Bin Packing benchmark. The configuration space is a one-level
/// size-keyed selector over the 13 heuristics: different heuristics may be
/// chosen for small vs. large instances within a single configuration.
#[derive(Debug, Clone)]
pub struct BinPacking {
    max_n: usize,
}

impl BinPacking {
    /// Creates the benchmark for instances up to `max_n` items.
    pub fn new(max_n: usize) -> Self {
        BinPacking {
            max_n: max_n.max(16),
        }
    }

    fn selector_spec(&self) -> SelectorSpec {
        SelectorSpec::new("pack", 2, self.max_n as i64, Heuristic::ALL.len())
    }

    /// Runs the configured heuristic(s) and returns the full packing.
    ///
    /// # Panics
    /// Panics if `cfg` does not match this benchmark's space.
    pub fn pack(&self, cfg: &Configuration, items: &[f64]) -> Packing {
        let space = self.space();
        let selector: Selector = self
            .selector_spec()
            .decode(&space, cfg)
            .expect("selector genes present");
        let heuristic = Heuristic::ALL[selector.decide(items.len())];
        heuristic.pack(items)
    }
}

impl Benchmark for BinPacking {
    type Input = Vec<f64>;

    fn name(&self) -> &str {
        "binpacking"
    }

    fn space(&self) -> ConfigSpace {
        self.selector_spec().add_to(ConfigSpace::builder()).build()
    }

    fn run(&self, cfg: &Configuration, input: &Self::Input) -> intune_core::ExecutionReport {
        let packing = self.pack(cfg, input);
        intune_core::ExecutionReport::with_accuracy(packing.cost, packing.occupancy())
    }

    fn accuracy(&self) -> Option<AccuracySpec> {
        Some(AccuracySpec::new(0.95))
    }

    fn properties(&self) -> Vec<FeatureDef> {
        vec![
            FeatureDef::new("average", 3),
            FeatureDef::new("deviation", 3),
            FeatureDef::new("range", 3),
            FeatureDef::new("sortedness", 3),
        ]
    }

    fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
        features::extract(property, level, input)
    }

    // Fused full extraction: one item sample per level shared by all
    // properties (bit-identical to the default per-property path; see
    // `features::extract_level`). Drift probes on the serving hot path
    // call this per probed request.
    fn extract_all(&self, input: &Self::Input) -> FeatureVector {
        let defs = self.properties();
        let mut fv = FeatureVector::empty(&defs);
        for level in 0..3 {
            for (p, sample) in features::extract_level(level, input)
                .into_iter()
                .enumerate()
            {
                fv.insert(FeatureId { property: p, level }, sample)
                    .expect("in-range feature id");
            }
        }
        fv
    }

    // Packing instances are plain float arrays: they journal losslessly,
    // so this case can feed the continuous-learning retraining corpus.
    fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
        Some(serde::Serialize::to_value(input))
    }

    fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
        serde_json::from_value(payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_random_config_packs_validly() {
        let b = BinPacking::new(2048);
        let space = b.space();
        let mut rng = StdRng::seed_from_u64(5);
        let items: Vec<f64> = (0..300)
            .map(|i| 0.05 + ((i * 37) % 90) as f64 / 100.0)
            .collect();
        let total: f64 = items.iter().sum();
        for _ in 0..30 {
            let cfg = space.random(&mut rng);
            let packing = b.pack(&cfg, &items);
            packing.assert_valid(items.len());
            // occupancy = total mass / bins.
            assert!((packing.occupancy() - total / packing.bins.len() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn report_carries_accuracy() {
        let b = BinPacking::new(2048);
        let cfg = b.space().default_config();
        let items = vec![0.5, 0.5, 0.3, 0.7];
        let report = b.run(&cfg, &items);
        let acc = report.accuracy.expect("binpacking is variable accuracy");
        assert!(acc > 0.0 && acc <= 1.0);
        assert!(report.cost > 0.0);
    }

    #[test]
    fn features_extractable() {
        let b = BinPacking::new(2048);
        let items: Vec<f64> = (0..200).map(|i| ((i % 10) as f64 + 1.0) / 11.0).collect();
        let fv = b.extract_all(&items);
        assert_eq!(fv.len(), 12);
        assert!(fv.dense().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_threshold_is_papers() {
        assert_eq!(BinPacking::new(64).accuracy().unwrap().threshold, 0.95);
    }
}
