//! Property-based tests for the bin-packing benchmark.

use intune_binpacklib::{BinPacking, Heuristic, PackInputClass};
use intune_core::Benchmark;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every heuristic: valid packing, mass conservation, and the trivial
    /// lower bound on bins.
    #[test]
    fn packing_invariants(
        items in prop::collection::vec(0.01f64..1.0, 1..150),
        h_idx in 0usize..13,
    ) {
        let h = Heuristic::ALL[h_idx];
        let p = h.pack(&items);
        p.assert_valid(items.len());
        let mass: f64 = items.iter().sum();
        let packed: f64 = p.bins.iter().sum();
        prop_assert!((mass - packed).abs() < 1e-9, "mass not conserved");
        prop_assert!(p.bins.len() >= mass.ceil() as usize);
        // Any-fit guarantee: never more than twice the optimal bin count
        // (all listed heuristics are any-fit or better, except NextFit
        // which is exactly 2-competitive too).
        prop_assert!(
            (p.bins.len() as f64) <= 2.0 * mass.ceil() + 1.0,
            "{} used {} bins for mass {}", h.name(), p.bins.len(), mass
        );
    }

    /// Decreasing variants never use more bins than their online versions
    /// on adversarially ascending inputs.
    #[test]
    fn decreasing_helps_on_ascending(
        mut items in prop::collection::vec(0.05f64..0.95, 4..120),
    ) {
        items.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (online, offline) in [
            (Heuristic::FirstFit, Heuristic::FirstFitDecreasing),
            (Heuristic::BestFit, Heuristic::BestFitDecreasing),
        ] {
            let on = online.pack(&items).bins.len();
            let off = offline.pack(&items).bins.len();
            prop_assert!(off <= on, "{}: {} vs {}", offline.name(), off, on);
        }
    }

    /// The benchmark's accuracy equals mass / bins for any config.
    #[test]
    fn benchmark_accuracy_is_occupancy(
        items in prop::collection::vec(0.01f64..1.0, 1..100),
        seed in 0u64..1000,
    ) {
        let b = BinPacking::new(256);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = b.space().random(&mut rng);
        let report = b.run(&cfg, &items);
        let packing = b.pack(&cfg, &items);
        let expected = items.iter().sum::<f64>() / packing.bins.len().max(1) as f64;
        prop_assert!((report.accuracy.unwrap() - expected).abs() < 1e-9);
    }

    /// Generator classes produce items in (0, 1] only.
    #[test]
    fn generators_in_range(seed in 0u64..2000, class_idx in 0usize..8, n in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let class = PackInputClass::all()[class_idx];
        let items = class.generate(n, &mut rng);
        prop_assert_eq!(items.len(), n);
        prop_assert!(items.iter().all(|&x| x > 0.0 && x <= 1.0));
    }
}
