//! Row-major dense matrix with the operations the workspace needs.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix element-wise from `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of {} cols", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .collect()
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Root-mean-square of the entries; the paper's SVD/PDE accuracy metrics
    /// are ratios of RMS errors.
    pub fn rms(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            (self.data.iter().map(|v| v * v).sum::<f64>() / self.data.len() as f64).sqrt()
        }
    }

    /// Number of exact zeros in the matrix (the `zeros` input feature of the
    /// SVD and PDE benchmarks counts these on a sample).
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Flop estimate of multiplying `self * other` (2mnk).
    pub fn matmul_flops(&self, other: &Matrix) -> f64 {
        2.0 * self.rows as f64 * self.cols as f64 * other.cols as f64
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a vector.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let i = Matrix::identity(3);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let xv = Matrix::from_fn(4, 1, |i, _| x[i]);
        let full = &a * &xv;
        let quick = a.matvec(&x);
        for i in 0..3 {
            assert!((full[(i, 0)] - quick[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn add_sub_round_trip() {
        let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| ((i + j) * 7) as f64);
        let sum = &a + &b;
        let back = &sum - &b;
        assert!((&back - &a).frobenius_norm() < 1e-12);
    }

    #[test]
    fn norms_and_zeros() {
        let a = Matrix::from_rows(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.count_zeros(), 2);
        assert!((a.rms() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn vector_helpers() {
        let x = vec![1.0, 2.0, 2.0];
        assert_eq!(dot(&x, &x), 9.0);
        assert_eq!(norm(&x), 3.0);
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_rows_validates() {
        let _ = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn scale_in_place() {
        let mut a = Matrix::identity(2);
        a.scale(3.0);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 0.0);
    }
}
