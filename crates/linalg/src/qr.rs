//! Householder QR decomposition.

use crate::matrix::Matrix;

/// The result of a QR factorization `A = Q·R` with `Q` orthonormal
/// (`m × n`, thin) and `R` upper triangular (`n × n`).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Thin orthonormal factor, `m × n`.
    pub q: Matrix,
    /// Upper-triangular factor, `n × n`.
    pub r: Matrix,
    /// Estimated flops spent.
    pub flops: f64,
}

/// Computes a thin QR factorization by Householder reflections.
///
/// # Panics
/// Panics if `a.rows() < a.cols()` (thin QR needs m ≥ n).
pub fn qr(a: &Matrix) -> Qr {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "thin QR requires rows >= cols, got {m} x {n}");

    // Work on a copy of A; accumulate Q explicitly (m x m truncated to m x n).
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let mut flops = 0.0;

    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut x_norm2 = 0.0;
        for i in k..m {
            x_norm2 += r[(i, k)] * r[(i, k)];
        }
        let x_norm = x_norm2.sqrt();
        if x_norm == 0.0 {
            continue;
        }
        let alpha = if r[(k, k)] >= 0.0 { -x_norm } else { x_norm };
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        v[0] -= alpha;
        let v_norm2: f64 = v.iter().map(|x| x * x).sum();
        if v_norm2 == 0.0 {
            continue;
        }

        // Apply H = I - 2 v vᵀ / (vᵀv) to R (columns k..n) and accumulate in Q.
        for j in k..n {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * r[(i, j)];
            }
            let beta = 2.0 * s / v_norm2;
            for i in k..m {
                r[(i, j)] -= beta * v[i - k];
            }
        }
        for j in 0..m {
            let mut s = 0.0;
            for i in k..m {
                s += v[i - k] * q[(j, i)];
            }
            let beta = 2.0 * s / v_norm2;
            for i in k..m {
                q[(j, i)] -= beta * v[i - k];
            }
        }
        flops += 4.0 * (m - k) as f64 * (n - k) as f64 + 4.0 * (m - k) as f64 * m as f64;
    }

    // Thin factors.
    let q_thin = Matrix::from_fn(m, n, |i, j| q[(i, j)]);
    let r_thin = Matrix::from_fn(n, n, |i, j| if j >= i { r[(i, j)] } else { 0.0 });
    Qr {
        q: q_thin,
        r: r_thin,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dot;

    fn reconstruct_error(a: &Matrix) -> f64 {
        let f = qr(a);
        let rebuilt = &f.q * &f.r;
        (&rebuilt - a).frobenius_norm()
    }

    #[test]
    fn reconstructs_square() {
        let a = Matrix::from_rows(3, 3, &[4.0, 1.0, 2.0, 1.0, 3.0, 0.0, 2.0, 0.0, 5.0]);
        assert!(reconstruct_error(&a) < 1e-10);
    }

    #[test]
    fn reconstructs_tall() {
        let a = Matrix::from_fn(8, 3, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        assert!(reconstruct_error(&a) < 1e-10);
    }

    #[test]
    fn q_is_orthonormal() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64).sin());
        let f = qr(&a);
        for j1 in 0..4 {
            for j2 in 0..4 {
                let c1 = f.q.col(j1);
                let c2 = f.q.col(j2);
                let expected = if j1 == j2 { 1.0 } else { 0.0 };
                assert!(
                    (dot(&c1, &c2) - expected).abs() < 1e-10,
                    "q columns {j1},{j2} not orthonormal"
                );
            }
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 5, |i, j| (1 + i * j) as f64);
        let f = qr(&a);
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn flops_positive() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + j) as f64 + 1.0);
        assert!(qr(&a).flops > 0.0);
    }

    #[test]
    fn handles_rank_deficient() {
        // Second column is 2x the first; QR must still reconstruct.
        let a = Matrix::from_fn(4, 2, |i, j| (i + 1) as f64 * (j + 1) as f64);
        assert!(reconstruct_error(&a) < 1e-10);
    }
}
