//! Three SVD algorithms with different cost/accuracy profiles.
//!
//! These are the algorithmic *choices* of the paper's SVD benchmark ("the
//! choices include … changing the techniques used to find these
//! eigenvalues"):
//!
//! * [`svd_jacobi`] — one-sided Jacobi: full decomposition, most accurate,
//!   most expensive.
//! * [`svd_subspace`] — block power (subspace) iteration on `AᵀA`: cheap
//!   top-`k` approximation whose quality depends on iteration count and
//!   spectral gaps.
//! * [`svd_lanczos`] — Golub–Kahan–Lanczos bidiagonalization with full
//!   reorthogonalization: middle ground.

use crate::eigen::symmetric_eigen;
use crate::matrix::{axpy, dot, norm, Matrix};
use crate::qr::qr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A (possibly truncated) singular value decomposition `A ≈ U·diag(σ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` (column `j` pairs with `sigma[j]`).
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × k`.
    pub v: Matrix,
    /// Estimated flops spent computing the decomposition.
    pub flops: f64,
}

impl Svd {
    /// Reconstructs the rank-`k` approximation `Σ_{i<k} σᵢ uᵢ vᵢᵀ`
    /// (clamped to the available rank).
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for r in 0..k {
            let s = self.sigma[r];
            for i in 0..m {
                let uis = self.u[(i, r)] * s;
                for j in 0..n {
                    out[(i, j)] += uis * self.v[(j, r)];
                }
            }
        }
        out
    }

    /// Storage (number of floats) needed for a rank-`k` truncation — the
    /// "less space" objective of the SVD benchmark.
    pub fn storage(&self, k: usize) -> usize {
        let k = k.min(self.sigma.len());
        k * (self.u.rows() + self.v.rows() + 1)
    }
}

/// Which SVD algorithm to run; the benchmark's `either…or` alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvdMethod {
    /// One-sided Jacobi (full, accurate, expensive).
    Jacobi,
    /// Subspace iteration with this many power steps.
    Subspace {
        /// Number of block power iterations.
        iters: usize,
    },
    /// Golub–Kahan–Lanczos bidiagonalization.
    Lanczos,
}

/// Dispatches to the chosen method asking for `k` singular triplets.
/// `seed` feeds the deterministic starting block of the iterative methods.
///
/// # Panics
/// Panics if `a.rows() < a.cols()` (callers should transpose first) or `k == 0`.
pub fn compute(a: &Matrix, k: usize, method: SvdMethod, seed: u64) -> Svd {
    match method {
        SvdMethod::Jacobi => svd_jacobi(a),
        SvdMethod::Subspace { iters } => svd_subspace(a, k, iters, seed),
        SvdMethod::Lanczos => svd_lanczos(a, k, seed),
    }
}

/// Full SVD by one-sided Jacobi: rotates column pairs of a working copy of
/// `A` until all columns are mutually orthogonal; column norms become the
/// singular values.
///
/// # Panics
/// Panics if `a.rows() < a.cols()`.
pub fn svd_jacobi(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "svd_jacobi requires rows >= cols, got {m} x {n}");
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let mut flops = 0.0;
    let eps = 1e-12 * a.frobenius_norm().max(1e-300);

    for _sweep in 0..60 {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    alpha += u[(i, p)] * u[(i, p)];
                    beta += u[(i, q)] * u[(i, q)];
                    gamma += u[(i, p)] * u[(i, q)];
                }
                flops += 6.0 * m as f64;
                if gamma.abs() <= eps * (alpha.sqrt() * beta.sqrt()).max(1e-300) {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
                flops += 6.0 * (m + n) as f64;
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values as column norms; normalize U's columns.
    let mut triplets: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let s: f64 = (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt();
            (s, j)
        })
        .collect();
    triplets.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let sigma: Vec<f64> = triplets.iter().map(|t| t.0).collect();
    let u_sorted = Matrix::from_fn(m, n, |i, jj| {
        let (s, j) = triplets[jj];
        if s > 0.0 {
            u[(i, j)] / s
        } else {
            0.0
        }
    });
    let v_sorted = Matrix::from_fn(n, n, |i, jj| v[(i, triplets[jj].1)]);

    Svd {
        u: u_sorted,
        sigma,
        v: v_sorted,
        flops,
    }
}

fn random_block(n: usize, k: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, k, |_, _| rng.gen_range(-1.0..1.0))
}

/// Truncated SVD by block power (subspace) iteration on `AᵀA`.
///
/// Runs `iters` rounds of `X ← orth(AᵀA·X)` from a seeded random `n × k`
/// block, then solves the small projected problem exactly. Cheap, but
/// accuracy degrades when `iters` is small or singular values cluster —
/// exactly the cost/accuracy dial the autotuner explores.
///
/// # Panics
/// Panics if `k == 0` or `k > a.cols()`.
pub fn svd_subspace(a: &Matrix, k: usize, iters: usize, seed: u64) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(k >= 1 && k <= n, "rank k={k} out of range for {m} x {n}");
    let mut x = random_block(n, k, seed);
    let mut flops = 0.0;

    for _ in 0..iters.max(1) {
        // y = Aᵀ (A x)
        let ax = a * &x; // m x k
        let y = &a.transpose() * &ax; // n x k
        flops += a.matmul_flops(&x) + 2.0 * (n * m * k) as f64;
        let f = qr(&y);
        flops += f.flops;
        x = f.q;
    }

    // Rayleigh–Ritz on the k-dimensional subspace: B = A·X (m × k), thin SVD
    // of B via eigen of BᵀB (k × k, tiny).
    let b = a * &x;
    flops += a.matmul_flops(&x);
    let btb = &b.transpose() * &b;
    flops += 2.0 * (k * m * k) as f64;
    let e = symmetric_eigen(&btb, 1e-13, 60);
    flops += e.flops;

    let sigma: Vec<f64> = e.values.iter().map(|l| l.max(0.0).sqrt()).collect();
    // V = X · W, U = B · W / σ  where W are eigenvectors of BᵀB.
    let v = &x * &e.vectors;
    let bw = &b * &e.vectors;
    flops += x.matmul_flops(&e.vectors) + b.matmul_flops(&e.vectors);
    let u = Matrix::from_fn(m, k, |i, j| {
        if sigma[j] > 1e-300 {
            bw[(i, j)] / sigma[j]
        } else {
            0.0
        }
    });

    Svd { u, sigma, v, flops }
}

/// Truncated SVD by Golub–Kahan–Lanczos bidiagonalization with full
/// reorthogonalization, running `k + p` steps (small oversampling `p`) and
/// then solving the small bidiagonal problem.
///
/// # Panics
/// Panics if `k == 0` or `k > a.cols()`.
pub fn svd_lanczos(a: &Matrix, k: usize, seed: u64) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(k >= 1 && k <= n, "rank k={k} out of range for {m} x {n}");
    let steps = (k + 4).min(n);
    let mut flops = 0.0;

    // Lanczos vectors.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut us: Vec<Vec<f64>> = Vec::with_capacity(steps);
    let mut alphas = Vec::with_capacity(steps);
    let mut betas = Vec::with_capacity(steps);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0_f64..1.0)).collect();
    let nv = norm(&v);
    for x in &mut v {
        *x /= nv;
    }

    let mut beta = 0.0;
    let mut u_prev = vec![0.0; m];
    for step in 0..steps {
        // u = A v - beta * u_prev
        let mut u = a.matvec(&v);
        flops += 2.0 * (m * n) as f64;
        axpy(-beta, &u_prev, &mut u);
        // Reorthogonalize u against previous us.
        for prev in &us {
            let c = dot(prev, &u);
            axpy(-c, prev, &mut u);
            flops += 4.0 * m as f64;
        }
        let alpha = norm(&u);
        if alpha < 1e-300 {
            break;
        }
        for x in &mut u {
            *x /= alpha;
        }
        alphas.push(alpha);
        us.push(u.clone());
        vs.push(v.clone());

        // w = Aᵀ u - alpha * v
        let mut w = a.transpose().matvec(&u);
        flops += 2.0 * (m * n) as f64;
        axpy(-alpha, &v, &mut w);
        for prev in &vs {
            let c = dot(prev, &w);
            axpy(-c, prev, &mut w);
            flops += 4.0 * n as f64;
        }
        beta = norm(&w);
        if beta < 1e-300 || step + 1 == steps {
            betas.push(0.0);
            break;
        }
        betas.push(beta);
        for x in &mut w {
            *x /= beta;
        }
        u_prev = u;
        v = w;
    }

    let t = alphas.len();
    // Build the small bidiagonal B (t x t) and take its SVD via BᵀB eigen.
    let mut b_small = Matrix::zeros(t, t);
    for i in 0..t {
        b_small[(i, i)] = alphas[i];
        if i + 1 < t && i < betas.len() {
            b_small[(i, i + 1)] = betas[i];
        }
    }
    let btb = &b_small.transpose() * &b_small;
    let e = symmetric_eigen(&btb, 1e-13, 60);
    flops += e.flops;

    let keep = k.min(t);
    let sigma: Vec<f64> = e
        .values
        .iter()
        .take(keep)
        .map(|l| l.max(0.0).sqrt())
        .collect();
    // Right small vectors w_j give V = Vt · w; left via U = Us · (B w / σ).
    let mut v_out = Matrix::zeros(n, keep);
    let mut u_out = Matrix::zeros(m, keep);
    for j in 0..keep {
        let w: Vec<f64> = (0..t).map(|i| e.vectors[(i, j)]).collect();
        for (i, wv) in w.iter().enumerate() {
            for r in 0..n {
                v_out[(r, j)] += vs[i][r] * wv;
            }
        }
        let bw = b_small.matvec(&w);
        if sigma[j] > 1e-300 {
            for (i, bwi) in bw.iter().enumerate() {
                for r in 0..m {
                    u_out[(r, j)] += us[i][r] * bwi / sigma[j];
                }
            }
        }
        flops += 2.0 * (t * (m + n)) as f64;
    }

    Svd {
        u: u_out,
        sigma,
        v: v_out,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank(m: usize, n: usize, rank: usize) -> Matrix {
        // Deterministic low-rank matrix: sum of outer products.
        let mut out = Matrix::zeros(m, n);
        for r in 0..rank {
            let scale = 10.0 / (r + 1) as f64;
            for i in 0..m {
                for j in 0..n {
                    let ui = ((i * (r + 3)) as f64 * 0.7).sin();
                    let vj = ((j * (r + 5)) as f64 * 0.3).cos();
                    out[(i, j)] += scale * ui * vj;
                }
            }
        }
        out
    }

    #[test]
    fn jacobi_reconstructs_exactly() {
        let a = low_rank(8, 6, 6);
        let s = svd_jacobi(&a);
        assert!((&s.reconstruct(6) - &a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn jacobi_singular_values_descending() {
        let a = low_rank(10, 7, 7);
        let s = svd_jacobi(&a);
        for w in s.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
    }

    #[test]
    fn subspace_captures_dominant_directions() {
        let a = low_rank(16, 12, 3);
        let exact = svd_jacobi(&a);
        let approx = svd_subspace(&a, 3, 12, 42);
        for j in 0..3 {
            assert!(
                (approx.sigma[j] - exact.sigma[j]).abs() < 1e-6 * exact.sigma[0].max(1.0),
                "sigma {j}: {} vs {}",
                approx.sigma[j],
                exact.sigma[j]
            );
        }
        let err = (&approx.reconstruct(3) - &a).frobenius_norm();
        assert!(err < 1e-6 * a.frobenius_norm().max(1.0), "err {err}");
    }

    #[test]
    fn subspace_more_iters_no_worse() {
        let a = low_rank(20, 15, 6);
        let few = svd_subspace(&a, 4, 1, 7);
        let many = svd_subspace(&a, 4, 20, 7);
        let err_few = (&few.reconstruct(4) - &a).frobenius_norm();
        let err_many = (&many.reconstruct(4) - &a).frobenius_norm();
        assert!(err_many <= err_few + 1e-9, "{err_many} vs {err_few}");
        assert!(many.flops > few.flops);
    }

    #[test]
    fn lanczos_matches_jacobi_on_top_values() {
        let a = low_rank(14, 10, 4);
        let exact = svd_jacobi(&a);
        let l = svd_lanczos(&a, 4, 3);
        for j in 0..4 {
            assert!(
                (l.sigma[j] - exact.sigma[j]).abs() < 1e-5 * exact.sigma[0].max(1.0),
                "sigma {j}: {} vs {}",
                l.sigma[j],
                exact.sigma[j]
            );
        }
    }

    #[test]
    fn rank_truncation_error_decreases_with_k() {
        let a = low_rank(12, 9, 9);
        let s = svd_jacobi(&a);
        let mut last = f64::INFINITY;
        for k in 1..=9 {
            let err = (&s.reconstruct(k) - &a).frobenius_norm();
            assert!(err <= last + 1e-9, "rank {k}: {err} > {last}");
            last = err;
        }
    }

    #[test]
    fn jacobi_cheaper_methods_cost_less() {
        let a = low_rank(24, 18, 5);
        let full = svd_jacobi(&a);
        let cheap = svd_subspace(&a, 3, 2, 1);
        assert!(
            cheap.flops < full.flops,
            "{} vs {}",
            cheap.flops,
            full.flops
        );
    }

    #[test]
    fn storage_accounts_rank() {
        let a = low_rank(10, 8, 4);
        let s = svd_jacobi(&a);
        assert_eq!(s.storage(2), 2 * (10 + 8 + 1));
        assert!(s.storage(100) <= 8 * (10 + 8 + 1));
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let a = low_rank(8, 6, 3);
        let via = compute(&a, 3, SvdMethod::Subspace { iters: 5 }, 9);
        let direct = svd_subspace(&a, 3, 5, 9);
        assert_eq!(via.sigma, direct.sigma);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank(8, 6, 3);
        let s1 = svd_lanczos(&a, 3, 5);
        let s2 = svd_lanczos(&a, 3, 5);
        assert_eq!(s1.sigma, s2.sigma);
    }
}
