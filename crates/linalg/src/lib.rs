//! # intune-linalg
//!
//! Dense linear algebra substrate built from scratch for the `intune`
//! workspace: row-major [`Matrix`], Householder [`qr`], cyclic Jacobi
//! symmetric eigendecomposition ([`eigen`]), three SVD algorithms of
//! different cost/accuracy profiles ([`svd`]) — the algorithmic *choices* of
//! the paper's SVD benchmark — and dense Cholesky ([`cholesky`]) used as the
//! coarse-grid direct solver in the multigrid PDE substrate.
//!
//! Every factorization reports an estimated flop count so benchmarks can
//! charge deterministic abstract cost (see `intune-core`'s `Cost`).
//!
//! ## Example
//!
//! ```
//! use intune_linalg::{Matrix, svd};
//!
//! let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
//! let out = svd::svd_jacobi(&a);
//! let rebuilt = out.reconstruct(3);
//! assert!((&rebuilt - &a).frobenius_norm() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod eigen;
pub mod matrix;
pub mod qr;
pub mod svd;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use matrix::Matrix;
pub use qr::Qr;
pub use svd::{Svd, SvdMethod};
