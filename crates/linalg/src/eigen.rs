//! Symmetric eigendecomposition by the cyclic Jacobi method.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V·diag(λ)·Vᵀ` with
/// eigenvalues sorted by descending magnitude.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending by absolute value.
    pub values: Vec<f64>,
    /// Column `k` of `vectors` is the eigenvector for `values[k]`.
    pub vectors: Matrix,
    /// Estimated flops spent.
    pub flops: f64,
    /// Number of Jacobi sweeps performed.
    pub sweeps: usize,
}

/// Computes all eigenpairs of a symmetric matrix with cyclic Jacobi
/// rotations. Tolerance is on the off-diagonal Frobenius mass.
///
/// # Panics
/// Panics if `a` is not square.
pub fn symmetric_eigen(a: &Matrix, tol: f64, max_sweeps: usize) -> SymmetricEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "eigendecomposition requires a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let mut flops = 0.0;
    let mut sweeps = 0;

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
        }
        s.sqrt()
    };

    let scale = a.frobenius_norm().max(1e-300);
    while sweeps < max_sweeps && off(&m) > tol * scale {
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation on rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
                flops += 18.0 * n as f64;
            }
        }
    }

    // Sort eigenpairs by descending |λ|.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[(j, j)]
            .abs()
            .partial_cmp(&m[(i, i)].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);

    SymmetricEigen {
        values,
        vectors,
        flops,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
        Matrix::from_fn(n, n, |i, j| if i <= j { f(i, j) } else { f(j, i) })
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(3, 3, &[5.0, 0.0, 0.0, 0.0, -7.0, 0.0, 0.0, 0.0, 2.0]);
        let e = symmetric_eigen(&a, 1e-12, 50);
        assert!((e.values[0] - -7.0).abs() < 1e-9);
        assert!((e.values[1] - 5.0).abs() < 1e-9);
        assert!((e.values[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reconstructs_random_symmetric() {
        let a = sym(6, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let e = symmetric_eigen(&a, 1e-12, 100);
        // A·v_k = λ_k·v_k for every k.
        for k in 0..6 {
            let vk = e.vectors.col(k);
            let av = a.matvec(&vk);
            for i in 0..6 {
                assert!(
                    (av[i] - e.values[k] * vk[i]).abs() < 1e-8,
                    "eigenpair {k} fails at {i}: {} vs {}",
                    av[i],
                    e.values[k] * vk[i]
                );
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_by_magnitude() {
        let a = sym(5, |i, j| 1.0 / ((i + j + 1) as f64));
        let e = symmetric_eigen(&a, 1e-12, 100);
        for w in e.values.windows(2) {
            assert!(w[0].abs() >= w[1].abs() - 1e-12);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = sym(4, |i, j| (i + j) as f64);
        let e = symmetric_eigen(&a, 1e-12, 100);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn looser_tolerance_uses_fewer_sweeps() {
        let a = sym(8, |i, j| ((i as f64) - (j as f64)).cos());
        let tight = symmetric_eigen(&a, 1e-14, 100);
        let loose = symmetric_eigen(&a, 1e-2, 100);
        assert!(loose.sweeps <= tight.sweeps);
        assert!(loose.flops <= tight.flops);
    }
}
