//! Dense Cholesky factorization — the coarse-grid direct solver of the
//! multigrid PDE substrate.

use crate::matrix::Matrix;

/// A Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, usable to solve `A·x = b`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Estimated flops spent factoring.
    pub flops: f64,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Option<Self> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "cholesky requires a square matrix");
        let mut l = Matrix::zeros(n, n);
        let mut flops = 0.0;
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                flops += 2.0 * j as f64 + 2.0;
                if i == j {
                    if s <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Some(Cholesky { l, flops })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` by forward/back substitution.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factored dimension.
    // Indexed loops are the natural form for triangular substitution.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Flop estimate of one solve (2n²).
    pub fn solve_flops(&self) -> f64 {
        let n = self.l.rows() as f64;
        2.0 * n * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        // Diagonally dominant symmetric ⇒ SPD.
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                (n as f64) + 1.0
            } else {
                1.0 / ((i + j + 1) as f64)
            }
        })
    }

    #[test]
    fn factors_and_solves() {
        let a = spd(6);
        let c = Cholesky::new(&a).expect("spd");
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let b = a.matvec(&x_true);
        let x = c.solve(&b);
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn reconstructs_matrix() {
        let a = spd(5);
        let c = Cholesky::new(&a).expect("spd");
        let rebuilt = &(c.l().clone()) * &c.l().transpose();
        assert!((&rebuilt - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn flops_grow_with_size() {
        let small = Cholesky::new(&spd(4)).unwrap();
        let large = Cholesky::new(&spd(12)).unwrap();
        assert!(large.flops > small.flops);
        assert!(large.solve_flops() > small.solve_flops());
    }
}
