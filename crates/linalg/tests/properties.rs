//! Property-based tests for the linear-algebra substrate.

use intune_linalg::cholesky::Cholesky;
use intune_linalg::eigen::symmetric_eigen;
use intune_linalg::qr::qr;
use intune_linalg::svd::{svd_jacobi, svd_subspace};
use intune_linalg::Matrix;
use proptest::prelude::*;

fn matrix_strategy(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, m * n)
        .prop_map(move |data| Matrix::from_rows(m, n, &data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// QR reconstructs any tall matrix and Q is orthonormal.
    #[test]
    fn qr_reconstructs(a in matrix_strategy(7, 4)) {
        let f = qr(&a);
        let rebuilt = &f.q * &f.r;
        prop_assert!((&rebuilt - &a).frobenius_norm() < 1e-8);
        // QᵀQ = I.
        let qtq = &f.q.transpose() * &f.q;
        let eye = Matrix::identity(4);
        prop_assert!((&qtq - &eye).frobenius_norm() < 1e-8);
    }

    /// Symmetric eigen satisfies A v = λ v for every pair and preserves the
    /// trace.
    #[test]
    fn eigen_equation_holds(raw in matrix_strategy(5, 5)) {
        // Symmetrize.
        let a = Matrix::from_fn(5, 5, |i, j| (raw[(i, j)] + raw[(j, i)]) / 2.0);
        let e = symmetric_eigen(&a, 1e-12, 100);
        let scale = a.frobenius_norm().max(1.0);
        for k in 0..5 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            for i in 0..5 {
                prop_assert!(
                    (av[i] - e.values[k] * v[i]).abs() < 1e-7 * scale,
                    "pair {} residual too large", k
                );
            }
        }
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * scale);
    }

    /// Full Jacobi SVD reconstructs and its singular values dominate any
    /// truncation's reconstruction error (Eckart–Young direction).
    #[test]
    fn svd_reconstruction_and_truncation(a in matrix_strategy(6, 5)) {
        let s = svd_jacobi(&a);
        prop_assert!((&s.reconstruct(5) - &a).frobenius_norm() < 1e-7 * a.frobenius_norm().max(1.0));
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        // Truncation error equals the tail singular-value energy.
        for k in 1..5 {
            let err = (&s.reconstruct(k) - &a).frobenius_norm();
            let tail: f64 = s.sigma[k..].iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((err - tail).abs() < 1e-6 * a.frobenius_norm().max(1.0));
        }
    }

    /// Subspace iteration never reports singular values above the true ones
    /// (Rayleigh quotients are bounded by the extremes).
    #[test]
    fn subspace_bounded_by_truth(a in matrix_strategy(8, 6), iters in 1usize..8) {
        let exact = svd_jacobi(&a);
        let approx = svd_subspace(&a, 3, iters, 7);
        prop_assert!(approx.sigma[0] <= exact.sigma[0] * (1.0 + 1e-8) + 1e-9);
    }

    /// Cholesky of BᵀB + I solves linear systems.
    #[test]
    fn cholesky_solves_spd(b in matrix_strategy(5, 5)) {
        let mut a = &b.transpose() * &b;
        for i in 0..5 {
            a[(i, i)] += 1.0; // guarantee SPD
        }
        let ch = Cholesky::new(&a).expect("BᵀB + I is SPD");
        let x_true = vec![1.0, -2.0, 3.0, -4.0, 5.0];
        let rhs = a.matvec(&x_true);
        let x = ch.solve(&rhs);
        for i in 0..5 {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-6 * (1.0 + a.frobenius_norm()));
        }
    }

    /// Matrix add/sub/transpose algebra.
    #[test]
    fn matrix_algebra(a in matrix_strategy(4, 6), b in matrix_strategy(4, 6)) {
        let sum = &a + &b;
        let back = &sum - &b;
        prop_assert!((&back - &a).frobenius_norm() < 1e-10);
        let t = a.transpose().transpose();
        prop_assert_eq!(t, a);
    }
}
