//! # intune-retrain
//!
//! The continuous-learning subsystem: observe → retrain → promote,
//! closing the loop the ROADMAP's serve→daemon stack left open.
//!
//! The paper's premise is that the best algorithmic choice shifts with
//! the input distribution — and production distributions shift (Lesoil
//! et al.). Until this crate, the daemon could *detect* that (drift
//! monitor, fallback landmark) but never *act* on it: it served a frozen
//! artifact forever. This crate turns the stack into a self-adapting
//! system:
//!
//! ```text
//!            ┌────────────────────────── daemon (never restarts) ─┐
//!  clients ─▶│ primary ──▶ selections            shadow (staged)  │
//!            │    │                                  ▲     │gate  │
//!            └────┼──────────────────────────────────┼─────┼──────┘
//!                 ▼ trace sink                       │     ▼
//!          request journal (segments)          LoadArtifact/Promote
//!                 │ compact                          ▲
//!                 ▼                                  │
//!          persistent corpus ──policy──▶ retrain (engine + warm cache)
//! ```
//!
//! * the **request journal** lives in `intune_serve::journal` (re-exported
//!   here as [`journal`]): the daemon's trace sink appends every served
//!   selection — feature vector, chosen landmark, drift outcome, optional
//!   raw-input payload — as checksummed records in a segmented,
//!   crash-tolerant append-only log;
//! * the [`CorpusStore`] (`corpus` module) compacts journal segments into
//!   a deduplicated, capacity-bounded corpus (deterministic
//!   reservoir down-sampling keyed by per-record seeds) with streaming
//!   per-feature statistics;
//! * the [`RetrainPolicy`] (`policy` module) decides *when* the evidence
//!   — new retrainable inputs, drift-trip rate, cooldown — justifies a
//!   retraining budget;
//! * the **controller** (`controller` module) re-runs the two-level
//!   pipeline over base + journaled inputs through the work-stealing
//!   `intune_exec::Engine` with fingerprint-keyed [`CostCache`] warm
//!   starts, stamps the result as artifact revision N+1 (the v2 schema's
//!   `revision`/`trained_inputs` fields earn their keep), and pushes it
//!   into the live daemon over the existing `LoadArtifact`/`Promote` wire
//!   path — where the **shadow-agreement gate, not the controller,
//!   decides adoption**.
//!
//! The `intune_retrain` binary runs the loop end to end (plus traced
//! request replay, daemon stats, and a deterministic `--dry-run` retrain
//! for CI diffing). Journal/corpus format specifications live in
//! `crates/retrain/README.md`.
//!
//! [`CostCache`]: intune_exec::CostCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod corpus;
pub mod policy;

/// The request journal (re-exported from `intune_serve`, where the
/// serving runtime's trace hook lives): records, writer, segment reader,
/// and the [`JournalSink`](intune_serve::JournalSink) trace sink.
pub use intune_serve::journal;

pub use controller::{
    compact_journal, compact_recording, input_fingerprint, load_warm_cache, remove_segments,
    retrain_from_corpus, run_cycle, save_warm_cache, CompactionReport, CycleOutcome, CycleReport,
    RecordingCompaction, RetrainConfig, RetrainStats, RetrainedModel, RETRAIN_CACHE_SCHEMA,
    RETRAIN_CACHE_VERSION,
};
pub use corpus::{
    feature_key, AdmissionPolicy, CorpusEntry, CorpusStore, CycleEvidence, FeatureStat, Offer,
    CORPUS_SCHEMA, CORPUS_VERSION,
};
pub use policy::{RetrainDecision, RetrainPolicy, RetrainReason};

/// Shared fixtures for this crate's unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use intune_autotuner::TunerOptions;
    use intune_core::{
        AccuracySpec, Benchmark, ConfigSpace, Configuration, ExecutionReport, FeatureDef,
        FeatureSample,
    };
    use intune_learning::{Level1Options, TwoLevelOptions};

    /// The synthetic family the serve/daemon tests use — three input
    /// kinds, the matching switch is cheaper, the kind readable from a
    /// cheap feature — except feature 1 carries the input *size*, so
    /// distinct inputs have distinct feature vectors (the corpus dedup
    /// sees real production variety), and inputs round-trip through
    /// `encode_input`/`decode_input` for retraining.
    pub struct Synthetic;

    impl Benchmark for Synthetic {
        type Input = (usize, f64);

        fn name(&self) -> &str {
            "synthetic"
        }

        fn space(&self) -> ConfigSpace {
            ConfigSpace::builder()
                .switch("alg", 3)
                .int("knob", 0, 10)
                .build()
        }

        fn run(&self, cfg: &Configuration, input: &Self::Input) -> ExecutionReport {
            let (kind, size) = *input;
            let alg = cfg.choice(0);
            let penalty = 1.0 + 2.0 * ((alg + 3 - kind) % 3) as f64;
            ExecutionReport::with_accuracy(size * penalty, 1.0)
        }

        fn accuracy(&self) -> Option<AccuracySpec> {
            Some(AccuracySpec::new(0.5))
        }

        fn properties(&self) -> Vec<FeatureDef> {
            vec![FeatureDef::new("kind", 2), FeatureDef::new("size", 1)]
        }

        fn extract(&self, property: usize, level: usize, input: &Self::Input) -> FeatureSample {
            match property {
                0 => FeatureSample::new(input.0 as f64, 1.0 + level as f64),
                _ => FeatureSample::new(input.1, 2.0),
            }
        }

        fn encode_input(&self, input: &Self::Input) -> Option<serde_json::Value> {
            Some(serde_json::Value::Array(vec![
                serde_json::Value::UInt(input.0 as u64),
                serde_json::Value::Float(input.1),
            ]))
        }

        fn decode_input(&self, payload: &serde_json::Value) -> Option<Self::Input> {
            let items = payload.as_array()?;
            if items.len() != 2 {
                return None;
            }
            Some((items[0].as_u64()? as usize, items[1].as_f64()?))
        }
    }

    /// A deterministic corpus of `(kind, size)` inputs.
    pub fn synthetic_corpus(n: usize, seed: usize) -> Vec<(usize, f64)> {
        (0..n)
            .map(|i| ((i + seed) % 3, 100.0 + ((i * 17 + seed) % 9) as f64 * 10.0))
            .collect()
    }

    /// Quick-test two-level options.
    pub fn train_options() -> TwoLevelOptions {
        TwoLevelOptions {
            level1: Level1Options {
                clusters: 3,
                tuner: TunerOptions {
                    population: 8,
                    generations: 5,
                    ..TunerOptions::quick(1)
                },
                ..Level1Options::default()
            },
            ..TwoLevelOptions::default()
        }
    }
}
