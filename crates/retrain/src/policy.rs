//! When to retrain: the policy gate between observation and spending a
//! training budget.
//!
//! Retraining costs real measurement work, and a model retrained on five
//! inputs is noise, so the controller only acts when the corpus's cycle
//! evidence clears a [`RetrainPolicy`]: enough fresh traffic since the
//! last attempt (cooldown), and either enough **new retrainable inputs**
//! (the distribution has new material) or a tripped **drift rate** (the
//! serving probes say the material that arrived is out-of-distribution —
//! the shift the paper's whole premise warns about). The decision is a
//! pure function of the evidence, so the same journal always produces the
//! same retraining schedule.

use crate::corpus::CycleEvidence;

/// Thresholds gating a retrain cycle.
#[derive(Debug, Clone)]
pub struct RetrainPolicy {
    /// New unique, payload-carrying corpus entries since the last cycle
    /// required to retrain on volume alone.
    pub min_new_inputs: u64,
    /// Out-of-distribution fraction (among records journaled since the
    /// last cycle) beyond which drift alone forces a retrain.
    pub drift_trip_rate: f64,
    /// Minimum journaled records since the last cycle before the drift
    /// rate is trusted (a two-record journal can read 100 % OOD).
    pub min_drift_observations: u64,
    /// Journaled records required since the last cycle before *any*
    /// retrain — the cooldown that stops a hot loop of attempts.
    pub cooldown_records: u64,
}

impl Default for RetrainPolicy {
    fn default() -> Self {
        RetrainPolicy {
            min_new_inputs: 64,
            drift_trip_rate: 0.5,
            min_drift_observations: 64,
            cooldown_records: 256,
        }
    }
}

/// Why a retrain cycle fired.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainReason {
    /// Enough new retrainable inputs accumulated.
    NewInputs {
        /// New unique payload-carrying entries since the last cycle.
        new_inputs: u64,
    },
    /// The observed drift rate tripped the policy.
    DriftTripped {
        /// OOD fraction among records journaled since the last cycle.
        rate: f64,
        /// Records that fraction was measured over.
        observed: u64,
    },
}

impl std::fmt::Display for RetrainReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetrainReason::NewInputs { new_inputs } => {
                write!(f, "{new_inputs} new retrainable inputs")
            }
            RetrainReason::DriftTripped { rate, observed } => {
                write!(
                    f,
                    "drift rate {:.3} over {observed} journaled records",
                    rate
                )
            }
        }
    }
}

/// The policy's verdict for one cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainDecision {
    /// Stand down, with the reason (cooldown, not enough evidence).
    Idle(String),
    /// Retrain now.
    Retrain(RetrainReason),
}

impl RetrainPolicy {
    /// Decides one cycle from the corpus's evidence (see module docs).
    pub fn decide(&self, evidence: &CycleEvidence) -> RetrainDecision {
        if evidence.offered < self.cooldown_records {
            return RetrainDecision::Idle(format!(
                "cooldown: {} of {} journaled records since the last cycle",
                evidence.offered, self.cooldown_records
            ));
        }
        if evidence.new_inputs >= self.min_new_inputs.max(1) {
            return RetrainDecision::Retrain(RetrainReason::NewInputs {
                new_inputs: evidence.new_inputs,
            });
        }
        let rate = evidence.drift_rate();
        if evidence.offered >= self.min_drift_observations && rate >= self.drift_trip_rate {
            return RetrainDecision::Retrain(RetrainReason::DriftTripped {
                rate,
                observed: evidence.offered,
            });
        }
        RetrainDecision::Idle(format!(
            "{} new inputs (need {}), drift rate {:.3} (trips at {:.3} after {} records)",
            evidence.new_inputs,
            self.min_new_inputs.max(1),
            rate,
            self.drift_trip_rate,
            self.min_drift_observations
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetrainPolicy {
        RetrainPolicy {
            min_new_inputs: 10,
            drift_trip_rate: 0.5,
            min_drift_observations: 20,
            cooldown_records: 8,
        }
    }

    #[test]
    fn cooldown_blocks_everything() {
        let d = policy().decide(&CycleEvidence {
            offered: 7,
            ood: 7,
            new_inputs: 100,
        });
        assert!(
            matches!(d, RetrainDecision::Idle(ref r) if r.contains("cooldown")),
            "{d:?}"
        );
    }

    #[test]
    fn new_input_volume_triggers() {
        let d = policy().decide(&CycleEvidence {
            offered: 12,
            ood: 0,
            new_inputs: 10,
        });
        assert_eq!(
            d,
            RetrainDecision::Retrain(RetrainReason::NewInputs { new_inputs: 10 })
        );
    }

    #[test]
    fn drift_triggers_only_after_enough_observations() {
        // 60% OOD but only 12 records: not trusted yet.
        let d = policy().decide(&CycleEvidence {
            offered: 12,
            ood: 8,
            new_inputs: 0,
        });
        assert!(matches!(d, RetrainDecision::Idle(_)), "{d:?}");
        // Same rate over 24 records: trips.
        let d = policy().decide(&CycleEvidence {
            offered: 24,
            ood: 16,
            new_inputs: 0,
        });
        assert!(
            matches!(
                d,
                RetrainDecision::Retrain(RetrainReason::DriftTripped { observed: 24, .. })
            ),
            "{d:?}"
        );
    }

    #[test]
    fn quiet_traffic_idles_with_an_explanation() {
        let d = policy().decide(&CycleEvidence {
            offered: 50,
            ood: 2,
            new_inputs: 3,
        });
        let RetrainDecision::Idle(reason) = d else {
            panic!("expected idle");
        };
        assert!(reason.contains("3 new inputs"), "{reason}");
    }

    #[test]
    fn reasons_render_for_operators() {
        let r = RetrainReason::DriftTripped {
            rate: 0.75,
            observed: 96,
        };
        assert_eq!(r.to_string(), "drift rate 0.750 over 96 journaled records");
        let r = RetrainReason::NewInputs { new_inputs: 42 };
        assert!(r.to_string().contains("42"));
    }
}
