//! The retraining controller: journal → corpus → retrain → push, as one
//! auditable cycle.
//!
//! One [`run_cycle`] call drives the whole continuous-learning loop
//! against a live daemon, with **zero daemon restarts**:
//!
//! 1. **Compact** — fold new journal segments into the persistent
//!    [`CorpusStore`] (dedup, reservoir bound, streaming stats); sealed,
//!    fully-absorbed segments are removed only *after* the corpus has
//!    been durably saved.
//! 2. **Decide** — ask the [`RetrainPolicy`] whether the cycle evidence
//!    (new inputs, drift rate, cooldown) justifies spending a training
//!    budget.
//! 3. **Retrain** — decode the corpus's journaled raw inputs, merge them
//!    after the base training corpus, and re-run the two-level pipeline
//!    through the work-stealing engine, warm-started from a persisted
//!    cost cache whose cells are re-keyed by input *fingerprint* (so
//!    yesterday's measurements survive corpus growth and eviction).
//!    Retraining is worker-count invariant: the same corpus produces a
//!    byte-identical artifact at any `INTUNE_THREADS`.
//! 4. **Push** — stamp the result as artifact revision N+1, hot-load it
//!    into the daemon over the existing `LoadArtifact` wire path, replay
//!    corpus traffic to build the staged shadow's agreement record, and
//!    call `Promote`. **The daemon's shadow gate — not this controller —
//!    decides adoption**: insufficient agreement or a tripped shadow
//!    drift monitor refuses the promote, and the cycle reports
//!    [`CycleOutcome::Rejected`].

use crate::corpus::{AdmissionPolicy, CorpusStore};
use crate::policy::{RetrainDecision, RetrainPolicy, RetrainReason};
use intune_core::{codec, Benchmark, Error, FeatureVector, Result};
use intune_daemon::DaemonClient;
use intune_exec::{CostCache, Engine};
use intune_learning::pipeline::{relearn_merged, TwoLevelResult};
use intune_learning::TwoLevelOptions;
use intune_obs::{EventKind, EventLog};
use intune_serve::{JournalRecord, ModelArtifact};
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Envelope schema name of the persisted retrain cost cache (cells plus
/// per-input identity fingerprints).
pub const RETRAIN_CACHE_SCHEMA: &str = "intune-retrain-cache";
/// Current retrain-cache schema version.
pub const RETRAIN_CACHE_VERSION: u32 = 1;
/// Most trace ids one [`EventKind::RetrainCycle`] event carries (the
/// compaction report itself is uncapped).
pub const RETRAIN_EVENT_TRACE_CAP: usize = 64;

/// Everything one controller instance needs besides the benchmark.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Directory the daemon journals into.
    pub journal_dir: PathBuf,
    /// Path of the persistent corpus document.
    pub corpus_path: PathBuf,
    /// Optional path of the persisted cost cache (fingerprint-keyed warm
    /// starts across cycles). `None` disables cache persistence.
    pub cache_path: Option<PathBuf>,
    /// Corpus capacity (unique entries) when the corpus is first created.
    pub capacity: usize,
    /// The retrain gate.
    pub policy: RetrainPolicy,
    /// Mirrored selections to drive through the daemon before calling
    /// `Promote` (match the daemon's `ShadowPolicy::min_mirrored`).
    pub mirror_target: u64,
    /// Vectors per replay frame while warming the shadow.
    pub mirror_batch: usize,
    /// Whether sealed, fully-absorbed journal segments are deleted after
    /// the corpus save (the journal's disk bound).
    pub remove_compacted: bool,
    /// Corpus admission policy applied for this cycle's offers (runtime
    /// behaviour only — never persisted in the corpus document).
    pub admission: AdmissionPolicy,
    /// Optional lifecycle event log: every cycle appends one
    /// [`EventKind::RetrainCycle`] with its outcome. An in-process
    /// daemon can share the same `Arc` so cycles interleave with the
    /// promotes they cause; across processes give each writer its own
    /// file (sequence numbers are per-handle).
    pub events: Option<Arc<EventLog>>,
}

impl RetrainConfig {
    /// A config with defaults for everything but the two paths.
    pub fn new(journal_dir: impl Into<PathBuf>, corpus_path: impl Into<PathBuf>) -> Self {
        RetrainConfig {
            journal_dir: journal_dir.into(),
            corpus_path: corpus_path.into(),
            cache_path: None,
            capacity: 4096,
            policy: RetrainPolicy::default(),
            mirror_target: 64,
            mirror_batch: 64,
            remove_compacted: true,
            admission: AdmissionPolicy::default(),
            events: None,
        }
    }
}

/// What one compaction pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segment files scanned.
    pub segments: u64,
    /// Journal records read (complete records only).
    pub records: u64,
    /// Records that created new corpus entries.
    pub added: u64,
    /// Records that merged into existing entries.
    pub merged: u64,
    /// Records already absorbed in an earlier pass.
    pub stale: u64,
    /// Records rejected by the reservoir bound on arrival.
    pub rejected: u64,
    /// Segments with a torn/corrupt tail (complete prefix still used).
    pub torn_segments: u64,
    /// Sealed segments fully absorbed and eligible for removal.
    pub absorbed: Vec<PathBuf>,
    /// Segments actually deleted (filled in by [`run_cycle`] after the
    /// corpus save, or by [`remove_segments`]).
    pub removed_segments: u64,
    /// Distinct trace ids of the records this pass added or merged into
    /// the corpus (ascending). Only traced requests carry one, so this
    /// is usually a sparse sample of the absorbed traffic — enough to
    /// walk from a retrain decision back to concrete request traces.
    pub trace_ids: Vec<u64>,
}

/// Folds every journal segment in `dir` into `corpus` (idempotently —
/// records already absorbed are skipped by sequence number). A missing
/// journal directory is an empty journal, not an error. The report lists
/// sealed (non-active), fully-absorbed segments in `absorbed`; the caller
/// decides deletion **after** persisting the corpus.
///
/// # Errors
/// Returns [`Error::Artifact`] on unreadable segments.
pub fn compact_journal(dir: &Path, corpus: &mut CorpusStore) -> Result<CompactionReport> {
    compact_journal_impl(dir, corpus, false)
}

/// [`compact_journal`] with cycle-evidence counting suppressed
/// (`CorpusStore::offer_quiet`): the controller's end-of-cycle pass over
/// its own mirror-replay echoes, which must feed dedup and statistics
/// but never the next cycle's retrain evidence.
///
/// # Errors
/// Returns [`Error::Artifact`] on unreadable segments.
pub fn compact_journal_quiet(dir: &Path, corpus: &mut CorpusStore) -> Result<CompactionReport> {
    compact_journal_impl(dir, corpus, true)
}

fn compact_journal_impl(
    dir: &Path,
    corpus: &mut CorpusStore,
    quiet: bool,
) -> Result<CompactionReport> {
    let mut report = CompactionReport::default();
    if !dir.exists() {
        return Ok(report);
    }
    let segments = intune_serve::journal::list_segments(dir)?;
    let last = segments.len().saturating_sub(1);
    for (i, path) in segments.iter().enumerate() {
        let scan = intune_serve::journal::read_segment(path)?;
        report.segments += 1;
        if scan.torn.is_some() {
            report.torn_segments += 1;
        }
        for record in &scan.records {
            report.records += 1;
            let offer = if quiet {
                corpus.offer_quiet(record)
            } else {
                corpus.offer(record)
            };
            match offer {
                crate::corpus::Offer::Added => report.added += 1,
                crate::corpus::Offer::Merged => report.merged += 1,
                crate::corpus::Offer::Rejected => report.rejected += 1,
                crate::corpus::Offer::Stale => report.stale += 1,
            }
            if matches!(
                offer,
                crate::corpus::Offer::Added | crate::corpus::Offer::Merged
            ) {
                if let Some(id) = record.trace_id.filter(|&id| id != 0) {
                    report.trace_ids.push(id);
                }
            }
        }
        // The active (highest-index) segment is still being appended to;
        // everything older is sealed and now fully absorbed.
        if i != last {
            report.absorbed.push(path.clone());
        }
    }
    report.trace_ids.sort_unstable();
    report.trace_ids.dedup();
    Ok(report)
}

/// What folding one wire recording into a corpus did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingCompaction {
    /// Recording segment files scanned.
    pub segments: u64,
    /// Segments with a torn/corrupt tail (complete prefix still used).
    pub torn_segments: u64,
    /// Frames read (selection and control).
    pub frames: u64,
    /// Selection frames whose vectors were offered.
    pub select_frames: u64,
    /// Feature vectors offered to the corpus.
    pub vectors: u64,
    /// Vectors that created new corpus entries.
    pub added: u64,
    /// Vectors that merged into existing entries.
    pub merged: u64,
    /// Vectors rejected by the reservoir bound on arrival.
    pub rejected: u64,
}

/// Folds a wire recording (`intune-datalog/1`, the daemon's `--record`
/// tap) into `corpus`: every vector of every selection frame is offered,
/// with its traced payload when one was shipped. A missing directory is
/// an empty recording, not an error.
///
/// A recording captures *requests* — unlike a journal record it carries
/// no served landmark, revision, or drift verdict — so synthesized
/// records use neutral evidence (landmark 0, revision 0, never
/// out-of-distribution) and are offered **quietly**: they feed dedup,
/// statistics and the reservoir, but never the retrain policy's cycle
/// evidence. Sequence numbers continue from the corpus's watermark, so
/// re-compacting the same recording dedups by feature identity (merges)
/// rather than by sequence.
///
/// # Errors
/// Returns [`Error::Artifact`](intune_core::Error::Artifact) on
/// unreadable segments.
pub fn compact_recording(dir: &Path, corpus: &mut CorpusStore) -> Result<RecordingCompaction> {
    let mut report = RecordingCompaction::default();
    if !dir.exists() {
        return Ok(report);
    }
    let recording = intune_datalog::load_recording(dir)?;
    report.segments = recording.segments;
    report.torn_segments = recording.torn_segments;
    let mut seq = corpus.next_seq();
    for frame in &recording.frames {
        report.frames += 1;
        let Some((features, payloads)) = frame.body.select_parts() else {
            continue;
        };
        report.select_frames += 1;
        let trace_id = frame.body.trace().map(|t| t.trace_id).filter(|&id| id != 0);
        for (i, features) in features.iter().enumerate() {
            let record = JournalRecord {
                seq,
                revision: 0,
                landmark: 0,
                out_of_distribution: false,
                fell_back: false,
                features: features.clone(),
                payload: payloads.get(i).filter(|v| !v.is_null()).cloned(),
                trace_id,
            };
            seq += 1;
            report.vectors += 1;
            match corpus.offer_quiet(&record) {
                crate::corpus::Offer::Added => report.added += 1,
                crate::corpus::Offer::Merged => report.merged += 1,
                crate::corpus::Offer::Rejected => report.rejected += 1,
                crate::corpus::Offer::Stale => {}
            }
        }
    }
    Ok(report)
}

/// Deletes the given segment files (best effort per file), returning how
/// many were removed. Call only after the corpus they were folded into
/// has been durably saved.
pub fn remove_segments(paths: &[PathBuf]) -> u64 {
    paths
        .iter()
        .filter(|p| std::fs::remove_file(p).is_ok())
        .count() as u64
}

/// Identity fingerprint of one benchmark input: FNV-1a 64 over its
/// canonical encoded payload, or `None` when the benchmark does not
/// support input journaling. Fingerprints re-key persisted cost-cache
/// cells when the merged corpus's input indices shift between cycles.
pub fn input_fingerprint<B: Benchmark>(benchmark: &B, input: &B::Input) -> Option<u64> {
    let payload = benchmark.encode_input(input)?;
    let canonical = serde_json::to_string(&payload).expect("value printing is infallible");
    Some(codec::fnv1a64(canonical.as_bytes()))
}

/// Loads a cache persisted by [`save_warm_cache`] and re-keys its cells
/// onto the new merged corpus via fingerprint matching: a cell survives
/// iff its input's fingerprint appears in `new_prints` (first occurrence
/// wins). Cells of inputs that left the corpus are dropped.
///
/// # Errors
/// Returns [`Error::Artifact`] on IO/checksum/shape failure.
pub fn load_warm_cache(path: &Path, new_prints: &[Option<u64>]) -> Result<CostCache> {
    let payload = codec::read_document(path, RETRAIN_CACHE_SCHEMA, RETRAIN_CACHE_VERSION)?;
    let old_prints: Vec<Option<u64>> = payload
        .get("prints")
        .ok_or_else(|| Error::artifact("retrain cache lacks `prints`"))
        .and_then(|v| {
            serde_json::from_value(v).map_err(|e| Error::artifact(format!("bad prints: {e}")))
        })?;
    let cache = payload
        .get("cache")
        .ok_or_else(|| Error::artifact("retrain cache lacks `cache`"))
        .and_then(CostCache::from_value)?;
    let mut by_print: HashMap<u64, usize> = HashMap::new();
    for (i, p) in new_prints.iter().enumerate() {
        if let Some(p) = p {
            by_print.entry(*p).or_insert(i);
        }
    }
    Ok(cache.remap_inputs(|old| {
        old_prints
            .get(old)
            .copied()
            .flatten()
            .and_then(|p| by_print.get(&p).copied())
    }))
}

/// Persists `cache` together with the per-input fingerprints of the
/// corpus it was measured on, so the next cycle can re-key it.
///
/// # Errors
/// Returns [`Error::Artifact`] when the file cannot be written.
pub fn save_warm_cache(path: &Path, prints: &[Option<u64>], cache: &CostCache) -> Result<()> {
    let payload = Value::Object(vec![
        ("prints".to_string(), serde_json::to_value(&prints.to_vec())),
        ("cache".to_string(), cache.to_value()),
    ]);
    codec::write_document(path, RETRAIN_CACHE_SCHEMA, RETRAIN_CACHE_VERSION, payload)
}

/// A freshly retrained model plus its provenance numbers.
#[derive(Debug)]
pub struct RetrainedModel {
    /// The exported artifact, stamped with its rollout revision; its
    /// `trained_inputs` counts the merged corpus — base training inputs
    /// plus the journaled inputs production actually served.
    pub artifact: ModelArtifact,
    /// The full learning result behind the artifact.
    pub result: TwoLevelResult,
    /// Measurement/corpus accounting of this retrain.
    pub stats: RetrainStats,
}

/// Deterministic accounting of one retrain step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrainStats {
    /// Inputs the model was trained on (base + journaled).
    pub merged_inputs: u64,
    /// Journaled inputs decoded from the corpus.
    pub new_inputs: u64,
    /// Payload-carrying corpus entries that failed to decode.
    pub skipped_payloads: u64,
    /// Cells answered from the persisted warm cache before training ran.
    pub warm_cells: u64,
    /// Fresh benchmark executions this retrain performed.
    pub cells_measured: u64,
    /// Measurements answered from cache (warm cells + intra-run reuse).
    pub cache_hits: u64,
}

/// The retrain step alone: corpus → merged inputs → two-level pipeline →
/// revision-stamped artifact, with fingerprint-keyed cache warm starts.
/// No daemon involved — [`run_cycle`] wraps this with the push.
///
/// # Errors
/// Returns [`intune_core::Error::Measurement`] on failing cells and
/// [`Error::Artifact`] on cache IO failures.
pub fn retrain_from_corpus<B: Benchmark + Sync>(
    benchmark: &B,
    base_inputs: &[B::Input],
    opts: &TwoLevelOptions,
    engine: &Engine,
    corpus: &CorpusStore,
    cache_path: Option<&Path>,
    revision: u64,
) -> Result<RetrainedModel>
where
    B::Input: Sync + Clone,
{
    let (journaled, skipped_payloads) = corpus.retrain_inputs(benchmark);
    let prints: Vec<Option<u64>> = base_inputs
        .iter()
        .chain(&journaled)
        .map(|input| input_fingerprint(benchmark, input))
        .collect();
    let cache = match cache_path {
        Some(path) if path.exists() => load_warm_cache(path, &prints)?,
        _ => CostCache::new(),
    };
    let warm_cells = cache.len() as u64;
    let result = relearn_merged(benchmark, base_inputs, &journaled, opts, engine, cache)?;
    if let Some(path) = cache_path {
        save_warm_cache(path, &prints, &result.level1.cache)?;
    }
    let artifact = ModelArtifact::export(benchmark, &result).with_revision(revision);
    let stats = RetrainStats {
        merged_inputs: (base_inputs.len() + journaled.len()) as u64,
        new_inputs: journaled.len() as u64,
        skipped_payloads,
        warm_cells,
        cells_measured: result.stats.measured_runs as u64,
        cache_hits: result.stats.cache_hits as u64,
    };
    Ok(RetrainedModel {
        artifact,
        result,
        stats,
    })
}

/// How one cycle ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CycleOutcome {
    /// The policy declined to retrain.
    Idle {
        /// The policy's explanation.
        reason: String,
    },
    /// The daemon's shadow gate accepted the pushed revision.
    Promoted {
        /// Revision now serving.
        revision: u64,
        /// `trained_inputs` of the promoted artifact (base + journaled).
        trained_inputs: u64,
        /// Journaled inputs in that count.
        new_inputs: u64,
        /// Shadow agreement rate at promotion time.
        agreement_rate: f64,
    },
    /// The push happened but the shadow gate (or the shadow's own drift
    /// monitor) refused adoption; the daemon keeps serving revision N.
    Rejected {
        /// Revision that was refused.
        revision: u64,
        /// The daemon's refusal reason.
        reason: String,
    },
}

/// Everything one [`run_cycle`] call did.
#[derive(Debug)]
pub struct CycleReport {
    /// The cycle's ending.
    pub outcome: CycleOutcome,
    /// What compaction absorbed.
    pub compaction: CompactionReport,
    /// Why the policy fired (`None` when the cycle idled) — the
    /// operational audit trail: volume vs. drift.
    pub trigger: Option<RetrainReason>,
    /// Retrain accounting (`None` when the cycle idled).
    pub retrain: Option<RetrainStats>,
}

/// One full journal→corpus→retrain→push cycle against a live daemon (see
/// module docs for the four phases and who decides what).
///
/// # Errors
/// Returns typed errors on journal/corpus IO, measurement failures, and
/// wire transport failures. A *refused promote* is not an error — it is
/// [`CycleOutcome::Rejected`], the gate doing its job.
pub fn run_cycle<B: Benchmark + Sync>(
    benchmark: &B,
    base_inputs: &[B::Input],
    opts: &TwoLevelOptions,
    engine: &Engine,
    cfg: &RetrainConfig,
    client: &DaemonClient,
) -> Result<CycleReport>
where
    B::Input: Sync + Clone,
{
    let mut corpus = CorpusStore::load_or_new(&cfg.corpus_path, cfg.capacity)?;
    corpus.set_admission_policy(cfg.admission);
    let mut compaction = compact_journal(&cfg.journal_dir, &mut corpus)?;
    corpus.save(&cfg.corpus_path)?;
    if cfg.remove_compacted {
        compaction.removed_segments = remove_segments(&compaction.absorbed);
    }

    let decision = cfg.policy.decide(&corpus.evidence());
    let reason = match decision {
        RetrainDecision::Idle(reason) => {
            if let Some(log) = &cfg.events {
                // Revision from the connect-time handshake: the idle
                // path spends no extra wire round trip on it.
                log.record(
                    benchmark.name(),
                    client.info().revision,
                    EventKind::RetrainCycle {
                        outcome: "idle".to_string(),
                        detail: reason.clone(),
                        new_inputs: 0,
                        trace_ids: Vec::new(),
                    },
                );
            }
            return Ok(CycleReport {
                outcome: CycleOutcome::Idle { reason },
                compaction,
                trigger: None,
                retrain: None,
            });
        }
        RetrainDecision::Retrain(reason) => reason,
    };

    // Revision N+1 comes from the daemon's *live* revision, not the
    // connect-time handshake: another controller may have promoted since.
    let revision = client.stats()?.revision + 1;
    let retrained = retrain_from_corpus(
        benchmark,
        base_inputs,
        opts,
        engine,
        &corpus,
        cfg.cache_path.as_deref(),
        revision,
    )?;
    let stats = retrained.stats;
    client.load_artifact(&retrained.artifact)?;

    // Warm the staged shadow's agreement record with the traffic the
    // journal proves production sends. These replays are journaled like
    // any primary answer; the quiet compaction below absorbs them before
    // the cycle closes so they never read as fresh production evidence.
    let outcome = match mirror_corpus_traffic(client, &corpus, cfg)? {
        MirrorEnd::ShadowGone => CycleOutcome::Rejected {
            revision,
            reason: "shadow auto-rejected while mirroring (drift monitor tripped)".to_string(),
        },
        MirrorEnd::Ready(agreement_rate) => match client.promote() {
            Ok(promoted) => CycleOutcome::Promoted {
                revision: promoted,
                trained_inputs: retrained.artifact.trained_inputs,
                new_inputs: stats.new_inputs,
                agreement_rate,
            },
            Err(e) => CycleOutcome::Rejected {
                revision,
                reason: e.to_string(),
            },
        },
    };
    if let Some(log) = &cfg.events {
        let (name, detail, event_revision) = match &outcome {
            CycleOutcome::Promoted {
                revision,
                agreement_rate,
                ..
            } => (
                "promoted",
                format!("agreement {agreement_rate:.4}"),
                *revision,
            ),
            CycleOutcome::Rejected { revision, reason } => ("rejected", reason.clone(), *revision),
            CycleOutcome::Idle { reason } => ("idle", reason.clone(), 0),
        };
        // The event log bounds record size; a busy cycle can absorb far
        // more traced inputs than one event should carry, so the stamp
        // is the first `RETRAIN_EVENT_TRACE_CAP` ids (they are sorted —
        // a deterministic sample, not a random one).
        let mut trace_ids = compaction.trace_ids.clone();
        trace_ids.truncate(RETRAIN_EVENT_TRACE_CAP);
        log.record(
            benchmark.name(),
            event_revision,
            EventKind::RetrainCycle {
                outcome: name.to_string(),
                detail,
                new_inputs: stats.new_inputs,
                trace_ids,
            },
        );
    }
    // Absorb this cycle's own mirror-replay echoes (journaled like any
    // primary answer) *quietly*: dedup and statistics see them, the next
    // cycle's retrain evidence does not — otherwise a drift-responsive
    // policy would feed on its own echoes and retrain in a loop.
    compact_journal_quiet(&cfg.journal_dir, &mut corpus)?;
    corpus.mark_cycle();
    corpus.save(&cfg.corpus_path)?;
    Ok(CycleReport {
        outcome,
        compaction,
        trigger: Some(reason),
        retrain: Some(stats),
    })
}

enum MirrorEnd {
    /// The shadow disappeared mid-replay (auto-rejected).
    ShadowGone,
    /// Enough selections mirrored; last observed agreement rate.
    Ready(f64),
}

/// Replays corpus feature vectors through `SelectBatch` until the staged
/// shadow has mirrored `mirror_target` selections (or vanished).
fn mirror_corpus_traffic(
    client: &DaemonClient,
    corpus: &CorpusStore,
    cfg: &RetrainConfig,
) -> Result<MirrorEnd> {
    let vectors: Vec<FeatureVector> = corpus
        .entries()
        .iter()
        .map(|e| e.features.clone())
        .collect();
    let batch = cfg.mirror_batch.max(1);
    // Enough frames to reach the target plus slack; the stats check is
    // authoritative, this only bounds a misconfigured loop.
    let max_frames = cfg.mirror_target / batch as u64 + 16;
    let mut start = 0usize;
    let mut frames = 0u64;
    loop {
        let stats = client.stats()?;
        let Some(shadow) = stats.shadow else {
            return Ok(MirrorEnd::ShadowGone);
        };
        if shadow.mirrored >= cfg.mirror_target || vectors.is_empty() || frames >= max_frames {
            return Ok(MirrorEnd::Ready(shadow.agreement_rate));
        }
        let frame: Vec<FeatureVector> = (0..batch)
            .map(|i| vectors[(start + i) % vectors.len()].clone())
            .collect();
        client.select_batch(&frame)?;
        start = (start + batch) % vectors.len();
        frames += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{synthetic_corpus, train_options, Synthetic};
    use intune_serve::journal::{JournalOptions, JournalWriter};
    use intune_serve::JournalRecord;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "intune-retrain-ctl-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn journal_inputs(dir: &Path, inputs: &[(usize, f64)], segment_max: usize) {
        let b = Synthetic;
        let mut w = JournalWriter::open(
            dir,
            JournalOptions {
                segment_max_records: segment_max,
                ..JournalOptions::default()
            },
        )
        .unwrap();
        for input in inputs {
            w.append(JournalRecord {
                seq: 0,
                revision: 0,
                landmark: input.0 as u64,
                out_of_distribution: false,
                fell_back: false,
                features: b.extract_all(input),
                payload: b.encode_input(input),
                trace_id: None,
            })
            .unwrap();
        }
    }

    #[test]
    fn compaction_absorbs_segments_idempotently_and_lists_sealed_ones() {
        let jdir = tmp("compact");
        let inputs = synthetic_corpus(10, 3);
        journal_inputs(&jdir, &inputs, 4);

        let mut corpus = CorpusStore::new(64);
        let report = compact_journal(&jdir, &mut corpus).unwrap();
        assert_eq!(report.segments, 3, "10 records at 4/segment");
        assert_eq!(report.records, 10);
        assert_eq!(report.added, corpus.len() as u64);
        assert_eq!(
            report.absorbed.len(),
            2,
            "sealed segments are removable, the active one is not"
        );

        // Re-compaction is a no-op.
        let again = compact_journal(&jdir, &mut corpus).unwrap();
        assert_eq!(again.records, 10);
        assert_eq!(again.stale, 10);
        assert_eq!(again.added, 0);

        // Removal after the (simulated) corpus save.
        assert_eq!(remove_segments(&report.absorbed), 2);
        let after = compact_journal(&jdir, &mut corpus).unwrap();
        assert_eq!(after.segments, 1, "only the active segment remains");
        std::fs::remove_dir_all(&jdir).ok();
    }

    #[test]
    fn recording_compaction_folds_vectors_quietly_and_dedups_on_repeat() {
        use intune_datalog::{FrameBody, RecordedFrame, RecordingOptions, RecordingWriter};

        let rdir = tmp("recording");
        let b = Synthetic;
        let inputs = synthetic_corpus(6, 1);
        let features: Vec<_> = inputs.iter().map(|i| b.extract_all(i)).collect();
        let payloads: Vec<_> = inputs
            .iter()
            .map(|i| b.encode_input(i).expect("synthetic inputs encode"))
            .collect();
        let frame = |body| RecordedFrame {
            seq: 0,
            delta_micros: 0,
            tenant: "synthetic".to_string(),
            conn: 0,
            body,
        };
        let mut w = RecordingWriter::open(&rdir, RecordingOptions::default()).unwrap();
        w.append(frame(FrameBody::Control {
            kind: "Hello".to_string(),
        }))
        .unwrap();
        w.append(frame(FrameBody::Select {
            features: features[..3].to_vec(),
            payloads: payloads[..3].to_vec(),
            trace: Some(intune_core::TraceContext::root(0xabc)),
        }))
        .unwrap();
        // An untraced batch: vectors without payloads still feed stats.
        w.append(frame(FrameBody::Select {
            features: features[3..].to_vec(),
            payloads: Vec::new(),
            trace: None,
        }))
        .unwrap();
        w.flush().unwrap();

        let mut corpus = CorpusStore::new(64);
        let report = compact_recording(&rdir, &mut corpus).unwrap();
        assert_eq!(report.frames, 3);
        assert_eq!(report.select_frames, 2, "the control frame is skipped");
        assert_eq!(report.vectors, 6);
        assert_eq!(report.added, 6);
        assert_eq!(corpus.len(), 6);
        let with_payload = corpus
            .entries()
            .iter()
            .filter(|e| e.payload.is_some())
            .count();
        assert_eq!(with_payload, 3, "only the traced frame ships payloads");
        assert_eq!(
            corpus.evidence().offered,
            0,
            "recorded traffic carries no drift verdict and must stay out \
             of the retrain policy's cycle evidence"
        );

        // Folding the same recording again dedups by feature identity:
        // synthesized sequence numbers advance, so nothing reads stale.
        let again = compact_recording(&rdir, &mut corpus).unwrap();
        assert_eq!(again.added, 0);
        assert_eq!(again.merged, 6);
        assert_eq!(corpus.len(), 6);

        // A missing directory is an empty recording, not an error.
        let empty = compact_recording(&rdir.join("absent"), &mut corpus).unwrap();
        assert_eq!(empty, RecordingCompaction::default());
        std::fs::remove_dir_all(&rdir).ok();
    }

    #[test]
    fn warm_cache_survives_corpus_growth_via_fingerprints() {
        let dir = tmp("warmcache");
        let cache_path = dir.join("retrain.cache.json");
        let b = Synthetic;
        let base = synthetic_corpus(24, 0);
        let engine = Engine::serial();
        let opts = train_options();

        // Cycle 1: corpus holds 6 journaled inputs.
        let jdir1 = dir.join("j1");
        let shifted1 = synthetic_corpus(6, 7);
        journal_inputs(&jdir1, &shifted1, 1024);
        let mut corpus = CorpusStore::new(64);
        compact_journal(&jdir1, &mut corpus).unwrap();
        let first =
            retrain_from_corpus(&b, &base, &opts, &engine, &corpus, Some(&cache_path), 1).unwrap();
        assert_eq!(first.stats.warm_cells, 0, "first cycle runs cold");
        assert!(first.stats.cells_measured > 0);
        assert_eq!(first.stats.merged_inputs, 30);
        assert_eq!(first.artifact.trained_inputs, 30);
        assert_eq!(first.artifact.revision, 1);

        // Cycle 2: more journaled inputs arrive (appended to the same
        // journal — the writer resumes its sequence numbers); indices
        // shift, but the fingerprint-keyed cache re-keys yesterday's
        // cells.
        let shifted2 = synthetic_corpus(4, 13);
        journal_inputs(&jdir1, &shifted2, 1024);
        let mut corpus2 = CorpusStore::new(64);
        compact_journal(&jdir1, &mut corpus2).unwrap();
        assert!(corpus2.len() > corpus.len());
        let cold = retrain_from_corpus(&b, &base, &opts, &engine, &corpus2, None, 2).unwrap();
        let warm =
            retrain_from_corpus(&b, &base, &opts, &engine, &corpus2, Some(&cache_path), 2).unwrap();
        assert!(
            warm.stats.warm_cells > 0,
            "previous cycle's cells warm-start: {:?}",
            warm.stats
        );
        assert!(
            warm.stats.cells_measured < cold.stats.cells_measured,
            "warm cells replace fresh measurement: warm {:?} vs cold {:?}",
            warm.stats,
            cold.stats
        );
        assert_eq!(warm.stats.merged_inputs, 24 + corpus2.len() as u64);
        assert_eq!(
            warm.artifact.to_document(),
            cold.artifact.to_document(),
            "the warm start changes cost, never results"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retraining_is_worker_count_invariant() {
        let dir = tmp("det");
        let jdir = dir.join("j");
        journal_inputs(&jdir, &synthetic_corpus(8, 5), 1024);
        let mut corpus = CorpusStore::new(64);
        compact_journal(&jdir, &mut corpus).unwrap();
        let base = synthetic_corpus(24, 0);
        let opts = train_options();
        let docs: Vec<String> = [1usize, 4]
            .iter()
            .map(|&threads| {
                retrain_from_corpus(
                    &Synthetic,
                    &base,
                    &opts,
                    &Engine::new(threads),
                    &corpus,
                    None,
                    7,
                )
                .unwrap()
                .artifact
                .to_document()
            })
            .collect();
        assert_eq!(
            docs[0], docs[1],
            "same corpus must retrain to byte-identical artifacts at any worker count"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_dir_is_an_empty_journal() {
        let mut corpus = CorpusStore::new(8);
        let report =
            compact_journal(Path::new("/nonexistent/intune-journal"), &mut corpus).unwrap();
        assert_eq!(report, CompactionReport::default());
    }
}
