//! The `intune_retrain` binary: the continuous-learning loop as a CLI.
//!
//! ```text
//! # train a revision-0 artifact for a case and save it
//! intune_retrain --case sort2 --scale micro --train artifacts/sort2.model.json
//!
//! # replay a shifted corpus as traced requests (features + raw-input
//! # payloads) against a running daemon, so its journal fills
//! intune_retrain --case sort2 --scale micro --daemon ADDR --replay 4
//!
//! # one journal→corpus→retrain→push cycle; the daemon's shadow gate
//! # decides the promote
//! intune_retrain --case sort2 --scale micro --daemon ADDR \
//!     --journal jdir --corpus corpus.json --cache cache.json --once \
//!     --min-new 1 --cooldown 0 --mirror 16
//!
//! # deterministic offline retrain from a corpus (CI diffs the artifact
//! # at INTUNE_THREADS=1 vs 4)
//! intune_retrain --case sort2 --scale micro --corpus corpus.json \
//!     --dry-run --revision 7 --emit retrained.model.json
//!
//! # observability / control (--benchmark routes to one tenant of a
//! # multi-tenant daemon; omit it against a single-tenant one)
//! intune_retrain --daemon ADDR [--benchmark NAME] --stats
//! intune_retrain --daemon ADDR [--benchmark NAME] --shutdown
//! ```
//!
//! Exit codes: 0 success (including an idle cycle), 3 the daemon's gate
//! rejected the pushed revision, 2 usage or runtime error.

use intune_core::{Benchmark, Result};
use intune_daemon::DaemonClient;
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::TwoLevelOptions;
use intune_retrain::{
    compact_journal, compact_recording, retrain_from_corpus, run_cycle, AdmissionPolicy,
    CorpusStore, CycleOutcome, RetrainConfig, RetrainPolicy,
};
use intune_serve::ModelArtifact;
use std::path::PathBuf;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Train,
    Replay,
    Cycle,
    DryRun,
    Stats,
    Shutdown,
}

struct Args {
    mode: Mode,
    case: Option<TestCase>,
    scale: String,
    daemon: Option<String>,
    benchmark: String,
    journal: Option<PathBuf>,
    from_recording: Option<PathBuf>,
    corpus: Option<PathBuf>,
    cache: Option<PathBuf>,
    train_out: Option<PathBuf>,
    replay_frames: usize,
    replay_seed: u64,
    loops: u64,
    sleep_ms: u64,
    revision: u64,
    emit: Option<PathBuf>,
    capacity: usize,
    policy: RetrainPolicy,
    mirror: u64,
    mirror_batch: usize,
    keep_segments: bool,
    admission: AdmissionPolicy,
    events: Option<PathBuf>,
    trace_sample: u64,
    spans: Option<PathBuf>,
}

fn main() {
    let args = parse_args();
    let code = match args.mode {
        Mode::Stats => run_stats(&args),
        Mode::Shutdown => run_shutdown(&args),
        Mode::Replay => {
            // Replay builds its corpora at the *shifted* seed directly —
            // the distribution change the daemon will journal.
            let case = args
                .case
                .unwrap_or_else(|| die("--case NAME is required for this mode"));
            let engine = Engine::from_env();
            let shifted = suite_config(&args.scale, args.replay_seed);
            let mut replayer = ReplayVisitor {
                addr: daemon_addr(&args),
                frames: args.replay_frames,
                trace_sample: args.trace_sample,
                spans: args.spans.clone(),
            };
            // ReplayVisitor binds to the tenant named by the case inside
            // visit(), where `benchmark.name()` is in scope.
            exit_code(visit_case(case, &shifted, &engine, &mut replayer))
        }
        _ => {
            let case = args
                .case
                .unwrap_or_else(|| die("--case NAME is required for this mode"));
            let engine = Engine::from_env();
            let cfg = suite_config(&args.scale, 0);
            let mut visitor = RunVisitor { args: &args };
            exit_code(visit_case(case, &cfg, &engine, &mut visitor))
        }
    };
    std::process::exit(code);
}

fn exit_code(outcome: Result<i32>) -> i32 {
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// The suite scale the artifact, base corpus, and replay corpus share.
fn suite_config(scale: &str, seed: u64) -> SuiteConfig {
    let mut cfg = match scale {
        // Mirrors `intune_bench::micro_config` (bench depends on this
        // crate, so the constants are restated here).
        "micro" => SuiteConfig {
            train: 16,
            test: 8,
            clusters: 3,
            ea_population: 6,
            ea_generations: 3,
            folds: 2,
            sort_n: (64, 256),
            cluster_n: (60, 120),
            pack_n: (60, 150),
            svd_n: (8, 12),
            pde2_sizes: vec![7],
            pde3_sizes: vec![3],
            ..SuiteConfig::ci()
        },
        "ci" => SuiteConfig::ci(),
        other => die(&format!("unknown --scale `{other}` (micro or ci)")),
    };
    cfg.seed = seed;
    cfg
}

struct RunVisitor<'a> {
    args: &'a Args,
}

impl CaseVisitor for RunVisitor<'_> {
    type Output = i32;

    fn visit<B: Benchmark + Sync>(
        &mut self,
        _case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        _test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> Result<i32>
    where
        B::Input: Sync + Clone,
    {
        let args = self.args;
        match args.mode {
            Mode::Train => {
                let result = intune_learning::pipeline::learn(benchmark, train, opts, engine)?;
                let artifact = ModelArtifact::export(benchmark, &result);
                let out = args.train_out.clone().expect("mode implies --train PATH");
                artifact.save(&out)?;
                println!(
                    "trained {} revision {} on {} inputs -> {}",
                    artifact.benchmark,
                    artifact.revision,
                    artifact.trained_inputs,
                    out.display()
                );
                Ok(0)
            }
            Mode::DryRun => {
                let corpus_path = args
                    .corpus
                    .clone()
                    .unwrap_or_else(|| die("--dry-run requires --corpus PATH"));
                let mut corpus = CorpusStore::load_or_new(&corpus_path, args.capacity)?;
                corpus.set_admission_policy(args.admission);
                if let Some(journal) = &args.journal {
                    // In-memory compaction only: a dry run never mutates
                    // the on-disk corpus or the journal.
                    compact_journal(journal, &mut corpus)?;
                }
                if let Some(recording) = &args.from_recording {
                    // A wire recording (the daemon's `--record` tap) is
                    // request traffic without served verdicts; its vectors
                    // are folded in as neutral, quiet evidence.
                    let folded = compact_recording(recording, &mut corpus)?;
                    eprintln!(
                        "recording: {} vectors from {} frames ({} added, {} merged)",
                        folded.vectors, folded.select_frames, folded.added, folded.merged
                    );
                }
                let retrained = retrain_from_corpus(
                    benchmark,
                    train,
                    opts,
                    engine,
                    &corpus,
                    None,
                    args.revision,
                )?;
                let emit = args
                    .emit
                    .clone()
                    .unwrap_or_else(|| die("--dry-run requires --emit PATH"));
                retrained.artifact.save(&emit)?;
                println!(
                    "dry-run retrained revision {} on {} inputs ({} journaled, {} cells measured) -> {}",
                    retrained.artifact.revision,
                    retrained.stats.merged_inputs,
                    retrained.stats.new_inputs,
                    retrained.stats.cells_measured,
                    emit.display()
                );
                Ok(0)
            }
            Mode::Cycle => {
                // A multi-tenant daemon journals each benchmark under
                // `DIR/<benchmark>/`; a sole tenant journals to DIR
                // itself. Prefer the per-tenant subdirectory when it
                // exists so one --journal flag works for both layouts.
                let journal_root = args
                    .journal
                    .clone()
                    .unwrap_or_else(|| die("--once/--loop require --journal DIR"));
                let per_tenant = journal_root.join(benchmark.name());
                let cfg = RetrainConfig {
                    journal_dir: if per_tenant.is_dir() {
                        per_tenant
                    } else {
                        journal_root
                    },
                    corpus_path: args
                        .corpus
                        .clone()
                        .unwrap_or_else(|| die("--once/--loop require --corpus PATH")),
                    cache_path: args.cache.clone(),
                    capacity: args.capacity,
                    policy: args.policy.clone(),
                    mirror_target: args.mirror,
                    mirror_batch: args.mirror_batch,
                    remove_compacted: !args.keep_segments,
                    admission: args.admission,
                    // The controller's own cycle journal (one file per
                    // writer — the daemon's `--events` log is separate).
                    events: args.events.as_ref().map(|path| {
                        std::sync::Arc::new(
                            intune_obs::EventLog::open(path)
                                .unwrap_or_else(|e| die(&e.to_string())),
                        )
                    }),
                };
                let client = connect_tenant(args, benchmark.name());
                let mut code = 0;
                for i in 0..args.loops {
                    let report = run_cycle(benchmark, train, opts, engine, &cfg, &client)?;
                    eprintln!(
                        "cycle {}: compacted {} records from {} segments ({} new, {} merged)",
                        i + 1,
                        report.compaction.records,
                        report.compaction.segments,
                        report.compaction.added,
                        report.compaction.merged
                    );
                    if let Some(trigger) = &report.trigger {
                        eprintln!("retrain trigger: {trigger}");
                    }
                    code = match &report.outcome {
                        CycleOutcome::Idle { reason } => {
                            println!("outcome idle: {reason}");
                            0
                        }
                        CycleOutcome::Promoted {
                            revision,
                            trained_inputs,
                            new_inputs,
                            agreement_rate,
                        } => {
                            println!(
                                "outcome promoted revision {revision} trained_inputs \
                                 {trained_inputs} new_inputs {new_inputs} agreement \
                                 {agreement_rate:.4}"
                            );
                            0
                        }
                        CycleOutcome::Rejected { revision, reason } => {
                            println!("outcome rejected revision {revision}: {reason}");
                            3
                        }
                    };
                    if i + 1 < args.loops && args.sleep_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(args.sleep_ms));
                    }
                }
                Ok(code)
            }
            Mode::Stats | Mode::Shutdown | Mode::Replay => {
                unreachable!("dispatched in main before visit_case")
            }
        }
    }
}

/// Replays the case's (shifted) held-out corpus as traced batches.
struct ReplayVisitor {
    addr: String,
    frames: usize,
    /// `--trace-sample N`: head-sample 1-in-N replayed frames into a
    /// span log (0 = off).
    trace_sample: u64,
    /// `--spans DIR`: where the client's span log lives.
    spans: Option<PathBuf>,
}

impl CaseVisitor for ReplayVisitor {
    type Output = i32;

    fn visit<B: Benchmark + Sync>(
        &mut self,
        _case: TestCase,
        benchmark: &B,
        _train: &[B::Input],
        test: &[B::Input],
        _opts: &TwoLevelOptions,
        _engine: &Engine,
    ) -> Result<i32>
    where
        B::Input: Sync + Clone,
    {
        let mut client = DaemonClient::connect_to(&self.addr, benchmark.name())?;
        if self.trace_sample > 0 {
            let dir = self
                .spans
                .clone()
                .unwrap_or_else(|| die("--trace-sample needs --spans DIR"));
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| die(&format!("cannot create span dir: {e}")));
            let path = dir.join("intune-retrain.spans.log");
            let log = intune_obs::SpanLog::open(&path).unwrap_or_else(|e| die(&e.to_string()));
            eprintln!("recording sampled client spans to {}", path.display());
            client.enable_tracing(self.trace_sample, std::sync::Arc::new(log));
        }
        let features: Vec<intune_core::FeatureVector> =
            test.iter().map(|i| benchmark.extract_all(i)).collect();
        let payloads: Vec<serde_json::Value> = test
            .iter()
            .map(|i| benchmark.encode_input(i).unwrap_or(serde_json::Value::Null))
            .collect();
        if payloads.iter().all(serde_json::Value::is_null) {
            eprintln!(
                "note: case `{}` does not support input journaling; \
                 replayed vectors carry no payloads and cannot be retrained on",
                benchmark.name()
            );
        }
        for _ in 0..self.frames {
            client.select_batch_traced(&features, &payloads)?;
        }
        let stats = client.stats()?;
        println!(
            "replayed {} frames x {} vectors; daemon journaled {}",
            self.frames,
            features.len(),
            stats.journaled
        );
        Ok(0)
    }
}

fn run_stats(args: &Args) -> i32 {
    let client = connect(args);
    match client.stats() {
        Ok(stats) => {
            println!("benchmark {}", stats.benchmark);
            println!("tenants {}", stats.tenants);
            println!("revision {}", stats.revision);
            println!("promotions {}", stats.promotions);
            println!("shadow_rejections {}", stats.shadow_rejections);
            println!("journaled {}", stats.journaled);
            println!("recorded {}", stats.recorded);
            println!("recorded_dropped {}", stats.recorded_dropped);
            println!("requests {}", stats.primary.requests);
            if stats.latency.count == 0 {
                // No requests means no percentiles: print `-`, not a
                // fake 0.000 a dashboard would ingest as a measurement.
                println!("latency_ms count 0 p50 - p90 - p99 - p999 - max -");
            } else {
                let ms = |ns: u64| ns as f64 / 1e6;
                println!(
                    "latency_ms count {} p50 {:.3} p90 {:.3} p99 {:.3} p999 {:.3} max {:.3}",
                    stats.latency.count,
                    ms(stats.latency.p50_ns),
                    ms(stats.latency.p90_ns),
                    ms(stats.latency.p99_ns),
                    ms(stats.latency.p999_ns),
                    ms(stats.latency.max_ns)
                );
            }
            if let Some(shadow) = &stats.shadow {
                println!(
                    "shadow revision {} mirrored {} agreement {:.4}",
                    shadow.revision, shadow.mirrored, shadow.agreement_rate
                );
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn run_shutdown(args: &Args) -> i32 {
    let client = connect(args);
    match client.shutdown() {
        Ok(()) => {
            println!("daemon shutting down");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// Dials the daemon bound to one tenant. `--benchmark` (for caseless
/// modes) or the case's own name routes; empty means "the sole tenant".
fn connect_tenant(args: &Args, benchmark: &str) -> DaemonClient {
    let name = if args.benchmark.is_empty() {
        benchmark
    } else {
        &args.benchmark
    };
    DaemonClient::connect_to(&daemon_addr(args), name).unwrap_or_else(|e| die(&e.to_string()))
}

fn connect(args: &Args) -> DaemonClient {
    connect_tenant(args, "")
}

fn daemon_addr(args: &Args) -> String {
    args.daemon
        .clone()
        .unwrap_or_else(|| die("--daemon ADDR is required for this mode"))
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: Mode::Cycle,
        case: None,
        scale: "micro".to_string(),
        daemon: None,
        benchmark: String::new(),
        journal: None,
        from_recording: None,
        corpus: None,
        cache: None,
        train_out: None,
        replay_frames: 1,
        replay_seed: 9001,
        loops: 1,
        sleep_ms: 0,
        revision: 1,
        emit: None,
        capacity: 4096,
        policy: RetrainPolicy::default(),
        mirror: 64,
        mirror_batch: 64,
        keep_segments: false,
        admission: AdmissionPolicy::default(),
        events: None,
        trace_sample: 0,
        spans: None,
    };
    let mut mode: Option<Mode> = None;
    let set_mode = |m: Mode, current: &mut Option<Mode>| {
        if current.is_some() && *current != Some(m) {
            die("exactly one mode flag is allowed");
        }
        *current = Some(m);
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => usage(),
            "--once" => set_mode(Mode::Cycle, &mut mode),
            "--dry-run" => set_mode(Mode::DryRun, &mut mode),
            "--stats" => set_mode(Mode::Stats, &mut mode),
            "--shutdown" => set_mode(Mode::Shutdown, &mut mode),
            "--keep-segments" => args.keep_segments = true,
            _ => {
                i += 1;
                let value = argv
                    .get(i)
                    .unwrap_or_else(|| die(&format!("{flag} needs a value")));
                match flag {
                    "--case" => args.case = Some(parse_case(value)),
                    "--scale" => args.scale = value.clone(),
                    "--daemon" => args.daemon = Some(value.clone()),
                    "--benchmark" => args.benchmark = value.clone(),
                    "--journal" => args.journal = Some(PathBuf::from(value)),
                    "--from-recording" => args.from_recording = Some(PathBuf::from(value)),
                    "--admission" => {
                        args.admission = match value.as_str() {
                            "uniform" => AdmissionPolicy::UniformHash,
                            "novelty" => AdmissionPolicy::Novelty,
                            other => die(&format!(
                                "unknown --admission `{other}` (uniform or novelty)"
                            )),
                        }
                    }
                    "--corpus" => args.corpus = Some(PathBuf::from(value)),
                    "--cache" => args.cache = Some(PathBuf::from(value)),
                    "--train" => {
                        set_mode(Mode::Train, &mut mode);
                        args.train_out = Some(PathBuf::from(value));
                    }
                    "--replay" => {
                        set_mode(Mode::Replay, &mut mode);
                        args.replay_frames = parse(flag, value);
                    }
                    "--loop" => {
                        set_mode(Mode::Cycle, &mut mode);
                        args.loops = parse(flag, value);
                    }
                    "--sleep-ms" => args.sleep_ms = parse(flag, value),
                    "--replay-seed" => args.replay_seed = parse(flag, value),
                    "--revision" => args.revision = parse(flag, value),
                    "--emit" => args.emit = Some(PathBuf::from(value)),
                    "--capacity" => args.capacity = parse(flag, value),
                    "--min-new" => args.policy.min_new_inputs = parse(flag, value),
                    "--drift-rate" => args.policy.drift_trip_rate = parse(flag, value),
                    "--min-drift-obs" => args.policy.min_drift_observations = parse(flag, value),
                    "--cooldown" => args.policy.cooldown_records = parse(flag, value),
                    "--mirror" => args.mirror = parse(flag, value),
                    "--mirror-batch" => args.mirror_batch = parse(flag, value),
                    "--events" => args.events = Some(PathBuf::from(value)),
                    "--trace-sample" => args.trace_sample = parse(flag, value),
                    "--spans" => args.spans = Some(PathBuf::from(value)),
                    other => die(&format!("unknown flag {other}")),
                }
            }
        }
        i += 1;
    }
    args.mode = mode.unwrap_or(Mode::Cycle);
    args
}

fn parse_case(name: &str) -> TestCase {
    TestCase::all()
        .into_iter()
        .find(|c| c.name() == name)
        .unwrap_or_else(|| {
            die(&format!(
                "unknown case `{name}` (one of: {})",
                TestCase::all().map(|c| c.name()).join(", ")
            ))
        })
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag}: cannot parse `{value}`")))
}

fn usage() -> ! {
    eprintln!(
        "usage: intune_retrain --case NAME [--scale micro|ci] MODE [options]\n\
         modes:\n\
         \x20 --train PATH      train + save a revision-0 artifact\n\
         \x20 --replay N        send N traced frames of a shifted corpus (--replay-seed S)\n\
         \x20 --once | --loop N run the journal->corpus->retrain->push cycle\n\
         \x20 --dry-run         offline retrain from --corpus; --revision R --emit PATH\n\
         \x20 --stats           print daemon counters\n\
         \x20 --shutdown        stop the daemon\n\
         options: --daemon ADDR --benchmark NAME --journal DIR --corpus PATH --cache PATH\n\
         \x20 --from-recording DIR (dry-run: also fold a wire recording into the corpus)\n\
         \x20 --admission uniform|novelty (corpus admission policy; default uniform)\n\
         \x20 --capacity N --min-new N --drift-rate X --min-drift-obs N --cooldown N\n\
         \x20 --mirror N --mirror-batch N --keep-segments --sleep-ms MS\n\
         \x20 --events PATH (cycle modes: append a RetrainCycle event per cycle)\n\
         \x20 --trace-sample N --spans DIR (replay: head-sample 1-in-N frames\n\
         \x20 into DIR/intune-retrain.spans.log; the trace context rides the wire)"
    );
    std::process::exit(0)
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}
