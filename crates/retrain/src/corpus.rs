//! The persistent input corpus: journal segments compacted into a
//! deduplicated, capacity-bounded store with streaming per-feature
//! statistics.
//!
//! A journal is an unbounded log of everything a daemon served; a corpus
//! is the bounded, deduplicated distillation retraining actually
//! consumes. Compaction folds journal records in one at a time:
//!
//! * **dedup** — records are keyed by the canonical bytes of their
//!   feature vector, so replay echoes (the retrain controller re-sends
//!   corpus vectors to warm a staged shadow) and genuinely recurring
//!   inputs merge into one entry with an observation count;
//! * **capacity bound** — above `capacity` entries the store keeps a
//!   deterministic reservoir: every record carries a priority hashed from
//!   its identity and sequence number (a per-record seed, no RNG state),
//!   and the highest-priority entry is evicted. The surviving set depends
//!   only on the journal's contents — same journal, same corpus, any
//!   process, any thread count;
//! * **streaming statistics** — Welford mean/variance plus min/max per
//!   feature slot over *all* offered records (evicted ones included), so
//!   the observed production distribution survives the down-sampling.
//!
//! The store persists as one checksummed document
//! (`intune-input-corpus/1`) and tracks **cycle evidence** — journaled
//! records, out-of-distribution flags, and new retrainable inputs since
//! the last retrain cycle — which is what the
//! [`RetrainPolicy`](crate::RetrainPolicy) decides on.

use intune_core::{codec, Benchmark, Error, Result};
use intune_serve::JournalRecord;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::HashMap;
use std::path::Path;

/// Envelope schema name of persisted corpora.
pub const CORPUS_SCHEMA: &str = "intune-input-corpus";
/// Current corpus schema version.
pub const CORPUS_VERSION: u32 = 1;

/// One deduplicated input in the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Dedup identity: FNV-1a 64 of the canonical feature-vector JSON.
    pub key: u64,
    /// Journal sequence number of the first observation.
    pub first_seq: u64,
    /// Deterministic reservoir priority (hash of key ⊕ first_seq); the
    /// highest priority is evicted first when the corpus is full.
    pub priority: u64,
    /// How many journal records merged into this entry.
    pub count: u64,
    /// Landmark served at first observation (selection evidence).
    pub landmark: u64,
    /// The served feature vector.
    pub features: intune_core::FeatureVector,
    /// Raw-input payload (`Benchmark::encode_input`), when any merged
    /// record carried one — the part retraining can re-measure.
    pub payload: Option<Value>,
}

/// Streaming statistics of one feature slot (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureStat {
    /// Observations folded in.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations (variance = m2 / (count - 1)).
    pub m2: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
}

impl FeatureStat {
    fn empty() -> Self {
        FeatureStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }
}

/// How the corpus draws reservoir priorities for newly-admitted entries.
///
/// A runtime-only knob, deliberately **not** persisted in the corpus
/// document: the saved bytes of a corpus built under the default policy
/// are identical to what every earlier version wrote, and a reloaded
/// corpus defaults back to [`AdmissionPolicy::UniformHash`] until the
/// operator opts in again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// The classic deterministic reservoir: priority is a pure hash of
    /// the record's identity and sequence number, so every unique input
    /// has an equal chance of surviving the capacity bound.
    #[default]
    UniformHash,
    /// Novelty-weighted admission: the hash draw becomes the tiebreak
    /// and the leading bits of the priority encode how far the record
    /// sits from the per-slot streaming means (mean |z| over slots with
    /// at least two observations and positive variance, measured
    /// *before* the record updates the stats). Far-from-distribution
    /// inputs outlive near-duplicates at a fixed capacity — the corpus
    /// keeps the inputs retraining learns the most from. Records scored
    /// while the statistics are immature (no qualifying slot) count as
    /// maximally novel.
    Novelty,
}

/// What happened to one journal record offered to the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// A new entry was added (possibly evicting another).
    Added,
    /// The record merged into an existing entry.
    Merged,
    /// The corpus is full and the record lost its reservoir draw.
    Rejected,
    /// The record's sequence number was already absorbed (re-compaction
    /// of a segment seen before).
    Stale,
}

/// Evidence accumulated since the last retrain cycle — the input of
/// [`RetrainPolicy::decide`](crate::RetrainPolicy::decide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEvidence {
    /// Journal records offered since the last cycle (duplicates included).
    pub offered: u64,
    /// Of those, how many the serving drift probe flagged
    /// out-of-distribution.
    pub ood: u64,
    /// New retrainable inputs (unique, payload-carrying) since the last
    /// cycle.
    pub new_inputs: u64,
}

impl CycleEvidence {
    /// Out-of-distribution fraction among records offered this cycle.
    pub fn drift_rate(&self) -> f64 {
        intune_exec::hit_rate(self.ood, self.offered)
    }
}

/// Serialized form of the store (everything but the rebuildable index).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CorpusDoc {
    capacity: u64,
    next_seq: u64,
    offered: u64,
    deduped: u64,
    evicted: u64,
    rejected: u64,
    cycles: u64,
    offered_since_cycle: u64,
    ood_since_cycle: u64,
    new_since_cycle: u64,
    stats: Vec<FeatureStat>,
    entries: Vec<CorpusEntry>,
}

/// The deduplicated, capacity-bounded input corpus (see module docs).
#[derive(Debug)]
pub struct CorpusStore {
    doc: CorpusDoc,
    /// key → index into `doc.entries`; rebuilt on load and after evicts.
    index: HashMap<u64, usize>,
    /// Runtime-only admission knob (see [`AdmissionPolicy`]).
    policy: AdmissionPolicy,
}

impl CorpusStore {
    /// An empty corpus bounded at `capacity` unique entries (≥ 1).
    pub fn new(capacity: usize) -> Self {
        CorpusStore {
            doc: CorpusDoc {
                capacity: capacity.max(1) as u64,
                next_seq: 0,
                offered: 0,
                deduped: 0,
                evicted: 0,
                rejected: 0,
                cycles: 0,
                offered_since_cycle: 0,
                ood_since_cycle: 0,
                new_since_cycle: 0,
                stats: Vec::new(),
                entries: Vec::new(),
            },
            index: HashMap::new(),
            policy: AdmissionPolicy::default(),
        }
    }

    /// Loads a corpus persisted by [`CorpusStore::save`].
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] on IO failure, checksum mismatch, or a
    /// malformed payload.
    pub fn load(path: &Path) -> Result<Self> {
        let payload = codec::read_document(path, CORPUS_SCHEMA, CORPUS_VERSION)?;
        let doc: CorpusDoc = serde_json::from_value(&payload)
            .map_err(|e| Error::artifact(format!("malformed corpus payload: {e}")))?;
        let index = doc
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key, i))
            .collect();
        Ok(CorpusStore {
            doc,
            index,
            policy: AdmissionPolicy::default(),
        })
    }

    /// [`CorpusStore::load`] when `path` exists, otherwise a fresh corpus
    /// at `capacity`. The requested capacity is applied either way — an
    /// operator shrinking `--capacity` against an existing corpus gets
    /// the bound they asked for (excess entries are evicted by the same
    /// highest-priority rule the reservoir uses), not a silently-ignored
    /// knob.
    ///
    /// # Errors
    /// Same as [`CorpusStore::load`].
    pub fn load_or_new(path: &Path, capacity: usize) -> Result<Self> {
        if path.exists() {
            let mut store = Self::load(path)?;
            store.set_capacity(capacity);
            Ok(store)
        } else {
            Ok(Self::new(capacity))
        }
    }

    /// Re-bounds the corpus at `capacity` (≥ 1), evicting
    /// highest-priority entries until it fits — the reservoir rule,
    /// applied retroactively.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.doc.capacity = capacity.max(1) as u64;
        while self.doc.entries.len() as u64 > self.doc.capacity {
            let victim = self
                .doc
                .entries
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.priority)
                .map(|(i, _)| i)
                .expect("non-empty corpus");
            let evicted = self.doc.entries.remove(victim);
            self.index.remove(&evicted.key);
            self.doc.evicted += 1;
        }
        self.index = self
            .doc
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key, i))
            .collect();
    }

    /// Persists the corpus as a checksummed document — deterministic:
    /// the same corpus state writes the same bytes.
    ///
    /// # Errors
    /// Returns [`Error::Artifact`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        codec::write_document(
            path,
            CORPUS_SCHEMA,
            CORPUS_VERSION,
            serde_json::to_value(&self.doc),
        )
    }

    /// Selects how new entries draw their reservoir priority. Applies to
    /// offers from this point on; already-admitted entries keep the
    /// priority they were admitted under.
    pub fn set_admission_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// The active admission policy.
    pub fn admission_policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Folds one journal record in (see module docs for dedup, reservoir
    /// and statistics semantics). Records whose sequence number was
    /// already absorbed are ignored ([`Offer::Stale`]), which makes
    /// re-compaction of a previously-seen segment idempotent.
    pub fn offer(&mut self, record: &JournalRecord) -> Offer {
        self.offer_impl(record, false)
    }

    /// [`CorpusStore::offer`] without counting the record into the cycle
    /// evidence (`offered`/`ood`/`new_inputs` stay untouched; lifetime
    /// counters, dedup, stats and the reservoir all still apply). The
    /// retrain controller uses this to absorb its **own** mirror-replay
    /// echoes at the end of a cycle: journaled like any primary answer,
    /// they must not masquerade as fresh production evidence — a
    /// drift-responsive policy fed its own echoes would retrain in a
    /// self-sustaining loop.
    pub fn offer_quiet(&mut self, record: &JournalRecord) -> Offer {
        self.offer_impl(record, true)
    }

    fn offer_impl(&mut self, record: &JournalRecord, quiet: bool) -> Offer {
        if record.seq < self.doc.next_seq {
            return Offer::Stale;
        }
        self.doc.next_seq = record.seq + 1;
        self.doc.offered += 1;
        if !quiet {
            self.doc.offered_since_cycle += 1;
            if record.out_of_distribution {
                self.doc.ood_since_cycle += 1;
            }
        }

        // Novelty is scored against the statistics as they stood *before*
        // this record — a record must not dilute its own distance.
        let dense = record.features.dense();
        let novelty = match self.policy {
            AdmissionPolicy::UniformHash => None,
            AdmissionPolicy::Novelty => Some(novelty_score(&self.doc.stats, &dense)),
        };

        // Streaming per-slot statistics over every offered record.
        if self.doc.stats.is_empty() {
            self.doc.stats = vec![FeatureStat::empty(); dense.len()];
        }
        if self.doc.stats.len() == dense.len() {
            for (stat, x) in self.doc.stats.iter_mut().zip(&dense) {
                if x.is_finite() {
                    stat.observe(*x);
                }
            }
        }

        let key = feature_key(&record.features);
        if let Some(&at) = self.index.get(&key) {
            let entry = &mut self.doc.entries[at];
            entry.count += 1;
            self.doc.deduped += 1;
            if entry.payload.is_none() && record.payload.is_some() {
                // A known vector finally arrived with its raw input: the
                // corpus just gained a retrainable example.
                entry.payload = record.payload.clone();
                if !quiet {
                    self.doc.new_since_cycle += 1;
                }
            }
            return Offer::Merged;
        }

        let entry = CorpusEntry {
            key,
            first_seq: record.seq,
            priority: match novelty {
                None => reservoir_priority(key, record.seq),
                Some(score) => novelty_priority(score, key, record.seq),
            },
            count: 1,
            landmark: record.landmark,
            features: record.features.clone(),
            payload: record.payload.clone(),
        };
        let had_payload = entry.payload.is_some();
        self.index.insert(key, self.doc.entries.len());
        self.doc.entries.push(entry);

        if self.doc.entries.len() as u64 > self.doc.capacity {
            let victim = self
                .doc
                .entries
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.priority)
                .map(|(i, _)| i)
                .expect("non-empty corpus");
            let lost_the_draw = victim == self.doc.entries.len() - 1;
            let evicted = self.doc.entries.remove(victim);
            self.index.remove(&evicted.key);
            for (i, e) in self.doc.entries.iter().enumerate().skip(victim) {
                self.index.insert(e.key, i);
            }
            if lost_the_draw {
                self.doc.rejected += 1;
                return Offer::Rejected;
            }
            self.doc.evicted += 1;
        }
        if had_payload && !quiet {
            self.doc.new_since_cycle += 1;
        }
        Offer::Added
    }

    /// The surviving entries, ascending by first observation.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.doc.entries
    }

    /// Number of unique entries currently held.
    pub fn len(&self) -> usize {
        self.doc.entries.len()
    }

    /// Whether the corpus holds no entries.
    pub fn is_empty(&self) -> bool {
        self.doc.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.doc.capacity as usize
    }

    /// First journal sequence number not yet absorbed.
    pub fn next_seq(&self) -> u64 {
        self.doc.next_seq
    }

    /// Total journal records offered over the corpus's lifetime.
    pub fn offered(&self) -> u64 {
        self.doc.offered
    }

    /// Records merged into existing entries over the lifetime.
    pub fn deduped(&self) -> u64 {
        self.doc.deduped
    }

    /// Entries evicted by the reservoir bound over the lifetime
    /// (records rejected on arrival count separately).
    pub fn evicted(&self) -> u64 {
        self.doc.evicted
    }

    /// Retrain cycles marked on this corpus.
    pub fn cycles(&self) -> u64 {
        self.doc.cycles
    }

    /// Per-feature-slot streaming statistics over all offered records.
    pub fn feature_stats(&self) -> &[FeatureStat] {
        &self.doc.stats
    }

    /// Evidence accumulated since the last retrain cycle.
    pub fn evidence(&self) -> CycleEvidence {
        CycleEvidence {
            offered: self.doc.offered_since_cycle,
            ood: self.doc.ood_since_cycle,
            new_inputs: self.doc.new_since_cycle,
        }
    }

    /// Marks a retrain cycle: bumps the cycle counter and re-arms the
    /// cycle evidence. Called after a retrain *attempt* (promoted or
    /// refused), so the policy's cooldown spans attempts, not successes.
    pub fn mark_cycle(&mut self) {
        self.doc.cycles += 1;
        self.doc.offered_since_cycle = 0;
        self.doc.ood_since_cycle = 0;
        self.doc.new_since_cycle = 0;
    }

    /// Decodes the corpus's payload-carrying entries back into benchmark
    /// inputs, in first-observation order — the journaled half of a
    /// retraining run. Returns the inputs and how many payload-carrying
    /// entries failed to decode (foreign or corrupt payloads are skipped,
    /// never fatal).
    pub fn retrain_inputs<B: Benchmark>(&self, benchmark: &B) -> (Vec<B::Input>, u64) {
        let mut inputs = Vec::new();
        let mut skipped = 0u64;
        for entry in &self.doc.entries {
            if let Some(payload) = &entry.payload {
                match benchmark.decode_input(payload) {
                    Some(input) => inputs.push(input),
                    None => skipped += 1,
                }
            }
        }
        (inputs, skipped)
    }
}

/// Dedup identity of a feature vector: FNV-1a 64 over its canonical JSON.
pub fn feature_key(features: &intune_core::FeatureVector) -> u64 {
    let canonical = serde_json::to_string(&serde_json::to_value(features))
        .expect("value printing is infallible");
    codec::fnv1a64(canonical.as_bytes())
}

/// Deterministic reservoir priority: a per-record seed hashed from the
/// record's identity and sequence number. No RNG state, so compaction is
/// reproducible from the journal alone.
fn reservoir_priority(key: u64, seq: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&key.to_le_bytes());
    bytes[8..].copy_from_slice(&seq.to_le_bytes());
    codec::fnv1a64(&bytes)
}

/// Distance of one dense vector from the corpus's streaming means: the
/// mean absolute z-score over slots with at least two observations and
/// positive variance. Infinite (maximally novel) when no slot qualifies
/// — immature statistics must not condemn early records.
fn novelty_score(stats: &[FeatureStat], dense: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut slots = 0u32;
    for (stat, x) in stats.iter().zip(dense) {
        if stat.count < 2 || !x.is_finite() {
            continue;
        }
        let sd = stat.variance().sqrt();
        if sd > 0.0 {
            sum += ((x - stat.mean) / sd).abs();
            slots += 1;
        }
    }
    if slots == 0 {
        f64::INFINITY
    } else {
        sum / f64::from(slots)
    }
}

/// Novelty-weighted reservoir priority: the quantized score occupies the
/// high 32 bits (inverted — eviction takes the *maximum* priority, so
/// higher novelty must map lower) and the uniform hash draw survives in
/// the low 32 bits as the deterministic tiebreak between equally-novel
/// records.
fn novelty_priority(score: f64, key: u64, seq: u64) -> u64 {
    let quantized = if score.is_finite() {
        (score * 1024.0).min(u32::MAX as f64) as u64
    } else {
        u64::from(u32::MAX)
    };
    ((u64::from(u32::MAX) - quantized) << 32) | (reservoir_priority(key, seq) & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intune_core::{FeatureDef, FeatureId, FeatureSample, FeatureVector};

    fn features(kind: f64, size: f64) -> FeatureVector {
        let defs = [FeatureDef::new("kind", 1), FeatureDef::new("size", 1)];
        let mut fv = FeatureVector::empty(&defs);
        fv.insert(
            FeatureId {
                property: 0,
                level: 0,
            },
            FeatureSample::new(kind, 1.0),
        )
        .unwrap();
        fv.insert(
            FeatureId {
                property: 1,
                level: 0,
            },
            FeatureSample::new(size, 2.0),
        )
        .unwrap();
        fv
    }

    fn record(seq: u64, kind: f64, size: f64, ood: bool, payload: bool) -> JournalRecord {
        JournalRecord {
            seq,
            revision: 1,
            landmark: kind as u64,
            out_of_distribution: ood,
            fell_back: false,
            features: features(kind, size),
            payload: payload.then(|| Value::Array(vec![Value::Float(kind), Value::Float(size)])),
            trace_id: None,
        }
    }

    #[test]
    fn dedup_merges_and_payload_upgrades_count_as_new() {
        let mut c = CorpusStore::new(8);
        assert_eq!(c.offer(&record(0, 1.0, 10.0, false, false)), Offer::Added);
        assert_eq!(c.offer(&record(1, 1.0, 10.0, false, false)), Offer::Merged);
        assert_eq!(
            c.evidence().new_inputs,
            0,
            "payload-free entries are not retrainable"
        );
        // Same vector arrives with its raw input: now it counts.
        assert_eq!(c.offer(&record(2, 1.0, 10.0, false, true)), Offer::Merged);
        assert_eq!(c.evidence().new_inputs, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.entries()[0].count, 3);
        assert_eq!(c.deduped(), 2);
        // Stale sequence numbers are idempotently ignored.
        assert_eq!(c.offer(&record(1, 9.0, 9.0, false, true)), Offer::Stale);
        assert_eq!(c.offered(), 3);
    }

    #[test]
    fn capacity_bound_is_a_deterministic_reservoir() {
        let offer_all = |cap: usize, n: u64| -> Vec<u64> {
            let mut c = CorpusStore::new(cap);
            for seq in 0..n {
                c.offer(&record(seq, seq as f64, 100.0 + seq as f64, false, true));
            }
            assert!(c.len() <= cap);
            c.entries().iter().map(|e| e.first_seq).collect()
        };
        let a = offer_all(6, 40);
        let b = offer_all(6, 40);
        assert_eq!(a, b, "same journal, same survivors");
        assert_eq!(a.len(), 6);
        let sorted = {
            let mut s = a.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(a, sorted, "entries stay in first-observation order");
    }

    #[test]
    fn novelty_policy_displaces_near_duplicates_with_far_inputs() {
        // A tight cluster of near-duplicate inputs fills the corpus,
        // then a stream of far-from-distribution inputs arrives (each
        // far from the cluster *and* from the previously-absorbed
        // outliers, so every one scores novel at admission time).
        let build = |policy: AdmissionPolicy| {
            let mut c = CorpusStore::new(4);
            c.set_admission_policy(policy);
            for seq in 0..16 {
                c.offer(&record(
                    seq,
                    1.0,
                    100.0 + (seq % 8) as f64 * 0.25,
                    false,
                    true,
                ));
            }
            for (i, seq) in (16u64..19).enumerate() {
                let size = [1e4, 1e6, 1e8][i];
                c.offer(&record(seq, 1.0, size, false, true));
            }
            c
        };

        let novel = build(AdmissionPolicy::Novelty);
        assert_eq!(novel.len(), 4);
        let outliers = novel
            .entries()
            .iter()
            .filter(|e| e.features.dense()[1] >= 1e4)
            .count();
        // The first cluster records were admitted while the statistics
        // were immature (maximally novel by definition), so up to two of
        // them keep their protected slots; every other cluster member is
        // displaced by the novel stream.
        assert!(
            outliers >= 2,
            "novel inputs must displace near-duplicates, kept {outliers} of 3: {:?}",
            novel
                .entries()
                .iter()
                .map(|e| e.first_seq)
                .collect::<Vec<_>>()
        );
        // Deterministic like the uniform reservoir: same stream, same
        // survivors.
        let again = build(AdmissionPolicy::Novelty);
        assert_eq!(again.entries(), novel.entries());

        // The default policy still assigns the pure hash draw, so an
        // operator who never opts in gets byte-identical corpora to
        // every earlier version.
        let uniform = build(AdmissionPolicy::UniformHash);
        for e in uniform.entries() {
            assert_eq!(e.priority, reservoir_priority(e.key, e.first_seq));
        }
    }

    #[test]
    fn cycle_evidence_tracks_ood_and_rearms() {
        let mut c = CorpusStore::new(8);
        for seq in 0..6 {
            c.offer(&record(seq, seq as f64, 10.0, seq % 2 == 0, true));
        }
        let ev = c.evidence();
        assert_eq!(ev.offered, 6);
        assert_eq!(ev.ood, 3);
        assert_eq!(ev.new_inputs, 6);
        assert!((ev.drift_rate() - 0.5).abs() < 1e-12);
        c.mark_cycle();
        assert_eq!(c.cycles(), 1);
        let ev = c.evidence();
        assert_eq!((ev.offered, ev.ood, ev.new_inputs), (0, 0, 0));
        assert_eq!(c.offered(), 6, "lifetime counters keep counting");
    }

    #[test]
    fn feature_stats_stream_over_all_offers_including_duplicates() {
        let mut c = CorpusStore::new(2);
        for (seq, size) in [(0u64, 10.0), (1, 20.0), (2, 30.0), (3, 20.0)] {
            c.offer(&record(seq, 1.0, size, false, false));
        }
        let stats = c.feature_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[1].count, 4);
        assert!((stats[1].mean - 20.0).abs() < 1e-12);
        assert_eq!(stats[1].min, 10.0);
        assert_eq!(stats[1].max, 30.0);
        // Welford matches the two-pass variance.
        let xs = [10.0f64, 20.0, 30.0, 20.0];
        let mean = xs.iter().sum::<f64>() / 4.0;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 3.0;
        assert!((stats[1].variance() - var).abs() < 1e-12);
    }

    #[test]
    fn quiet_offers_feed_dedup_and_stats_but_never_cycle_evidence() {
        let mut c = CorpusStore::new(8);
        c.offer(&record(0, 1.0, 10.0, true, true));
        let loud = c.evidence();
        // Echo traffic absorbed quietly: lifetime counters, dedup and
        // stats move; the retrain evidence does not.
        assert_eq!(
            c.offer_quiet(&record(1, 1.0, 10.0, true, true)),
            Offer::Merged
        );
        assert_eq!(
            c.offer_quiet(&record(2, 9.0, 90.0, true, true)),
            Offer::Added
        );
        assert_eq!(c.evidence(), loud, "quiet offers leave evidence untouched");
        assert_eq!(c.offered(), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.feature_stats()[0].count, 3);
        assert_eq!(c.next_seq(), 3, "watermark still advances");
    }

    #[test]
    fn load_or_new_applies_the_requested_capacity() {
        let dir = std::env::temp_dir().join(format!(
            "intune-corpus-cap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        let mut c = CorpusStore::new(64);
        for seq in 0..10 {
            c.offer(&record(seq, seq as f64, 10.0 * seq as f64, false, true));
        }
        c.save(&path).unwrap();

        // Shrinking --capacity against an existing corpus takes effect:
        // excess entries are evicted by the reservoir rule.
        let shrunk = CorpusStore::load_or_new(&path, 4).unwrap();
        assert_eq!(shrunk.capacity(), 4);
        assert_eq!(shrunk.len(), 4);
        // Deterministic: reloading shrinks to the same survivors.
        let again = CorpusStore::load_or_new(&path, 4).unwrap();
        assert_eq!(again.entries(), shrunk.entries());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let mut c = CorpusStore::new(4);
        for seq in 0..9 {
            c.offer(&record(
                seq,
                (seq % 3) as f64,
                10.0 * seq as f64,
                seq % 4 == 0,
                seq % 2 == 0,
            ));
        }
        c.mark_cycle();
        c.offer(&record(9, 7.0, 7.0, true, true));

        let dir = std::env::temp_dir().join(format!(
            "intune-corpus-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        c.save(&path).unwrap();
        let loaded = CorpusStore::load(&path).unwrap();
        assert_eq!(loaded.entries(), c.entries());
        assert_eq!(loaded.evidence(), c.evidence());
        assert_eq!(loaded.next_seq(), c.next_seq());
        assert_eq!(loaded.cycles(), 1);
        assert_eq!(loaded.feature_stats(), c.feature_stats());
        // Re-saving writes the same bytes.
        let again = dir.join("corpus2.json");
        loaded.save(&again).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&again).unwrap()
        );
        // Tampering is rejected.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"count\"", "\"c0unt\"", 1);
        assert_ne!(tampered, text, "tamper site must exist");
        std::fs::write(&path, tampered).unwrap();
        assert!(CorpusStore::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
