//! Ablation benches: the design choices DESIGN.md calls out — K-means vs
//! random landmark selection (§3.1), the λ cost-matrix weight (§3.2), and
//! cluster-count scaling (§4.2).

use criterion::{criterion_group, criterion_main, Criterion};
use intune_autotuner::TunerOptions;
use intune_exec::Engine;
use intune_learning::labels::{cost_matrix, label_inputs};
use intune_learning::level1::{run_level1, LandmarkStrategy, Level1Options};
use intune_sortlib::{PolySort, SortCorpus};
use std::time::Duration;

fn bench_landmark_strategies(c: &mut Criterion) {
    let program = PolySort::new(256);
    let corpus = SortCorpus::synthetic(24, 64, 256, 1);
    let mut group = c.benchmark_group("ablation_landmark_strategy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for (name, strategy) in [
        ("kmeans", LandmarkStrategy::KMeansMedoids),
        ("random", LandmarkStrategy::UniformRandom),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_level1(
                    &program,
                    &corpus.inputs,
                    &Level1Options {
                        clusters: 4,
                        tuner: TunerOptions {
                            population: 6,
                            generations: 3,
                            ..TunerOptions::quick(0)
                        },
                        strategy,
                        seed: 0,
                    },
                    &Engine::from_env(),
                )
                .expect("level 1 failed");
                criterion::black_box(r.landmarks.len())
            })
        });
    }
    group.finish();
}

fn bench_lambda_sweep(c: &mut Criterion) {
    // Precompute the Level-1 evidence once; sweep only the cost-matrix
    // construction + labeling, which is what λ parameterizes.
    let program = PolySort::new(256);
    let corpus = SortCorpus::synthetic(32, 64, 256, 2);
    let r = run_level1(
        &program,
        &corpus.inputs,
        &Level1Options {
            clusters: 4,
            tuner: TunerOptions {
                population: 6,
                generations: 3,
                ..TunerOptions::quick(1)
            },
            ..Level1Options::default()
        },
        &Engine::from_env(),
    )
    .expect("level 1 failed");
    let labels = label_inputs(&r.perf, None);

    let mut group = c.benchmark_group("ablation_lambda");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for lambda in [0.001, 0.5, 1.0] {
        group.bench_function(format!("lambda_{lambda}"), |b| {
            b.iter(|| {
                let cm = cost_matrix(&r.perf, &labels, None, lambda);
                criterion::black_box(cm[0].iter().sum::<f64>())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_landmark_strategies, bench_lambda_sweep);
criterion_main!(benches);
