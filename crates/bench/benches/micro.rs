//! Micro-benchmarks for the underlying algorithms: the five sorts across
//! input classes, the 13 packers, the PDE solver menu, SVD methods, and the
//! ML/EA substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intune_autotuner::{EvolutionaryTuner, Objective, TunerOptions};
use intune_binpacklib::{Heuristic, PackInputClass};
use intune_core::{Benchmark, Cost, ExecutionReport};
use intune_linalg::svd::{svd_jacobi, svd_lanczos, svd_subspace};
use intune_linalg::Matrix;
use intune_ml::{DecisionTree, KMeans, KMeansOptions, TreeOptions};
use intune_pde::dim2::Grid2d;
use intune_pde::level::{cg_solve, mg_solve, smooth_solve, MgOptions, Smoother};
use intune_sortlib::algorithms::{bitonic_sort, insertion_sort, radix_sort};
use intune_sortlib::{PolySort, SortInputClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_sorts(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("sort_algorithms");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for class in [
        SortInputClass::Random,
        SortInputClass::Sorted,
        SortInputClass::FewDistinct,
    ] {
        let input = class.generate(4096, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("insertion", format!("{class:?}")),
            &input,
            |b, input| {
                // Insertion on random 4096 is quadratic; bound it via a
                // smaller slice to keep the bench affordable.
                let slice = &input[..512.min(input.len())];
                b.iter(|| {
                    let mut v = slice.to_vec();
                    let mut cost = Cost::new();
                    insertion_sort(&mut v, &mut cost);
                    criterion::black_box(cost.total())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("radix", format!("{class:?}")),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut v = input.clone();
                    let mut cost = Cost::new();
                    radix_sort(&mut v, &mut cost);
                    criterion::black_box(cost.total())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitonic", format!("{class:?}")),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut v = input.clone();
                    let mut cost = Cost::new();
                    bitonic_sort(&mut v, &mut cost);
                    criterion::black_box(cost.total())
                })
            },
        );
        let program = PolySort::new(4096);
        let cfg = program.space().default_config();
        group.bench_with_input(
            BenchmarkId::new("polyalgorithm_default", format!("{class:?}")),
            &input,
            |b, input| b.iter(|| criterion::black_box(program.run(&cfg, input).cost)),
        );
    }
    group.finish();
}

fn bench_packers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let items = PackInputClass::Uniform.generate(1000, &mut rng);
    let mut group = c.benchmark_group("binpacking_heuristics");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for h in [
        Heuristic::NextFit,
        Heuristic::FirstFit,
        Heuristic::BestFitDecreasing,
        Heuristic::ModifiedFirstFitDecreasing,
    ] {
        group.bench_function(h.name(), |b| {
            b.iter(|| criterion::black_box(h.pack(&items).occupancy()))
        });
    }
    group.finish();
}

fn bench_pde_solvers(c: &mut Criterion) {
    let n = 31;
    let grid = Grid2d::poisson(n);
    let mut rng = StdRng::seed_from_u64(3);
    let f: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("pde_solvers_n31");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("mg_v22_x8", |b| {
        b.iter(|| criterion::black_box(mg_solve(&grid, &f, 8, &MgOptions::default()).1))
    });
    group.bench_function("cg_x200", |b| {
        b.iter(|| criterion::black_box(cg_solve(&grid, &f, 200).1))
    });
    group.bench_function("gauss_seidel_x100", |b| {
        b.iter(|| criterion::black_box(smooth_solve(&grid, &f, Smoother::GaussSeidel, 1.0, 100).1))
    });
    group.finish();
}

fn bench_svd_methods(c: &mut Criterion) {
    let a = Matrix::from_fn(32, 24, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
    let mut group = c.benchmark_group("svd_methods_32x24");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("jacobi_full", |b| {
        b.iter(|| criterion::black_box(svd_jacobi(&a).sigma[0]))
    });
    group.bench_function("subspace_k4_i6", |b| {
        b.iter(|| criterion::black_box(svd_subspace(&a, 4, 6, 0).sigma[0]))
    });
    group.bench_function("lanczos_k4", |b| {
        b.iter(|| criterion::black_box(svd_lanczos(&a, 4, 0).sigma[0]))
    });
    group.finish();
}

fn bench_ml_and_ea(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let points: Vec<Vec<f64>> = (0..400)
        .map(|_| (0..6).map(|_| rng.gen_range(-10.0..10.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..400).map(|i| i % 4).collect();
    let cost: Vec<Vec<f64>> = (0..4)
        .map(|i| (0..4).map(|j| if i == j { 0.0 } else { 1.0 }).collect())
        .collect();

    let mut group = c.benchmark_group("ml_substrate");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("kmeans_k8_400x6", |b| {
        b.iter(|| {
            criterion::black_box(
                KMeans::fit(
                    &points,
                    KMeansOptions {
                        k: 8,
                        ..KMeansOptions::default()
                    },
                )
                .inertia(),
            )
        })
    });
    group.bench_function("tree_fit_400x6_k4", |b| {
        b.iter(|| {
            criterion::black_box(
                DecisionTree::fit(&points, &labels, 4, &cost, TreeOptions::default()).num_leaves(),
            )
        })
    });
    group.bench_function("ea_quadratic_bowl", |b| {
        let space = intune_core::ConfigSpace::builder()
            .int("x", -100, 100)
            .int("y", -100, 100)
            .build();
        b.iter(|| {
            let tuner = EvolutionaryTuner::new(TunerOptions::quick(1));
            let r = tuner.tune(&space, Objective::cost_only(), |cfg| {
                let x = cfg.int(0) as f64;
                let y = cfg.int(1) as f64;
                ExecutionReport::of_cost(x * x + y * y)
            });
            criterion::black_box(r.best_report.cost)
        })
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let input = SortInputClass::CcrLike.generate(8192, &mut rng);
    let program = PolySort::new(8192);
    let mut group = c.benchmark_group("feature_extraction_levels");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for level in 0..3 {
        group.bench_function(format!("all_props_level{level}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for p in 0..4 {
                    acc += program.extract(p, level, &input).value;
                }
                criterion::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sorts,
    bench_packers,
    bench_pde_solvers,
    bench_svd_methods,
    bench_ml_and_ea,
    bench_feature_extraction
);
criterion_main!(benches);
