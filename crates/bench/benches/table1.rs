//! Table 1 benches: one end-to-end learn+evaluate case per benchmark at
//! micro scale. `cargo run --release -p intune-eval --bin table1` produces
//! the full table; this target tracks the cost of regenerating it.

use criterion::{criterion_group, criterion_main, Criterion};
use intune_bench::micro_config;
use intune_eval::{run_case, TestCase};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let cfg = micro_config();
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for case in TestCase::all() {
        group.bench_function(case.name(), |b| {
            b.iter(|| {
                let outcome = run_case(case, &cfg);
                criterion::black_box(outcome.row.two_level);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
