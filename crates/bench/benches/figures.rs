//! Figure benches: the computation kernels behind Figures 6, 7, and 8.

use criterion::{criterion_group, criterion_main, Criterion};
use intune_bench::micro_config;
use intune_eval::model::{lost_speedup, worst_case_fraction};
use intune_eval::{run_case, TestCase};
use intune_learning::pipeline::subset_oracle_speedup;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    // Precompute one case's artifacts outside the timing loops.
    let outcome = run_case(TestCase::Sort2, &micro_config());
    let perf = outcome.perf_train;
    let k = perf.num_landmarks();

    // Figure 6: computing the sorted per-input speedup distribution is part
    // of `evaluate`; here we track the end-to-end distribution derivation.
    c.benchmark_group("figure6")
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .bench_function("per_input_distribution", |b| {
            b.iter(|| {
                let mut speedups: Vec<f64> = (0..perf.num_inputs())
                    .map(|i| {
                        let best = (0..k)
                            .map(|l| perf.cost(l, i))
                            .fold(f64::INFINITY, f64::min);
                        perf.cost(0, i) / best.max(1e-300)
                    })
                    .collect();
                speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
                criterion::black_box(speedups)
            })
        });

    // Figure 7: the analytic model over the full (p, k) grid.
    c.benchmark_group("figure7")
        .bench_function("model_grid", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for step in 0..=100 {
                    let p = step as f64 / 100.0;
                    for kk in 2..=9 {
                        acc += lost_speedup(p, kk);
                    }
                }
                for kk in 1..=100 {
                    acc += worst_case_fraction(kk);
                }
                criterion::black_box(acc)
            })
        });

    // Figure 8: one full subset-size sweep with 50 random subsets per size.
    c.benchmark_group("figure8")
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .bench_function("subset_sweep", |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let all: Vec<usize> = (0..k).collect();
                let mut total = 0.0;
                for size in 1..=k {
                    for _ in 0..50 {
                        let mut pool = all.clone();
                        pool.shuffle(&mut rng);
                        total += subset_oracle_speedup(
                            &perf,
                            &pool[..size],
                            outcome.accuracy_threshold,
                            0.95,
                        );
                    }
                }
                criterion::black_box(total)
            })
        });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
