//! The serving-path baseline behind `BENCH_serve.json`.
//!
//! For every Table-1 case: train at micro scale, export + save + reload
//! the model artifact (exercising the full persistence boundary), then
//! drive the [`SelectorService`] with repeated batches of the held-out
//! corpus, recording throughput (selections/sec — wall-clock, environment
//! dependent) and the drift counters (deterministic). A second,
//! forced-drift pass (negative radius bound → every input
//! out-of-distribution) verifies the fallback policy engages and counts
//! its selections.

use intune_core::Benchmark;
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::learn;
use intune_learning::TwoLevelOptions;
use intune_serve::{ModelArtifact, SelectorService, ServeOptions};
use std::path::PathBuf;
use std::time::Instant;

/// One case's contribution to the `BENCH_serve.json` baseline.
#[derive(Debug, Clone)]
pub struct ServeCaseBaseline {
    /// Table-1 case name.
    pub name: String,
    /// Production classifier kind serving the case.
    pub classifier: String,
    /// Selection requests answered in the throughput pass.
    pub selections: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Inputs per batch.
    pub batch_size: u64,
    /// Wall time of the throughput pass, milliseconds.
    pub wall_ms: f64,
    /// Selections per second (wall-clock; environment dependent).
    pub selections_per_sec: f64,
    /// Out-of-distribution count on the held-out corpus (deterministic).
    pub ood: u64,
    /// OOD fraction among probed requests (deterministic).
    pub drift_fraction: f64,
    /// OOD count under the forced-drift pass (deterministic; equals the
    /// probed count by construction).
    pub forced_ood: u64,
    /// Fallback selections served once the forced drift tripped.
    pub forced_fallbacks: u64,
    /// Whether the fallback policy ended the forced pass engaged.
    pub fallback_engaged: bool,
}

/// Knobs of the serving baseline.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Suite scale used for training.
    pub suite: SuiteConfig,
    /// Batches dispatched in the throughput pass.
    pub rounds: usize,
    /// Service worker threads.
    pub threads: usize,
    /// Drift-probe cadence of the throughput pass
    /// ([`ServeOptions::probe_every`]). Probing is monitoring overhead —
    /// it never changes which landmark is served — so the baseline runs
    /// at a production-representative sampling rate rather than probing
    /// every request; the cadence is recorded in the report. The
    /// forced-drift pass always probes everything (cadence 1) so its
    /// counters stay exhaustive.
    pub probe_every: usize,
    /// Where artifacts are written (and reloaded from).
    pub artifact_dir: PathBuf,
}

struct ServeBenchVisitor<'a> {
    cfg: &'a ServeBenchConfig,
}

impl CaseVisitor for ServeBenchVisitor<'_> {
    type Output = ServeCaseBaseline;

    fn visit<B: Benchmark + Sync>(
        &mut self,
        case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<ServeCaseBaseline>
    where
        B::Input: Sync,
    {
        // Train → export → save → load: the serving pass below runs on
        // the *reloaded* artifact, so the baseline exercises persistence.
        let result = learn(benchmark, train, opts, engine)?;
        let path = self
            .cfg
            .artifact_dir
            .join(format!("{}.model.json", case.name()));
        ModelArtifact::export(benchmark, &result).save(&path)?;
        let artifact = ModelArtifact::load(&path)?;
        let classifier = artifact.classifier.kind().to_string();

        // Throughput pass on the held-out corpus.
        let service = SelectorService::new(
            benchmark,
            artifact.clone(),
            ServeOptions {
                threads: self.cfg.threads,
                probe_every: self.cfg.probe_every,
                ..ServeOptions::default()
            },
        )?;
        let start = Instant::now();
        for _ in 0..self.cfg.rounds {
            service.select_batch(test);
        }
        let wall = start.elapsed().as_secs_f64();
        let stats = service.stats();

        // Forced-drift pass: every probe is OOD, the threshold trips
        // after the first batch, the second batch serves the fallback.
        let forced = SelectorService::new(
            benchmark,
            artifact,
            ServeOptions {
                threads: self.cfg.threads,
                radius_factor: -1.0,
                drift_threshold: 0.1,
                min_observations: 1,
                ..ServeOptions::default()
            },
        )?;
        forced.select_batch(test);
        forced.select_batch(test);
        let forced_stats = forced.stats();

        Ok(ServeCaseBaseline {
            name: case.name().to_string(),
            classifier,
            selections: stats.requests,
            batches: stats.batches,
            batch_size: test.len() as u64,
            wall_ms: wall * 1e3,
            selections_per_sec: if wall > 0.0 {
                stats.requests as f64 / wall
            } else {
                0.0
            },
            ood: stats.ood,
            drift_fraction: stats.drift_fraction(),
            forced_ood: forced_stats.ood,
            forced_fallbacks: forced_stats.fallbacks,
            fallback_engaged: forced.fallback_active(),
        })
    }
}

/// Runs the serving baseline for `cases`.
///
/// # Panics
/// Panics if training or artifact persistence fails for a case.
pub fn serve_baseline(cfg: &ServeBenchConfig, cases: &[TestCase]) -> Vec<ServeCaseBaseline> {
    std::fs::create_dir_all(&cfg.artifact_dir).expect("artifact dir");
    let engine = Engine::serial();
    cases
        .iter()
        .map(|&case| {
            visit_case(case, &cfg.suite, &engine, &mut ServeBenchVisitor { cfg })
                .expect("serve baseline case failed")
        })
        .collect()
}

/// Renders the baseline as the machine-readable `BENCH_serve.json`
/// document (through [`crate::report`]: sorted keys, trailing newline).
/// Besides the counters, the document records the **artifact schema
/// version**, the **executor worker count**, and the **drift-probe
/// cadence** used, so trajectory comparisons across PRs are attributable
/// to a model format, a parallelism level, and a monitoring rate.
pub fn serve_baseline_json(
    threads: usize,
    probe_every: usize,
    cases: &[ServeCaseBaseline],
) -> String {
    use crate::report;
    use serde_json::Value;
    let total_sel: u64 = cases.iter().map(|c| c.selections).sum();
    let total_wall: f64 = cases.iter().map(|c| c.wall_ms).sum();
    let total_rate = if total_wall > 0.0 {
        total_sel as f64 / (total_wall / 1e3)
    } else {
        0.0
    };
    let doc = report::obj(vec![
        ("schema", Value::String("intune-bench-serve/3".into())),
        (
            "artifact_version",
            Value::UInt(intune_serve::ARTIFACT_VERSION as u64),
        ),
        ("workers", Value::UInt(threads as u64)),
        ("probe_every", Value::UInt(probe_every as u64)),
        (
            "cases",
            Value::Array(
                cases
                    .iter()
                    .map(|c| {
                        report::obj(vec![
                            ("name", Value::String(c.name.clone())),
                            ("classifier", Value::String(c.classifier.clone())),
                            ("selections", Value::UInt(c.selections)),
                            ("batches", Value::UInt(c.batches)),
                            ("batch_size", Value::UInt(c.batch_size)),
                            ("wall_ms", report::ms(c.wall_ms)),
                            (
                                "selections_per_sec",
                                Value::Float(c.selections_per_sec.round()),
                            ),
                            ("ood", Value::UInt(c.ood)),
                            ("drift_fraction", report::rate(c.drift_fraction)),
                            ("forced_ood", Value::UInt(c.forced_ood)),
                            ("forced_fallbacks", Value::UInt(c.forced_fallbacks)),
                            ("fallback_engaged", Value::Bool(c.fallback_engaged)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total",
            report::obj(vec![
                ("selections", Value::UInt(total_sel)),
                ("wall_ms", report::ms(total_wall)),
                ("selections_per_sec", Value::Float(total_rate.round())),
            ]),
        ),
    ]);
    report::render(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro_config;

    fn config() -> ServeBenchConfig {
        ServeBenchConfig {
            suite: micro_config(),
            rounds: 2,
            threads: 1,
            probe_every: 1,
            artifact_dir: std::env::temp_dir()
                .join(format!("intune-serve-bench-{}", std::process::id())),
        }
    }

    #[test]
    fn serve_baseline_counts_are_deterministic_and_fallback_engages() {
        let cfg = config();
        let a = serve_baseline(&cfg, &[TestCase::Sort2]);
        let b = serve_baseline(&cfg, &[TestCase::Sort2]);
        assert_eq!(a.len(), 1);
        let (a, b) = (&a[0], &b[0]);
        assert_eq!(a.selections, (cfg.suite.test * cfg.rounds) as u64);
        assert!(a.selections_per_sec > 0.0, "nonzero throughput");
        assert_eq!(a.ood, b.ood, "drift counters are deterministic");
        assert_eq!(a.forced_ood, b.forced_ood);
        assert_eq!(a.forced_fallbacks, a.batch_size, "second batch fell back");
        assert!(a.fallback_engaged);
        std::fs::remove_dir_all(&cfg.artifact_dir).ok();
    }

    #[test]
    fn serve_json_has_stable_schema() {
        let cfg = config();
        let cases = serve_baseline(&cfg, &[TestCase::Binpacking]);
        let json = serve_baseline_json(1, 1, &cases);
        for key in [
            "\"schema\": \"intune-bench-serve/3\"",
            "\"artifact_version\": 2",
            "\"workers\": 1",
            "\"probe_every\": 1",
            "\"selections_per_sec\"",
            "\"drift_fraction\"",
            "\"forced_fallbacks\"",
            "\"fallback_engaged\"",
            "\"total\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        std::fs::remove_dir_all(&cfg.artifact_dir).ok();
    }
}
