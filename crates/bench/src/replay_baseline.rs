//! The record/replay baseline behind `daemon_bench --replay`
//! (`BENCH_replay.json`).
//!
//! Train one Table-1 case at micro scale, serve it from a recording
//! daemon (`DaemonOptions::record`), hammer it with N wire clients, then
//! shut the daemon down and **replay the captured traffic twice** against
//! two fresh in-process services built from the very same artifact. The
//! two transcripts are compared byte-wise: `diverged` is 0 when serving
//! is deterministic — the document's load-bearing figure, asserted by CI.
//! Capture counts and replay counts are deterministic; wall-clock figures
//! are environment-dependent.

use crate::report;
use intune_core::{Benchmark, FeatureVector};
use intune_daemon::{Daemon, DaemonClient, DaemonOptions, ListenConfig, TenantSpec};
use intune_datalog::{
    divergence, load_recording, replay, RecorderSink, RecordingOptions, ReplayOptions,
};
use intune_eval::{visit_case, CaseVisitor, SuiteConfig, TestCase};
use intune_exec::Engine;
use intune_learning::pipeline::learn;
use intune_learning::TwoLevelOptions;
use intune_serve::{ModelArtifact, ServeOptions, VectorService, ARTIFACT_VERSION};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Knobs of the record/replay round trip.
#[derive(Debug, Clone)]
pub struct ReplayBenchConfig {
    /// Suite scale used for training the served artifact.
    pub suite: SuiteConfig,
    /// The case whose artifact is served and recorded.
    pub case: TestCase,
    /// Concurrent client threads during the capture phase.
    pub clients: usize,
    /// `SelectBatch` requests per client.
    pub batches_per_client: usize,
    /// Daemon-side selection worker threads.
    pub threads: usize,
}

/// The measured outcome (see module docs for what is deterministic).
#[derive(Debug, Clone)]
pub struct ReplayBenchResult {
    /// `SelectBatch` frames sent during capture.
    pub requests: u64,
    /// Selections answered during capture.
    pub selections: u64,
    /// Frames the recorder captured (requests + handshakes).
    pub recorded_frames: u64,
    /// Frames the recorder dropped (must be 0).
    pub recorded_dropped: u64,
    /// Wall time of the capture phase, milliseconds.
    pub capture_wall_ms: f64,
    /// Selection frames re-served per replay pass.
    pub replayed_frames: u64,
    /// Selections re-served per replay pass.
    pub replayed_selections: u64,
    /// Control frames skipped per replay pass.
    pub control_skipped: u64,
    /// Wall time of both replay passes, milliseconds.
    pub replay_wall_ms: f64,
    /// Selections whose two replays disagreed byte-wise (0 = serving is
    /// deterministic).
    pub diverged: u64,
}

/// Extracts the case's revision-1 artifact and the full feature vectors
/// of its held-out corpus (what wire clients ship).
struct ExportVisitor;

impl CaseVisitor for ExportVisitor {
    type Output = (ModelArtifact, Vec<FeatureVector>);

    fn visit<B: Benchmark + Sync>(
        &mut self,
        _case: TestCase,
        benchmark: &B,
        train: &[B::Input],
        test: &[B::Input],
        opts: &TwoLevelOptions,
        engine: &Engine,
    ) -> intune_core::Result<(ModelArtifact, Vec<FeatureVector>)>
    where
        B::Input: Sync,
    {
        let result = learn(benchmark, train, opts, engine)?;
        let artifact = ModelArtifact::export(benchmark, &result).with_revision(1);
        let features = test.iter().map(|i| benchmark.extract_all(i)).collect();
        Ok((artifact, features))
    }
}

/// A scratch recording directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "intune-replay-bench-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Runs the round trip end to end (train → record under load → replay
/// the capture twice in-process → compare byte-wise).
///
/// # Panics
/// Panics if training, the daemon, any client, or either replay fails —
/// baseline emitters want loud failures.
pub fn replay_baseline(cfg: &ReplayBenchConfig) -> ReplayBenchResult {
    let engine = Engine::serial();
    let (artifact, features) =
        visit_case(cfg.case, &cfg.suite, &engine, &mut ExportVisitor).expect("training failed");
    let tenant = artifact.benchmark.clone();
    let scratch = ScratchDir::new();
    let sink = Arc::new(
        RecorderSink::open(&scratch.0, RecordingOptions::default()).expect("recorder open"),
    );

    let serve = ServeOptions {
        threads: cfg.threads,
        // Never strictly exceeded: the fallback policy stays off, so the
        // capture is pure classifier output regardless of drift-counter
        // interleaving across client threads.
        drift_threshold: 1.0,
        ..ServeOptions::default()
    };
    let daemon = Daemon::bind_tenants(
        vec![TenantSpec {
            artifact: artifact.clone(),
            trace: None,
            recorder: Some(sink.clone()),
            trace_sample: None,
        }],
        DaemonOptions {
            serve: serve.clone(),
            trace: None,
            inject_faults: false,
            ..DaemonOptions::default()
        },
        &ListenConfig::default(),
    )
    .expect("daemon bind failed");
    let addr = daemon.tcp_addr().to_string();
    let handle = daemon.spawn();

    // Capture phase: N clients x R batches of the held-out corpus.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.clients {
            let addr = &addr;
            let tenant = &tenant;
            let features = &features;
            scope.spawn(move || {
                let client = DaemonClient::connect_to(addr, tenant).expect("load client");
                for _ in 0..cfg.batches_per_client {
                    let selections = client.select_batch(features).expect("batch");
                    assert_eq!(selections.len(), features.len());
                }
            });
        }
    });
    let capture_wall = start.elapsed().as_secs_f64();
    let control = DaemonClient::connect_to(&addr, &tenant).expect("control client");
    control.shutdown().expect("shutdown");
    handle.join().expect("daemon exit");
    assert_eq!(sink.dropped(), 0, "recorder dropped frames under load");

    // Replay the capture twice against two fresh services built from the
    // same artifact; per-connection order is preserved, so a
    // deterministic server must reproduce itself byte for byte.
    let recording = load_recording(&scratch.0).expect("recording loads");
    assert_eq!(
        recording.torn_segments, 0,
        "clean shutdown leaves no torn tail"
    );
    let replay_start = Instant::now();
    let opts = ReplayOptions::default();
    let service_a = VectorService::new(artifact.clone(), serve.clone()).expect("service a");
    let outcome_a = replay(&recording.frames, &service_a, &opts).expect("replay a");
    let service_b = VectorService::new(artifact, serve).expect("service b");
    let outcome_b = replay(&recording.frames, &service_b, &opts).expect("replay b");
    let replay_wall = replay_start.elapsed().as_secs_f64();
    let report = divergence(&outcome_a, &outcome_b);

    let requests = (cfg.clients * cfg.batches_per_client) as u64;
    ReplayBenchResult {
        requests,
        selections: requests * features.len() as u64,
        recorded_frames: sink.appended(),
        recorded_dropped: sink.dropped(),
        capture_wall_ms: capture_wall * 1e3,
        replayed_frames: outcome_a.results.len() as u64,
        replayed_selections: outcome_a.selections(),
        control_skipped: outcome_a.control_skipped,
        replay_wall_ms: replay_wall * 1e3,
        diverged: report.diverged,
    }
}

/// Renders the result as the `BENCH_replay.json` document (through
/// [`report`]: sorted keys, trailing newline).
pub fn replay_baseline_json(cfg: &ReplayBenchConfig, r: &ReplayBenchResult) -> String {
    let doc = report::obj(vec![
        ("schema", Value::String("intune-bench-replay/1".into())),
        ("artifact_version", Value::UInt(ARTIFACT_VERSION as u64)),
        ("case", Value::String(cfg.case.name().into())),
        ("clients", Value::UInt(cfg.clients as u64)),
        (
            "batches_per_client",
            Value::UInt(cfg.batches_per_client as u64),
        ),
        ("workers", Value::UInt(cfg.threads as u64)),
        ("requests", Value::UInt(r.requests)),
        ("selections", Value::UInt(r.selections)),
        ("recorded_frames", Value::UInt(r.recorded_frames)),
        ("recorded_dropped", Value::UInt(r.recorded_dropped)),
        ("capture_wall_ms", report::ms(r.capture_wall_ms)),
        ("replayed_frames", Value::UInt(r.replayed_frames)),
        ("replayed_selections", Value::UInt(r.replayed_selections)),
        ("control_skipped", Value::UInt(r.control_skipped)),
        ("replay_wall_ms", report::ms(r.replay_wall_ms)),
        ("diverged", Value::UInt(r.diverged)),
    ]);
    report::render(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro_config;

    fn tiny() -> ReplayBenchConfig {
        ReplayBenchConfig {
            suite: micro_config(),
            case: TestCase::Sort2,
            clients: 3,
            batches_per_client: 2,
            threads: 1,
        }
    }

    #[test]
    fn replay_baseline_round_trips_with_zero_divergence() {
        let cfg = tiny();
        let r = replay_baseline(&cfg);
        let batch = cfg.suite.test as u64;
        assert_eq!(r.requests, 6);
        assert_eq!(r.selections, 6 * batch);
        // 3 Hello handshakes + 6 batches + 1 control-client Hello.
        assert_eq!(r.recorded_frames, 10);
        assert_eq!(r.recorded_dropped, 0);
        assert_eq!(r.replayed_frames, 6, "controls are skipped in replay");
        assert_eq!(r.replayed_selections, r.selections);
        assert_eq!(r.control_skipped, 4);
        assert_eq!(r.diverged, 0, "same artifact must replay identically");
    }

    #[test]
    fn replay_json_has_stable_schema() {
        let cfg = tiny();
        let r = replay_baseline(&cfg);
        let json = replay_baseline_json(&cfg, &r);
        for key in [
            "\"schema\": \"intune-bench-replay/1\"",
            "\"case\": \"sort2\"",
            "\"recorded_frames\": 10",
            "\"recorded_dropped\": 0",
            "\"diverged\": 0",
            "\"workers\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let reparsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(crate::report::render(&reparsed), json);
    }
}
