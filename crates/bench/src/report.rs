//! The one JSON emitter behind every committed `BENCH_*.json` baseline.
//!
//! `bench_exec`, `serve_bench`, and `daemon_bench` used to hand-assemble
//! their JSON with ad-hoc `write!` calls; this module routes them all
//! through a single writer with two hard guarantees so baselines diff
//! cleanly across commits:
//!
//! * **sorted keys** — every object's fields are emitted in lexicographic
//!   order, recursively, regardless of insertion order;
//! * **trailing newline** — the document always ends in exactly one
//!   `\n`.

use serde_json::Value;

/// Builds an object value from `(key, value)` pairs (order irrelevant —
/// rendering sorts).
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A float rounded to 3 decimals for wall-clock style measurements
/// (sub-microsecond noise has no place in a committed baseline).
pub fn ms(x: f64) -> Value {
    Value::Float((x * 1e3).round() / 1e3)
}

/// A float rounded to 6 decimals for rates/fractions.
pub fn rate(x: f64) -> Value {
    Value::Float((x * 1e6).round() / 1e6)
}

/// Renders a report document: keys sorted recursively, pretty-printed,
/// exactly one trailing newline.
pub fn render(value: &Value) -> String {
    let mut text = serde_json::to_string_pretty(&sort_keys(value.clone()))
        .expect("value printing is infallible");
    while text.ends_with('\n') {
        text.pop();
    }
    text.push('\n');
    text
}

fn sort_keys(value: Value) -> Value {
    match value {
        Value::Object(mut fields) => {
            fields.sort_by(|(a, _), (b, _)| a.cmp(b));
            Value::Object(fields.into_iter().map(|(k, v)| (k, sort_keys(v))).collect())
        }
        Value::Array(items) => Value::Array(items.into_iter().map(sort_keys).collect()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_come_out_sorted_recursively() {
        let doc = obj(vec![
            ("zeta", Value::Int(1)),
            (
                "alpha",
                obj(vec![("b", Value::Int(2)), ("a", Value::Int(3))]),
            ),
            (
                "cases",
                Value::Array(vec![obj(vec![
                    ("name", Value::String("x".into())),
                    ("hit_rate", rate(0.5)),
                ])]),
            ),
        ]);
        let text = render(&doc);
        let alpha = text.find("\"alpha\"").unwrap();
        let zeta = text.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "top-level keys sorted:\n{text}");
        let a = text.find("\"a\"").unwrap();
        let b = text.find("\"b\"").unwrap();
        assert!(a < b, "nested keys sorted:\n{text}");
        let hit = text.find("\"hit_rate\"").unwrap();
        let name = text.find("\"name\"").unwrap();
        assert!(hit < name, "keys inside arrays sorted:\n{text}");
    }

    #[test]
    fn exactly_one_trailing_newline() {
        let text = render(&obj(vec![("k", Value::Int(1))]));
        assert!(text.ends_with('\n'));
        assert!(!text.ends_with("\n\n"));
    }

    #[test]
    fn rendering_is_idempotent_and_parseable() {
        let doc = obj(vec![("b", ms(12.34567)), ("a", rate(0.1234567))]);
        let text = render(&doc);
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            render(&reparsed),
            text,
            "render(parse(render(x))) fixed point"
        );
        assert!(text.contains("12.346"), "{text}");
        assert!(text.contains("0.123457"), "{text}");
    }
}
