//! Emits the `BENCH_serve.json` serving-path baseline: per-case selector
//! throughput over reloaded model artifacts, batch shapes, and the
//! drift-monitor / fallback counters.
//!
//! ```text
//! cargo run --release -p intune_bench --bin serve_bench [-- OUT.json]
//! ```
//!
//! Worker count follows `INTUNE_THREADS` (default 1 — selection is
//! feature-extraction bound at micro scale). Throughput numbers are
//! environment-dependent; selection counts and drift counters are
//! deterministic for a given scale.

use intune_bench::{micro_config, serve_baseline, serve_baseline_json, ServeBenchConfig};
use intune_eval::TestCase;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    // Hardened env parse: a garbage INTUNE_THREADS aborts instead of
    // silently benchmarking on one worker.
    let threads = intune_exec::threads_from_env_or_exit(1);
    let cfg = ServeBenchConfig {
        suite: micro_config(),
        rounds: 64,
        threads,
        // Production-representative drift-probe cadence: 1-in-16
        // requests pay the full-vector extraction + centroid distance.
        // Probing never changes the served landmark, so throughput is
        // the only number this moves; the cadence is recorded in the
        // report for cross-PR attribution.
        probe_every: 16,
        artifact_dir: std::env::temp_dir()
            .join(format!("intune-serve-bench-{}", std::process::id())),
    };
    eprintln!(
        "serving {} cases at micro scale ({} rounds x {} inputs, {} worker threads)...",
        TestCase::all().len(),
        cfg.rounds,
        cfg.suite.test,
        cfg.threads
    );
    let cases = serve_baseline(&cfg, &TestCase::all());
    let json = serve_baseline_json(cfg.threads, cfg.probe_every, &cases);
    std::fs::write(&out_path, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out_path}");
    std::fs::remove_dir_all(&cfg.artifact_dir).ok();
}
