//! Emits the `BENCH_daemon.json` wire-protocol baseline: N client
//! threads hammer a live `intune_daemon` over loopback TCP with batched
//! selection requests while an identical shadow artifact mirrors the
//! traffic, then the shadow is promoted and the daemon shut down.
//!
//! ```text
//! cargo run --release -p intune_bench --bin daemon_bench [-- OUT.json]
//! ```
//!
//! Daemon worker count follows `INTUNE_THREADS` (hardened parse;
//! default 1). Request/selection counts and the shadow agreement record
//! are deterministic; throughput and frame latency are
//! environment-dependent. The committed baseline uses 4 clients × 16
//! batches of the sort2 micro corpus.

use intune_bench::{daemon_baseline, daemon_baseline_json, micro_config, DaemonBenchConfig};
use intune_eval::TestCase;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_daemon.json".to_string());
    let threads = intune_exec::threads_from_env_or_exit(1);
    let cfg = DaemonBenchConfig {
        suite: micro_config(),
        case: TestCase::Sort2,
        clients: 4,
        batches_per_client: 16,
        threads,
    };
    eprintln!(
        "daemon load test: {} x {} batches of {} vectors ({} daemon workers)...",
        cfg.clients, cfg.batches_per_client, cfg.suite.test, cfg.threads
    );
    let result = daemon_baseline(&cfg);
    let json = daemon_baseline_json(&cfg, &result);
    std::fs::write(&out_path, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
